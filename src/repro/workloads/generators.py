"""Synthetic bus traffic generators.

The paper's evaluation does not depend on a specific application: the
independent variable is the prediction accuracy, and the workload only has to
produce realistic AHB traffic (bursts of data flowing between building
blocks, with the arbitration winner changing only occasionally).  These
generators create such traffic as queues of
:class:`~repro.ahb.transaction.BusTransaction` objects for
:class:`~repro.ahb.master.TrafficMaster` instances.

All generators are deterministic given their seed, so the same workload can
be instantiated twice -- once for the monolithic reference bus and once for
the split co-emulated bus -- and the two transaction streams compared.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from ..ahb.signals import HBurst, HSize
from ..ahb.transaction import BusTransaction


#: Fixed-length incrementing bursts, the dominant traffic type in SoCs where
#: "large amounts of data flow in bursts between building blocks".
DEFAULT_BURSTS: Sequence[HBurst] = (HBurst.INCR4, HBurst.INCR8, HBurst.INCR16)


@dataclass(frozen=True)
class AddressWindow:
    """A contiguous, word-aligned address range a generator may target."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("address window size must be positive")
        if self.base % 4 != 0 or self.size % 4 != 0:
            raise ValueError("address windows must be word aligned")

    def random_burst_start(self, rng: random.Random, burst: HBurst, hsize: HSize) -> int:
        """Pick a start address such that the whole burst stays in the window."""
        beats = burst.beats or 1
        span = beats * hsize.bytes
        if span > self.size:
            raise ValueError(f"window of {self.size} bytes cannot hold a {span}-byte burst")
        max_offset_words = (self.size - span) // hsize.bytes
        offset = rng.randint(0, max_offset_words) * hsize.bytes
        return self.base + offset


@dataclass
class TrafficProfile:
    """Parameters of a synthetic traffic stream for one master."""

    master_id: int
    n_transactions: int = 32
    write_fraction: float = 0.5
    bursts: Sequence[HBurst] = field(default_factory=lambda: tuple(DEFAULT_BURSTS))
    read_windows: Sequence[AddressWindow] = field(default_factory=tuple)
    write_windows: Sequence[AddressWindow] = field(default_factory=tuple)
    issue_gap: int = 0
    issue_gap_jitter: int = 0
    seed: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        if self.n_transactions < 0:
            raise ValueError("n_transactions cannot be negative")


def generate_traffic(profile: TrafficProfile) -> List[BusTransaction]:
    """Generate the transaction queue described by ``profile``."""
    rng = random.Random(profile.seed)
    transactions: List[BusTransaction] = []
    issue_cycle = 0
    for index in range(profile.n_transactions):
        is_write = rng.random() < profile.write_fraction
        windows = profile.write_windows if is_write else profile.read_windows
        if not windows:
            # Fall back to the other set so a lopsided profile still works.
            windows = profile.read_windows or profile.write_windows
            if not windows:
                raise ValueError("traffic profile has no address windows")
            is_write = windows is profile.write_windows
        window = windows[rng.randrange(len(windows))]
        burst = profile.bursts[rng.randrange(len(profile.bursts))]
        hsize = HSize.WORD
        address = window.random_burst_start(rng, burst, hsize)
        beats = burst.beats or 1
        data = (
            [rng.getrandbits(32) for _ in range(beats)] if is_write else []
        )
        transactions.append(
            BusTransaction(
                master_id=profile.master_id,
                address=address,
                write=is_write,
                hburst=burst,
                hsize=hsize,
                data=data,
                beats=beats,
                issue_cycle=issue_cycle,
            )
        )
        gap = profile.issue_gap
        if profile.issue_gap_jitter:
            gap += rng.randint(0, profile.issue_gap_jitter)
        issue_cycle += gap
    return transactions


def dma_copy_traffic(
    master_id: int,
    source: AddressWindow,
    destination: AddressWindow,
    n_blocks: int = 8,
    burst: HBurst = HBurst.INCR8,
    seed: int = 7,
) -> List[BusTransaction]:
    """A DMA-engine style workload: alternating read and write bursts.

    Each block is one read burst from ``source`` followed by one write burst
    to ``destination``.  (The write data is synthetic: the transaction-level
    master issues the write burst independently of the read's returned data,
    which keeps the traffic pattern identical across system models.)
    """
    rng = random.Random(seed)
    beats = burst.beats or 1
    transactions: List[BusTransaction] = []
    for block in range(n_blocks):
        src_addr = source.base + (block * beats * 4) % max(source.size - beats * 4 + 4, 4)
        dst_addr = destination.base + (block * beats * 4) % max(destination.size - beats * 4 + 4, 4)
        transactions.append(
            BusTransaction(
                master_id=master_id,
                address=src_addr,
                write=False,
                hburst=burst,
                data=[],
                beats=beats,
            )
        )
        transactions.append(
            BusTransaction(
                master_id=master_id,
                address=dst_addr,
                write=True,
                hburst=burst,
                data=[rng.getrandbits(32) for _ in range(beats)],
                beats=beats,
            )
        )
    return transactions


def streaming_write_traffic(
    master_id: int,
    destination: AddressWindow,
    n_bursts: int = 16,
    burst: HBurst = HBurst.INCR8,
    seed: int = 11,
    issue_gap: int = 0,
) -> List[BusTransaction]:
    """A producer streaming data into a destination window (write-only)."""
    rng = random.Random(seed)
    beats = burst.beats or 1
    transactions = []
    addr = destination.base
    issue = 0
    for _ in range(n_bursts):
        if addr + beats * 4 > destination.base + destination.size:
            addr = destination.base
        transactions.append(
            BusTransaction(
                master_id=master_id,
                address=addr,
                write=True,
                hburst=burst,
                data=[rng.getrandbits(32) for _ in range(beats)],
                beats=beats,
                issue_cycle=issue,
            )
        )
        addr += beats * 4
        issue += issue_gap
    return transactions


def streaming_read_traffic(
    master_id: int,
    source: AddressWindow,
    n_bursts: int = 16,
    burst: HBurst = HBurst.INCR8,
    issue_gap: int = 0,
) -> List[BusTransaction]:
    """A consumer streaming data out of a source window (read-only)."""
    beats = burst.beats or 1
    transactions = []
    addr = source.base
    issue = 0
    for _ in range(n_bursts):
        if addr + beats * 4 > source.base + source.size:
            addr = source.base
        transactions.append(
            BusTransaction(
                master_id=master_id,
                address=addr,
                write=False,
                hburst=burst,
                beats=beats,
                issue_cycle=issue,
            )
        )
        addr += beats * 4
        issue += issue_gap
    return transactions


def cpu_like_traffic(
    master_id: int,
    code_window: AddressWindow,
    data_window: AddressWindow,
    n_transactions: int = 64,
    seed: int = 3,
) -> List[BusTransaction]:
    """CPU-ish traffic: mostly instruction-fetch style reads with occasional
    data reads/writes and short bursts."""
    profile = TrafficProfile(
        master_id=master_id,
        n_transactions=n_transactions,
        write_fraction=0.25,
        bursts=(HBurst.INCR4, HBurst.INCR8, HBurst.SINGLE),
        read_windows=(code_window, data_window),
        write_windows=(data_window,),
        issue_gap=2,
        issue_gap_jitter=3,
        seed=seed,
    )
    return generate_traffic(profile)


def interleaved_issue_cycles(
    transactions: List[BusTransaction], start: int = 0, gap: int = 1
) -> List[BusTransaction]:
    """Return the same transactions with evenly spaced issue cycles."""
    spaced: List[BusTransaction] = []
    issue = start
    for txn in transactions:
        spaced.append(
            BusTransaction(
                master_id=txn.master_id,
                address=txn.address,
                write=txn.write,
                hburst=txn.hburst,
                hsize=txn.hsize,
                data=list(txn.data),
                beats=txn.beats,
                issue_cycle=issue,
            )
        )
        issue += gap
    return spaced
