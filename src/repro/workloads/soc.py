"""SoC configurations for the co-emulation experiments.

An :class:`SocSpec` is a declarative description of a system-on-chip: which
bus masters and slaves exist, which verification domain each lives in (the
paper's Figure 2 splits components by abstraction level: transaction-level
blocks stay in the simulator, RTL blocks go to the accelerator), what the
memory map looks like, and what traffic each master generates.

The spec can be *instantiated* repeatedly, each time producing fresh
component objects: once as a monolithic reference bus (the golden functional
model) and once as a pair of half bus models for the split, co-emulated
system.  Canned specs matching the paper's scenarios are provided at the end
of the module.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..ahb.bus import AhbBus
from ..ahb.half_bus import HalfBusModel
from ..ahb.master import TrafficMaster
from ..ahb.slave import AhbSlave, FifoPeripheralSlave, MemorySlave
from ..ahb.transaction import BusTransaction
from ..channel.faults import ChannelFaultConfig
from ..core.topology import Topology
from ..sim.component import AbstractionLevel, Domain
from .generators import AddressWindow


TransactionFactory = Callable[[], List[BusTransaction]]


@dataclass
class MasterSpec:
    """Declarative description of one bus master."""

    master_id: int
    name: str
    domain: Domain
    transactions: TransactionFactory
    level: AbstractionLevel = AbstractionLevel.TL


@dataclass
class SlaveSpec:
    """Declarative description of one bus slave and its address region."""

    slave_id: int
    name: str
    domain: Domain
    base: int
    size: int
    kind: str = "memory"  # "memory" | "fifo"
    level: AbstractionLevel = AbstractionLevel.TL
    read_wait_states: int = 0
    write_wait_states: int = 0
    fifo_depth: int = 8
    fifo_produce_period: int = 1
    fifo_consume_period: int = 1

    @property
    def window(self) -> AddressWindow:
        return AddressWindow(base=self.base, size=self.size)


@dataclass
class SocSpec:
    """A complete SoC description that can be instantiated repeatedly."""

    name: str
    masters: List[MasterSpec] = field(default_factory=list)
    slaves: List[SlaveSpec] = field(default_factory=list)
    description: str = ""
    #: Multi-domain layout of this SoC; ``None`` means the paper's canonical
    #: simulator/accelerator pair.
    topology: Optional[Topology] = None
    #: Imperfect-channel default of this SoC (a :class:`~repro.channel.faults.
    #: ChannelFaultConfig`); ``None`` means the ideal channel.  The ``faulty``
    #: catalog scenarios declare their degradation here, and
    #: :meth:`prepare_run` fills it into the run config unless the config (a
    #: run-request override) already carries one.
    channel_faults: Optional["ChannelFaultConfig"] = None
    #: Memoized master traffic (master_id -> generated transactions); enabled
    #: by :meth:`cache_traffic` so sweeps do not re-run the generators for
    #: every sweep point.
    _traffic_cache: Optional[Dict[int, List[BusTransaction]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- validation ------------------------------------------------------------
    def validate(self, topology: Optional[Topology] = None) -> None:
        master_ids = [m.master_id for m in self.masters]
        slave_ids = [s.slave_id for s in self.slaves]
        if len(set(master_ids)) != len(master_ids):
            raise ValueError(f"SoC {self.name!r} has duplicate master ids")
        if len(set(slave_ids)) != len(slave_ids):
            raise ValueError(f"SoC {self.name!r} has duplicate slave ids")
        if not self.masters:
            raise ValueError(f"SoC {self.name!r} has no masters")
        if not self.slaves:
            raise ValueError(f"SoC {self.name!r} has no slaves")
        topology = topology or self.resolved_topology()
        known = set(topology.domain_ids)
        for component in (*self.masters, *self.slaves):
            if Domain(component.domain) not in known:
                raise ValueError(
                    f"SoC {self.name!r}: {component.name!r} lives in domain "
                    f"{Domain(component.domain).value!r}, which is not part of the "
                    f"topology ({topology.describe()})"
                )

    def resolved_topology(self) -> Topology:
        """This SoC's topology (the canonical pair unless declared)."""
        return self.topology if self.topology is not None else Topology.canonical_pair()

    def masters_in(self, domain: Domain) -> List[MasterSpec]:
        return [m for m in self.masters if Domain(m.domain) == Domain(domain)]

    def slaves_in(self, domain: Domain) -> List[SlaveSpec]:
        return [s for s in self.slaves if Domain(s.domain) == Domain(domain)]

    # -- component instantiation -------------------------------------------------
    def cache_traffic(self) -> "SocSpec":
        """Memoize the generated traffic across repeated instantiations.

        The transaction generators are deterministic, so every
        :meth:`build_split` / :meth:`build_reference` of the same spec
        produces the same streams; with the cache enabled the generators run
        once and later builds receive fresh per-transaction copies of the
        memoized queues.  Sweeps enable this so only the accuracy/LOB knobs
        vary between points, not the (re-)generation cost.  Returns ``self``
        for chaining.
        """
        if self._traffic_cache is None:
            self._traffic_cache = {}
        return self

    def _master_transactions(self, spec: MasterSpec) -> List[BusTransaction]:
        if self._traffic_cache is None:
            return spec.transactions()
        cached = self._traffic_cache.get(spec.master_id)
        if cached is None:
            cached = spec.transactions()
            self._traffic_cache[spec.master_id] = cached
        # Hand out fresh transaction objects so a run can never alias state
        # into the cache (data lists are copied too).
        return [replace(txn, data=list(txn.data)) for txn in cached]

    def _build_master(self, spec: MasterSpec) -> TrafficMaster:
        return TrafficMaster(
            name=spec.name,
            master_id=spec.master_id,
            transactions=self._master_transactions(spec),
            level=spec.level,
        )

    def _build_slave(self, spec: SlaveSpec) -> AhbSlave:
        if spec.kind == "memory":
            return MemorySlave(
                name=spec.name,
                slave_id=spec.slave_id,
                base_address=spec.base,
                size_bytes=spec.size,
                read_wait_states=spec.read_wait_states,
                write_wait_states=spec.write_wait_states,
                level=spec.level,
            )
        if spec.kind == "fifo":
            return FifoPeripheralSlave(
                name=spec.name,
                slave_id=spec.slave_id,
                depth=spec.fifo_depth,
                produce_period=spec.fifo_produce_period,
                consume_period=spec.fifo_consume_period,
                initial_fill=spec.fifo_depth,
                level=spec.level,
            )
        raise ValueError(f"unknown slave kind {spec.kind!r}")

    def build_reference(self) -> Tuple[AhbBus, Dict[int, TrafficMaster]]:
        """Instantiate the monolithic golden bus with fresh components."""
        self.validate()
        bus = AhbBus(name=f"{self.name}_reference")
        masters: Dict[int, TrafficMaster] = {}
        for master_spec in self.masters:
            master = self._build_master(master_spec)
            bus.add_master(master)
            masters[master.master_id] = master
        for slave_spec in self.slaves:
            bus.add_slave(self._build_slave(slave_spec), slave_spec.base, slave_spec.size)
        bus.finalize()
        return bus, masters

    def _hbm_name(self, domain: Domain) -> str:
        # Keep the paper-era names for the canonical pair (HBMS / HBMA).
        if domain is Domain.SIMULATOR:
            return f"{self.name}_hbms"
        if domain is Domain.ACCELERATOR:
            return f"{self.name}_hbma"
        return f"{self.name}_hbm_{domain.value}"

    def _instantiate_partition(
        self, topology: Optional[Topology] = None
    ) -> Tuple[Dict[Domain, HalfBusModel], Dict[int, TrafficMaster]]:
        topology = topology or self.resolved_topology()
        self.validate(topology)
        partition: Dict[Domain, HalfBusModel] = {
            spec.domain: HalfBusModel(name=self._hbm_name(spec.domain), domain=spec.domain)
            for spec in topology.domains
        }
        masters: Dict[int, TrafficMaster] = {}
        for master_spec in self.masters:
            master = self._build_master(master_spec)
            masters[master.master_id] = master
            home = Domain(master_spec.domain)
            partition[home].add_local_master(master)
            for domain, hbm in partition.items():
                if domain != home:
                    hbm.add_remote_master(master.master_id)
        for slave_spec in self.slaves:
            slave = self._build_slave(slave_spec)
            home = Domain(slave_spec.domain)
            partition[home].add_local_slave(slave, slave_spec.base, slave_spec.size)
            for domain, hbm in partition.items():
                if domain != home:
                    hbm.add_remote_slave(
                        slave.slave_id, slave_spec.base, slave_spec.size, name=slave_spec.name
                    )
        for hbm in partition.values():
            hbm.finalize()
        return partition, masters

    def build_partition(self, topology: Optional[Topology] = None) -> Dict[Domain, HalfBusModel]:
        """Instantiate one half bus model per topology domain.

        ``topology`` overrides the spec's own layout (e.g. a run request's
        serialised override); the mapping iterates in topology domain order.
        The canonical two-domain case is byte-identical to the historical
        :meth:`build_split` pair.
        """
        partition, _ = self._instantiate_partition(topology)
        return partition

    def prepare_run(self, config) -> Tuple["CoEmulationConfig", Dict[Domain, HalfBusModel]]:
        """Resolve this spec's topology into ``config`` and build its partition.

        The single precedence rule shared by the orchestrator, the sweep
        helpers and the benchmarks: an explicit ``config.topology`` (e.g. a
        run-request override) wins, otherwise the spec's own layout (or the
        canonical pair) is filled in.  The same rule applies to the
        imperfect-channel axis: an explicit ``config.channel_faults`` wins
        over the spec's declared degradation.  Returns ``(config, partition)``.
        """
        if config.topology is None and self.topology is not None:
            config = replace(config, topology=self.topology)
        if config.channel_faults is None and self.channel_faults is not None:
            config = replace(config, channel_faults=self.channel_faults)
        return config, self.build_partition(config.resolve_topology())

    def build_split(self) -> Tuple[HalfBusModel, HalfBusModel, Dict[int, TrafficMaster]]:
        """Instantiate the canonical split: (simulator HBM, accelerator HBM).

        Only defined for two-domain canonical topologies; multi-domain SoCs
        must use :meth:`build_partition`.
        """
        topology = self.resolved_topology()
        if not topology.is_canonical_pair:
            raise ValueError(
                f"SoC {self.name!r} has a non-canonical topology "
                f"({topology.describe()}); use build_partition() instead of build_split()"
            )
        partition, masters = self._instantiate_partition(topology)
        return partition[Domain.SIMULATOR], partition[Domain.ACCELERATOR], masters


# ---------------------------------------------------------------------------
# Canned SoC configurations.
# ---------------------------------------------------------------------------

#: Standard memory map used by the canned SoCs.
ACC_MEMORY_WINDOW = AddressWindow(base=0x0000_0000, size=0x4000)
SIM_MEMORY_WINDOW = AddressWindow(base=0x1000_0000, size=0x4000)
SIM_BUFFER_WINDOW = AddressWindow(base=0x2000_0000, size=0x4000)
ACC_BUFFER_WINDOW = AddressWindow(base=0x3000_0000, size=0x4000)


def als_streaming_soc(
    n_bursts: int = 24,
    issue_gap: int = 0,
    seed: int = 13,
) -> SocSpec:
    """An ALS-friendly SoC: RTL data sources in the accelerator stream data
    into transaction-level memories in the simulator.

    The data flow source (the RTL masters) lives in the accelerator, so with
    the accelerator leading the non-predictable data signals never have to be
    predicted -- the situation the paper's ALS mode targets.
    """
    from .generators import streaming_read_traffic, streaming_write_traffic

    return SocSpec(
        name="als_streaming",
        description="RTL masters in the accelerator writing into simulator memories",
        masters=[
            MasterSpec(
                master_id=0,
                name="rtl_dma0",
                domain=Domain.ACCELERATOR,
                level=AbstractionLevel.RTL,
                transactions=lambda: streaming_write_traffic(
                    0, SIM_MEMORY_WINDOW, n_bursts=n_bursts, seed=seed, issue_gap=issue_gap
                ),
            ),
            MasterSpec(
                master_id=1,
                name="rtl_dma1",
                domain=Domain.ACCELERATOR,
                level=AbstractionLevel.RTL,
                transactions=lambda: streaming_write_traffic(
                    1,
                    SIM_BUFFER_WINDOW,
                    n_bursts=n_bursts,
                    seed=seed + 1,
                    issue_gap=issue_gap,
                ),
            ),
            MasterSpec(
                master_id=2,
                name="rtl_reader",
                domain=Domain.ACCELERATOR,
                level=AbstractionLevel.RTL,
                transactions=lambda: streaming_read_traffic(
                    2, ACC_MEMORY_WINDOW, n_bursts=n_bursts, issue_gap=issue_gap
                ),
            ),
        ],
        slaves=[
            SlaveSpec(
                slave_id=0,
                name="acc_sram",
                domain=Domain.ACCELERATOR,
                base=ACC_MEMORY_WINDOW.base,
                size=ACC_MEMORY_WINDOW.size,
                level=AbstractionLevel.RTL,
            ),
            SlaveSpec(
                slave_id=1,
                name="sim_main_memory",
                domain=Domain.SIMULATOR,
                base=SIM_MEMORY_WINDOW.base,
                size=SIM_MEMORY_WINDOW.size,
            ),
            SlaveSpec(
                slave_id=2,
                name="sim_frame_buffer",
                domain=Domain.SIMULATOR,
                base=SIM_BUFFER_WINDOW.base,
                size=SIM_BUFFER_WINDOW.size,
            ),
        ],
    )


def sla_streaming_soc(n_bursts: int = 24, issue_gap: int = 0, seed: int = 17) -> SocSpec:
    """An SLA-friendly SoC: transaction-level masters in the simulator write
    into RTL memories modelled by the accelerator."""
    from .generators import streaming_read_traffic, streaming_write_traffic

    return SocSpec(
        name="sla_streaming",
        description="TL masters in the simulator writing into accelerator memories",
        masters=[
            MasterSpec(
                master_id=0,
                name="tl_cpu",
                domain=Domain.SIMULATOR,
                transactions=lambda: streaming_write_traffic(
                    0, ACC_BUFFER_WINDOW, n_bursts=n_bursts, seed=seed, issue_gap=issue_gap
                ),
            ),
            MasterSpec(
                master_id=1,
                name="tl_dma",
                domain=Domain.SIMULATOR,
                transactions=lambda: streaming_write_traffic(
                    1, ACC_MEMORY_WINDOW, n_bursts=n_bursts, seed=seed + 1, issue_gap=issue_gap
                ),
            ),
            MasterSpec(
                master_id=2,
                name="tl_reader",
                domain=Domain.SIMULATOR,
                transactions=lambda: streaming_read_traffic(
                    2, SIM_MEMORY_WINDOW, n_bursts=n_bursts, issue_gap=issue_gap
                ),
            ),
        ],
        slaves=[
            SlaveSpec(
                slave_id=0,
                name="acc_sram",
                domain=Domain.ACCELERATOR,
                base=ACC_MEMORY_WINDOW.base,
                size=ACC_MEMORY_WINDOW.size,
                level=AbstractionLevel.RTL,
            ),
            SlaveSpec(
                slave_id=1,
                name="acc_buffer",
                domain=Domain.ACCELERATOR,
                base=ACC_BUFFER_WINDOW.base,
                size=ACC_BUFFER_WINDOW.size,
                level=AbstractionLevel.RTL,
            ),
            SlaveSpec(
                slave_id=2,
                name="sim_main_memory",
                domain=Domain.SIMULATOR,
                base=SIM_MEMORY_WINDOW.base,
                size=SIM_MEMORY_WINDOW.size,
            ),
        ],
    )


def mixed_soc(n_transactions: int = 48, seed: int = 23) -> SocSpec:
    """A mixed SoC with traffic in both directions.

    Data flows both ways, so neither static leader can stay optimistic all
    the time; this spec exercises the dynamic mode decisions (AUTO policy)
    and the conservative fallback.
    """
    from .generators import dma_copy_traffic, streaming_write_traffic

    return SocSpec(
        name="mixed",
        description="bidirectional traffic exercising dynamic mode decisions",
        masters=[
            MasterSpec(
                master_id=0,
                name="rtl_stream",
                domain=Domain.ACCELERATOR,
                level=AbstractionLevel.RTL,
                transactions=lambda: streaming_write_traffic(
                    0, SIM_MEMORY_WINDOW, n_bursts=n_transactions // 2, seed=seed
                ),
            ),
            MasterSpec(
                master_id=1,
                name="tl_dma",
                domain=Domain.SIMULATOR,
                transactions=lambda: dma_copy_traffic(
                    1,
                    source=SIM_BUFFER_WINDOW,
                    destination=SIM_MEMORY_WINDOW,
                    n_blocks=n_transactions // 4,
                    seed=seed + 1,
                ),
            ),
        ],
        slaves=[
            SlaveSpec(
                slave_id=0,
                name="acc_sram",
                domain=Domain.ACCELERATOR,
                base=ACC_MEMORY_WINDOW.base,
                size=ACC_MEMORY_WINDOW.size,
                level=AbstractionLevel.RTL,
            ),
            SlaveSpec(
                slave_id=1,
                name="sim_main_memory",
                domain=Domain.SIMULATOR,
                base=SIM_MEMORY_WINDOW.base,
                size=SIM_MEMORY_WINDOW.size,
            ),
            SlaveSpec(
                slave_id=2,
                name="sim_buffer",
                domain=Domain.SIMULATOR,
                base=SIM_BUFFER_WINDOW.base,
                size=SIM_BUFFER_WINDOW.size,
            ),
        ],
    )


def single_master_soc(
    master_domain: Domain = Domain.ACCELERATOR,
    slave_domain: Domain = Domain.SIMULATOR,
    n_bursts: int = 16,
    write: bool = True,
    seed: int = 29,
) -> SocSpec:
    """The smallest interesting SoC: one master, one remote memory.

    Useful for unit tests and for studying the scheme without arbitration
    effects.
    """
    from .generators import streaming_read_traffic, streaming_write_traffic

    window = SIM_MEMORY_WINDOW if slave_domain is Domain.SIMULATOR else ACC_MEMORY_WINDOW
    def factory():
        if write:
            return streaming_write_traffic(0, window, n_bursts=n_bursts, seed=seed)
        return streaming_read_traffic(0, window, n_bursts=n_bursts)
    return SocSpec(
        name="single_master",
        description="one master, one memory",
        masters=[
            MasterSpec(master_id=0, name="m0", domain=master_domain, transactions=factory)
        ],
        slaves=[
            SlaveSpec(
                slave_id=0,
                name="memory",
                domain=slave_domain,
                base=window.base,
                size=window.size,
            )
        ],
    )
