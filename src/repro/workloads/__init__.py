"""Synthetic workloads: traffic generators, SoC configurations and traces."""

from .generators import (
    AddressWindow,
    DEFAULT_BURSTS,
    TrafficProfile,
    cpu_like_traffic,
    dma_copy_traffic,
    generate_traffic,
    interleaved_issue_cycles,
    streaming_read_traffic,
    streaming_write_traffic,
)
from .soc import (
    ACC_BUFFER_WINDOW,
    ACC_MEMORY_WINDOW,
    MasterSpec,
    SIM_BUFFER_WINDOW,
    SIM_MEMORY_WINDOW,
    SlaveSpec,
    SocSpec,
    als_streaming_soc,
    mixed_soc,
    single_master_soc,
    sla_streaming_soc,
)
from .trace import BusTrace, beat_to_dict, traces_equivalent, transaction_to_dict

__all__ = [
    "ACC_BUFFER_WINDOW",
    "ACC_MEMORY_WINDOW",
    "AddressWindow",
    "BusTrace",
    "DEFAULT_BURSTS",
    "MasterSpec",
    "SIM_BUFFER_WINDOW",
    "SIM_MEMORY_WINDOW",
    "SlaveSpec",
    "SocSpec",
    "TrafficProfile",
    "als_streaming_soc",
    "beat_to_dict",
    "cpu_like_traffic",
    "dma_copy_traffic",
    "generate_traffic",
    "interleaved_issue_cycles",
    "mixed_soc",
    "single_master_soc",
    "sla_streaming_soc",
    "streaming_read_traffic",
    "streaming_write_traffic",
    "traces_equivalent",
    "transaction_to_dict",
]
