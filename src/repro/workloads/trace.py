"""Transaction trace capture, comparison and (de)serialisation.

Traces are the functional ground truth of the reproduction: the committed
beat stream of the monolithic reference bus must match the stream produced by
the split co-emulated system under every synchronisation scheme and every
prediction accuracy.  This module turns recorder output into plain
dictionaries that can be diffed, stored as JSON and loaded back.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..ahb.transaction import CompletedBeat, CompletedTransaction, TransactionRecorder


def beat_to_dict(beat: CompletedBeat, include_cycle: bool = False) -> dict:
    """Convert a completed beat into a JSON-friendly dictionary."""
    entry = {
        "master": beat.master_id,
        "address": beat.address,
        "write": beat.write,
        "data": beat.data,
        "resp": int(beat.hresp),
        "burst": int(beat.hburst),
        "size": int(beat.hsize),
        "first_beat": beat.first_beat,
    }
    if include_cycle:
        entry["cycle"] = beat.cycle
    return entry


def transaction_to_dict(txn: CompletedTransaction) -> dict:
    return {
        "master": txn.master_id,
        "address": txn.address,
        "write": txn.write,
        "burst": int(txn.hburst),
        "size": int(txn.hsize),
        "data": list(txn.data),
        "ok": txn.ok,
    }


@dataclass
class BusTrace:
    """A captured trace of bus activity."""

    label: str
    beats: List[dict] = field(default_factory=list)
    transactions: List[dict] = field(default_factory=list)

    @classmethod
    def from_recorder(
        cls, label: str, recorder: TransactionRecorder, include_cycles: bool = False
    ) -> "BusTrace":
        return cls(
            label=label,
            beats=[beat_to_dict(beat, include_cycles) for beat in recorder.beats],
            transactions=[transaction_to_dict(txn) for txn in recorder.finalize()],
        )

    @classmethod
    def merged(cls, label: str, recorders: Iterable[TransactionRecorder]) -> "BusTrace":
        """Build a trace from several recorders.

        In the split system both half bus models observe (and record) the
        complete committed beat stream, so the recorders are redundant; this
        helper keeps the longest stream, which is convenient when one domain
        was reset or trimmed.
        """
        best: Optional[TransactionRecorder] = None
        for recorder in recorders:
            if best is None or len(recorder.beats) > len(best.beats):
                best = recorder
        if best is None:
            return cls(label=label)
        return cls.from_recorder(label, best)

    # -- comparison ------------------------------------------------------------
    def per_master_streams(self) -> Dict[int, List[dict]]:
        streams: Dict[int, List[dict]] = {}
        for beat in self.beats:
            streams.setdefault(beat["master"], []).append(beat)
        return streams

    def matches(self, other: "BusTrace") -> bool:
        return self.per_master_streams() == other.per_master_streams()

    def diff(self, other: "BusTrace", limit: int = 10) -> List[str]:
        """Human-readable differences between two traces (first ``limit``)."""
        problems: List[str] = []
        mine = self.per_master_streams()
        theirs = other.per_master_streams()
        for master in sorted(set(mine) | set(theirs)):
            a = mine.get(master, [])
            b = theirs.get(master, [])
            if len(a) != len(b):
                problems.append(
                    f"master {master}: {len(a)} beats in {self.label!r} vs "
                    f"{len(b)} in {other.label!r}"
                )
            for index, (beat_a, beat_b) in enumerate(zip(a, b)):
                if beat_a != beat_b:
                    problems.append(
                        f"master {master} beat {index}: {beat_a} != {beat_b}"
                    )
                if len(problems) >= limit:
                    return problems
        return problems

    # -- serialisation -------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {"label": self.label, "beats": self.beats, "transactions": self.transactions},
            indent=2,
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BusTrace":
        payload = json.loads(Path(path).read_text())
        return cls(
            label=payload["label"],
            beats=payload["beats"],
            transactions=payload.get("transactions", []),
        )


def traces_equivalent(
    reference: TransactionRecorder,
    candidates: Iterable[TransactionRecorder],
    label: str = "candidate",
) -> Optional[str]:
    """Check that every candidate recorder matches the reference stream.

    Returns None when equivalent, otherwise a description of the first
    difference.  The comparison is per-master and ignores cycle numbers
    (the optimistic scheme shifts wall-clock timing, not content).
    """
    ref_trace = BusTrace.from_recorder("reference", reference)
    for index, recorder in enumerate(candidates):
        trace = BusTrace.from_recorder(f"{label}_{index}", recorder)
        if not ref_trace.matches(trace):
            diff = trace.diff(ref_trace, limit=3)
            return f"trace {label}_{index} differs from reference: {diff}"
    return None
