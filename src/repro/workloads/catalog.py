"""Scenario catalog: named, tagged SoC configurations.

The paper evaluates its synchronisation schemes over SoC traffic shapes, not
over one fixed design; the catalog makes that axis first-class.  A *scenario*
is a registered builder producing a fresh :class:`~repro.workloads.soc.
SocSpec`; callers look scenarios up by name (CLI, batch orchestrator, tests)
or filter them by tag::

    from repro.workloads.catalog import build_scenario, scenario_names

    spec = build_scenario("dma_burst_storm")
    spec = build_scenario("als_streaming", n_bursts=8)   # builder kwargs
    scenario_names(tag="paper")                          # the original three

The three specs of the paper-era reproduction register here unchanged, plus
a set of new traffic shapes (multi-master contention, DMA burst storms,
interrupt-heavy control traffic, sparse periodic telemetry, read-modify-write
against FIFO peripherals) that exercise arbitration, the AUTO policy and the
FIFO response predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..ahb.signals import HBurst
from ..channel.faults import ChannelFaultConfig
from ..core.topology import DomainKind, DomainSpec, Topology
from ..sim.component import AbstractionLevel, Domain
from .generators import (
    AddressWindow,
    TrafficProfile,
    cpu_like_traffic,
    dma_copy_traffic,
    generate_traffic,
    streaming_read_traffic,
    streaming_write_traffic,
)
from .soc import (
    ACC_MEMORY_WINDOW,
    MasterSpec,
    SIM_BUFFER_WINDOW,
    SIM_MEMORY_WINDOW,
    SlaveSpec,
    SocSpec,
    als_streaming_soc,
    mixed_soc,
    single_master_soc,
    sla_streaming_soc,
)

ScenarioBuilder = Callable[..., SocSpec]


@dataclass(frozen=True)
class MechanismArtifactSpec:
    """Declarative mechanism-accuracy artifact parameters for one scenario.

    Scenarios that register one of these appear in the ``repro report``
    artifact pipeline: the pipeline runs the scenario conventionally and
    under ALS at each forced accuracy, through the orchestrator, and emits
    the gain/rollback/traffic table as a canonical artifact.  The ``quick_*``
    fields are the cut-down grid used by ``repro report --quick`` (and the
    CI smoke job).
    """

    cycles: int = 400
    accuracies: Tuple[float, ...] = (1.0, 0.99, 0.9, 0.6)
    quick_cycles: int = 120
    quick_accuracies: Tuple[float, ...] = (1.0, 0.9)

    def grid(self, quick: bool = False) -> Tuple[int, Tuple[float, ...]]:
        """The ``(cycles, accuracies)`` grid for full or quick mode."""
        if quick:
            return self.quick_cycles, self.quick_accuracies
        return self.cycles, self.accuracies


@dataclass(frozen=True)
class ScenarioInfo:
    """One catalog entry."""

    name: str
    builder: ScenarioBuilder
    tags: Tuple[str, ...]
    description: str
    artifact: Optional[MechanismArtifactSpec] = None


_CATALOG: Dict[str, ScenarioInfo] = {}


class ScenarioCatalogError(LookupError):
    """Unknown scenario name or conflicting registration."""


def register_scenario(
    name: str,
    *,
    tags: Tuple[str, ...] = (),
    description: str = "",
    artifact: Optional[MechanismArtifactSpec] = None,
):
    """Decorator registering a :class:`SocSpec` builder under ``name``.

    Also usable as a plain function call for builders defined elsewhere:
    ``register_scenario("mixed", tags=("paper",))(mixed_soc)``.  Passing an
    ``artifact`` spec opts the scenario into the ``repro report`` pipeline's
    mechanism-accuracy artifacts.
    """

    def decorate(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _CATALOG:
            raise ScenarioCatalogError(f"scenario {name!r} is already registered")
        doc_lines = (builder.__doc__ or "").strip().splitlines()
        _CATALOG[name] = ScenarioInfo(
            name=name,
            builder=builder,
            tags=tuple(tags),
            description=description or (doc_lines[0] if doc_lines else ""),
            artifact=artifact,
        )
        return builder

    return decorate


def get_scenario(name: str) -> ScenarioInfo:
    try:
        return _CATALOG[name]
    except KeyError:
        raise ScenarioCatalogError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(_CATALOG))}"
        ) from None


def build_scenario(name: str, **params) -> SocSpec:
    """Build a fresh :class:`SocSpec` for the named scenario."""
    return get_scenario(name).builder(**params)


def scenario_names(tag: Optional[str] = None) -> List[str]:
    return [info.name for info in list_scenarios(tag)]


def list_scenarios(tag: Optional[str] = None) -> List[ScenarioInfo]:
    """All registered scenarios (optionally filtered by tag), sorted by name."""
    infos = sorted(_CATALOG.values(), key=lambda info: info.name)
    if tag is None:
        return infos
    return [info for info in infos if tag in info.tags]


def artifact_scenarios() -> List[ScenarioInfo]:
    """Scenarios that declare a mechanism artifact spec, sorted by name."""
    return [info for info in list_scenarios() if info.artifact is not None]


# ---------------------------------------------------------------------------
# The paper-era specs.
# ---------------------------------------------------------------------------

register_scenario(
    "als_streaming",
    tags=("paper", "streaming", "als-friendly"),
    description="RTL masters in the accelerator writing into simulator memories",
    artifact=MechanismArtifactSpec(),
)(als_streaming_soc)

register_scenario(
    "sla_streaming",
    tags=("paper", "streaming", "sla-friendly"),
    description="TL masters in the simulator writing into accelerator memories",
    artifact=MechanismArtifactSpec(),
)(sla_streaming_soc)

register_scenario(
    "mixed",
    tags=("paper", "bidirectional", "auto"),
    description="bidirectional traffic exercising dynamic mode decisions",
    artifact=MechanismArtifactSpec(),
)(mixed_soc)

register_scenario(
    "single_master",
    tags=("minimal",),
    description="one master, one remote memory (no arbitration effects)",
    artifact=MechanismArtifactSpec(cycles=240, quick_cycles=80),
)(single_master_soc)


# ---------------------------------------------------------------------------
# New traffic shapes.
# ---------------------------------------------------------------------------

#: Small control-register window for the interrupt/control scenarios.
ACC_CONTROL_WINDOW = AddressWindow(base=0x4000_0000, size=0x400)
#: FIFO peripheral window for the read-modify-write scenario.
ACC_FIFO_WINDOW = AddressWindow(base=0x5000_0000, size=0x100)


@register_scenario(
    "multi_master_contention",
    tags=("contention", "arbitration", "als-friendly"),
)
def multi_master_contention_soc(n_bursts: int = 12, seed: int = 31) -> SocSpec:
    """Four masters in both domains fighting over one simulator memory.

    Two RTL streams plus two TL masters all target the same window, so the
    arbiter changes winners constantly and every domain's drive contributes
    request lines each cycle -- the worst case for per-cycle boundary
    traffic and a stress test for the LOB's arbitration predictions.
    """
    masters = [
        MasterSpec(
            master_id=0,
            name="rtl_stream0",
            domain=Domain.ACCELERATOR,
            level=AbstractionLevel.RTL,
            transactions=lambda: streaming_write_traffic(
                0, SIM_MEMORY_WINDOW, n_bursts=n_bursts, seed=seed
            ),
        ),
        MasterSpec(
            master_id=1,
            name="rtl_stream1",
            domain=Domain.ACCELERATOR,
            level=AbstractionLevel.RTL,
            transactions=lambda: streaming_write_traffic(
                1, SIM_MEMORY_WINDOW, n_bursts=n_bursts, seed=seed + 1
            ),
        ),
        MasterSpec(
            master_id=2,
            name="tl_cpu",
            domain=Domain.SIMULATOR,
            transactions=lambda: cpu_like_traffic(
                2,
                code_window=SIM_BUFFER_WINDOW,
                data_window=SIM_MEMORY_WINDOW,
                n_transactions=n_bursts * 2,
                seed=seed + 2,
            ),
        ),
        MasterSpec(
            master_id=3,
            name="tl_dma",
            domain=Domain.SIMULATOR,
            transactions=lambda: dma_copy_traffic(
                3,
                source=SIM_BUFFER_WINDOW,
                destination=SIM_MEMORY_WINDOW,
                n_blocks=n_bursts // 2,
                seed=seed + 3,
            ),
        ),
    ]
    slaves = [
        SlaveSpec(
            slave_id=0,
            name="sim_shared_memory",
            domain=Domain.SIMULATOR,
            base=SIM_MEMORY_WINDOW.base,
            size=SIM_MEMORY_WINDOW.size,
        ),
        SlaveSpec(
            slave_id=1,
            name="sim_code_memory",
            domain=Domain.SIMULATOR,
            base=SIM_BUFFER_WINDOW.base,
            size=SIM_BUFFER_WINDOW.size,
        ),
        SlaveSpec(
            slave_id=2,
            name="acc_sram",
            domain=Domain.ACCELERATOR,
            base=ACC_MEMORY_WINDOW.base,
            size=ACC_MEMORY_WINDOW.size,
            level=AbstractionLevel.RTL,
        ),
    ]
    return SocSpec(
        name="multi_master_contention",
        description="four masters in both domains contending for one memory",
        masters=masters,
        slaves=slaves,
    )


@register_scenario(
    "dma_burst_storm",
    tags=("dma", "burst", "als-friendly", "throughput"),
)
def dma_burst_storm_soc(n_blocks: int = 10, seed: int = 37) -> SocSpec:
    """Back-to-back INCR16 DMA bursts saturating the bus from the accelerator.

    Three RTL DMA engines issue maximum-length bursts with zero issue gap:
    the bus is busy every cycle, the LOB fills fast, and the channel sees the
    largest possible flush payloads.
    """

    def storm(master_id: int, window: AddressWindow, seed_offset: int):
        return lambda: streaming_write_traffic(
            master_id,
            window,
            n_bursts=n_blocks,
            burst=HBurst.INCR16,
            seed=seed + seed_offset,
            issue_gap=0,
        )

    masters = [
        MasterSpec(
            master_id=0,
            name="rtl_dma_a",
            domain=Domain.ACCELERATOR,
            level=AbstractionLevel.RTL,
            transactions=storm(0, SIM_MEMORY_WINDOW, 0),
        ),
        MasterSpec(
            master_id=1,
            name="rtl_dma_b",
            domain=Domain.ACCELERATOR,
            level=AbstractionLevel.RTL,
            transactions=storm(1, SIM_BUFFER_WINDOW, 1),
        ),
        MasterSpec(
            master_id=2,
            name="rtl_dma_c",
            domain=Domain.ACCELERATOR,
            level=AbstractionLevel.RTL,
            transactions=lambda: dma_copy_traffic(
                2,
                source=ACC_MEMORY_WINDOW,
                destination=SIM_MEMORY_WINDOW,
                n_blocks=n_blocks,
                burst=HBurst.INCR16,
                seed=seed + 2,
            ),
        ),
    ]
    slaves = [
        SlaveSpec(
            slave_id=0,
            name="acc_sram",
            domain=Domain.ACCELERATOR,
            base=ACC_MEMORY_WINDOW.base,
            size=ACC_MEMORY_WINDOW.size,
            level=AbstractionLevel.RTL,
        ),
        SlaveSpec(
            slave_id=1,
            name="sim_main_memory",
            domain=Domain.SIMULATOR,
            base=SIM_MEMORY_WINDOW.base,
            size=SIM_MEMORY_WINDOW.size,
        ),
        SlaveSpec(
            slave_id=2,
            name="sim_frame_buffer",
            domain=Domain.SIMULATOR,
            base=SIM_BUFFER_WINDOW.base,
            size=SIM_BUFFER_WINDOW.size,
        ),
    ]
    return SocSpec(
        name="dma_burst_storm",
        description="back-to-back INCR16 DMA bursts saturating the bus",
        masters=masters,
        slaves=slaves,
    )


@register_scenario(
    "interrupt_control",
    tags=("control", "interrupt", "sla-friendly", "latency"),
)
def interrupt_control_soc(n_events: int = 40, seed: int = 41) -> SocSpec:
    """Interrupt-heavy control traffic: single-beat register pokes.

    A simulator-side CPU services interrupt events by reading a status
    register and writing an acknowledge, all SINGLE transfers into a small
    accelerator control block with read wait states.  No bursts at all --
    the opposite of the streaming scenarios, and the regime where per-access
    channel startup overhead dominates.
    """

    def control_traffic():
        profile = TrafficProfile(
            master_id=0,
            n_transactions=n_events,
            write_fraction=0.5,
            bursts=(HBurst.SINGLE,),
            read_windows=(ACC_CONTROL_WINDOW,),
            write_windows=(ACC_CONTROL_WINDOW,),
            issue_gap=3,
            issue_gap_jitter=4,
            seed=seed,
        )
        return generate_traffic(profile)

    masters = [
        MasterSpec(
            master_id=0,
            name="tl_cpu",
            domain=Domain.SIMULATOR,
            transactions=control_traffic,
        ),
        MasterSpec(
            master_id=1,
            name="tl_logger",
            domain=Domain.SIMULATOR,
            transactions=lambda: streaming_write_traffic(
                1,
                SIM_MEMORY_WINDOW,
                n_bursts=max(1, n_events // 8),
                burst=HBurst.INCR4,
                seed=seed + 1,
                issue_gap=6,
            ),
        ),
    ]
    slaves = [
        SlaveSpec(
            slave_id=0,
            name="acc_irq_controller",
            domain=Domain.ACCELERATOR,
            base=ACC_CONTROL_WINDOW.base,
            size=ACC_CONTROL_WINDOW.size,
            level=AbstractionLevel.RTL,
            read_wait_states=1,
        ),
        SlaveSpec(
            slave_id=1,
            name="sim_log_memory",
            domain=Domain.SIMULATOR,
            base=SIM_MEMORY_WINDOW.base,
            size=SIM_MEMORY_WINDOW.size,
        ),
    ]
    return SocSpec(
        name="interrupt_control",
        description="interrupt-style single-beat control accesses to RTL registers",
        masters=masters,
        slaves=slaves,
    )


@register_scenario(
    "sparse_telemetry",
    tags=("sparse", "idle", "periodic", "als-friendly"),
)
def sparse_telemetry_soc(n_samples: int = 12, period: int = 24, seed: int = 43) -> SocSpec:
    """Sparse periodic telemetry: mostly-idle bus with short bursts.

    An RTL sensor block wakes up every ``period`` cycles and pushes a short
    INCR4 sample into simulator memory; a slow reader drains it.  Long idle
    stretches mean most boundary cycles carry nothing -- the regime where an
    optimistic leader commits whole LOB windows without any misprediction
    risk, and where the conventional scheme wastes two channel accesses per
    idle cycle.
    """
    masters = [
        MasterSpec(
            master_id=0,
            name="rtl_sensor",
            domain=Domain.ACCELERATOR,
            level=AbstractionLevel.RTL,
            transactions=lambda: streaming_write_traffic(
                0,
                SIM_MEMORY_WINDOW,
                n_bursts=n_samples,
                burst=HBurst.INCR4,
                seed=seed,
                issue_gap=period,
            ),
        ),
        MasterSpec(
            master_id=1,
            name="rtl_housekeeper",
            domain=Domain.ACCELERATOR,
            level=AbstractionLevel.RTL,
            transactions=lambda: streaming_read_traffic(
                1,
                ACC_MEMORY_WINDOW,
                n_bursts=max(1, n_samples // 3),
                burst=HBurst.INCR4,
                issue_gap=period * 3,
            ),
        ),
    ]
    slaves = [
        SlaveSpec(
            slave_id=0,
            name="acc_sram",
            domain=Domain.ACCELERATOR,
            base=ACC_MEMORY_WINDOW.base,
            size=ACC_MEMORY_WINDOW.size,
            level=AbstractionLevel.RTL,
        ),
        SlaveSpec(
            slave_id=1,
            name="sim_telemetry_buffer",
            domain=Domain.SIMULATOR,
            base=SIM_MEMORY_WINDOW.base,
            size=SIM_MEMORY_WINDOW.size,
        ),
    ]
    return SocSpec(
        name="sparse_telemetry",
        description="mostly-idle bus with short periodic telemetry bursts",
        masters=masters,
        slaves=slaves,
    )


# ---------------------------------------------------------------------------
# Multi-domain topologies.
# ---------------------------------------------------------------------------

#: Windows used by the multi-domain scenarios (one per extra accelerator).
ACC1_BUFFER_WINDOW = AddressWindow(base=0x6000_0000, size=0x4000)
FARM_WINDOWS = (
    AddressWindow(base=0x7000_0000, size=0x4000),
    AddressWindow(base=0x7100_0000, size=0x4000),
    AddressWindow(base=0x7200_0000, size=0x4000),
    AddressWindow(base=0x7300_0000, size=0x4000),
)


@register_scenario(
    "dual_accelerator_pipeline",
    tags=("multi-domain", "pipeline", "als-friendly"),
)
def dual_accelerator_pipeline_soc(n_bursts: int = 10, seed: int = 53) -> SocSpec:
    """Three domains: one accelerator streams into another and into the host.

    The first accelerator (``acc0``) hosts every data-flow source: one RTL
    DMA writes into a staging buffer modelled on a *second* accelerator
    (``acc1``, pure accelerator-to-accelerator traffic that never existed in
    the two-domain world) and another streams results into simulator memory.
    With all sources in ``acc0``, ALS elects it leader and runs optimistically
    across both sync channels.
    """
    acc0, acc1 = Domain("acc0"), Domain("acc1")
    topology = Topology(
        domains=(
            DomainSpec(domain=Domain.SIMULATOR, kind=DomainKind.SIMULATOR),
            DomainSpec(domain=acc0, kind=DomainKind.ACCELERATOR),
            DomainSpec(domain=acc1, kind=DomainKind.ACCELERATOR),
        )
    )
    masters = [
        MasterSpec(
            master_id=0,
            name="rtl_stage_writer",
            domain=acc0,
            level=AbstractionLevel.RTL,
            transactions=lambda: streaming_write_traffic(
                0, ACC1_BUFFER_WINDOW, n_bursts=n_bursts, seed=seed
            ),
        ),
        MasterSpec(
            master_id=1,
            name="rtl_result_writer",
            domain=acc0,
            level=AbstractionLevel.RTL,
            transactions=lambda: streaming_write_traffic(
                1, SIM_MEMORY_WINDOW, n_bursts=n_bursts, seed=seed + 1, issue_gap=1
            ),
        ),
    ]
    slaves = [
        SlaveSpec(
            slave_id=0,
            name="acc1_stage_buffer",
            domain=acc1,
            base=ACC1_BUFFER_WINDOW.base,
            size=ACC1_BUFFER_WINDOW.size,
            level=AbstractionLevel.RTL,
        ),
        SlaveSpec(
            slave_id=1,
            name="sim_result_memory",
            domain=Domain.SIMULATOR,
            base=SIM_MEMORY_WINDOW.base,
            size=SIM_MEMORY_WINDOW.size,
        ),
        SlaveSpec(
            slave_id=2,
            name="acc0_sram",
            domain=acc0,
            base=ACC_MEMORY_WINDOW.base,
            size=ACC_MEMORY_WINDOW.size,
            level=AbstractionLevel.RTL,
        ),
    ]
    return SocSpec(
        name="dual_accelerator_pipeline",
        description="acc0 streams into acc1 and the simulator (3-domain pipeline)",
        masters=masters,
        slaves=slaves,
        topology=topology,
    )


@register_scenario(
    "accelerator_farm_4x",
    tags=("multi-domain", "farm", "contention"),
)
def accelerator_farm_4x_soc(
    n_accelerators: int = 4, n_bursts: int = 6, seed: int = 59
) -> SocSpec:
    """One simulation host fronting a farm of accelerators.

    Each accelerator hosts one RTL DMA writing into its own simulator-side
    result window.  With sources spread across the farm no single leader can
    predict everything while several DMAs are active, so the engines degrade
    gracefully between optimistic windows and N-way conservative lock-step --
    the regime that exercises the sync-channel mesh hardest.
    """
    if not 1 <= n_accelerators <= len(FARM_WINDOWS):
        raise ValueError(f"n_accelerators must be within [1, {len(FARM_WINDOWS)}]")
    farm = [Domain(f"acc{i}") for i in range(n_accelerators)]
    topology = Topology(
        domains=(
            DomainSpec(domain=Domain.SIMULATOR, kind=DomainKind.SIMULATOR),
            *(DomainSpec(domain=d, kind=DomainKind.ACCELERATOR) for d in farm),
        )
    )

    def dma_traffic(index: int):
        return lambda: streaming_write_traffic(
            index,
            FARM_WINDOWS[index],
            n_bursts=n_bursts,
            seed=seed + index,
            issue_gap=2 * index,
        )

    masters = [
        MasterSpec(
            master_id=index,
            name=f"rtl_farm_dma{index}",
            domain=farm[index],
            level=AbstractionLevel.RTL,
            transactions=dma_traffic(index),
        )
        for index in range(n_accelerators)
    ]
    slaves = [
        SlaveSpec(
            slave_id=index,
            name=f"sim_result_window{index}",
            domain=Domain.SIMULATOR,
            base=FARM_WINDOWS[index].base,
            size=FARM_WINDOWS[index].size,
        )
        for index in range(n_accelerators)
    ]
    return SocSpec(
        name="accelerator_farm_4x",
        description="a farm of accelerators streaming into one simulation host",
        masters=masters,
        slaves=slaves,
        topology=topology,
    )


@register_scenario(
    "sim_only_baseline",
    tags=("multi-domain", "baseline", "single-domain"),
)
def sim_only_baseline_soc(n_bursts: int = 12, seed: int = 61) -> SocSpec:
    """Everything in one simulator domain: no channel, no synchronisation.

    The degenerate single-domain topology is the natural baseline for the
    co-emulation overhead studies: the same traffic as a split run but with
    zero channel accesses and no optimism to exploit, so conservative and
    ALS runs are trivially identical.
    """
    topology = Topology(
        domains=(DomainSpec(domain=Domain.SIMULATOR, kind=DomainKind.SIMULATOR),)
    )
    masters = [
        MasterSpec(
            master_id=0,
            name="tl_cpu",
            domain=Domain.SIMULATOR,
            transactions=lambda: cpu_like_traffic(
                0,
                code_window=SIM_BUFFER_WINDOW,
                data_window=SIM_MEMORY_WINDOW,
                n_transactions=n_bursts * 2,
                seed=seed,
            ),
        ),
        MasterSpec(
            master_id=1,
            name="tl_dma",
            domain=Domain.SIMULATOR,
            transactions=lambda: streaming_write_traffic(
                1, SIM_MEMORY_WINDOW, n_bursts=n_bursts, seed=seed + 1
            ),
        ),
    ]
    slaves = [
        SlaveSpec(
            slave_id=0,
            name="sim_main_memory",
            domain=Domain.SIMULATOR,
            base=SIM_MEMORY_WINDOW.base,
            size=SIM_MEMORY_WINDOW.size,
        ),
        SlaveSpec(
            slave_id=1,
            name="sim_code_memory",
            domain=Domain.SIMULATOR,
            base=SIM_BUFFER_WINDOW.base,
            size=SIM_BUFFER_WINDOW.size,
        ),
    ]
    return SocSpec(
        name="sim_only_baseline",
        description="single-domain baseline: the whole SoC inside the simulator",
        masters=masters,
        slaves=slaves,
        topology=topology,
    )


@register_scenario(
    "rmw_fifo",
    tags=("fifo", "read-modify-write", "bidirectional", "auto"),
)
def rmw_fifo_soc(n_blocks: int = 8, seed: int = 47) -> SocSpec:
    """Read-modify-write loops against a FIFO peripheral.

    A simulator DMA alternates read and write bursts (the read-modify-write
    shape) between simulator memory and an accelerator-side FIFO peripheral
    whose produce/consume pacing inserts data-dependent wait states, while an
    RTL master streams the other way.  Responses depend on FIFO fill level,
    so prediction quality -- and the AUTO policy's leader choice -- actually
    matters.
    """
    masters = [
        MasterSpec(
            master_id=0,
            name="tl_rmw_dma",
            domain=Domain.SIMULATOR,
            transactions=lambda: dma_copy_traffic(
                0,
                source=SIM_MEMORY_WINDOW,
                destination=ACC_FIFO_WINDOW,
                n_blocks=n_blocks,
                burst=HBurst.INCR4,
                seed=seed,
            ),
        ),
        MasterSpec(
            master_id=1,
            name="rtl_producer",
            domain=Domain.ACCELERATOR,
            level=AbstractionLevel.RTL,
            transactions=lambda: streaming_write_traffic(
                1,
                SIM_BUFFER_WINDOW,
                n_bursts=n_blocks,
                burst=HBurst.INCR4,
                seed=seed + 1,
                issue_gap=2,
            ),
        ),
    ]
    slaves = [
        SlaveSpec(
            slave_id=0,
            name="acc_fifo",
            domain=Domain.ACCELERATOR,
            base=ACC_FIFO_WINDOW.base,
            size=ACC_FIFO_WINDOW.size,
            kind="fifo",
            level=AbstractionLevel.RTL,
            fifo_depth=8,
            fifo_produce_period=2,
            fifo_consume_period=2,
        ),
        SlaveSpec(
            slave_id=1,
            name="sim_main_memory",
            domain=Domain.SIMULATOR,
            base=SIM_MEMORY_WINDOW.base,
            size=SIM_MEMORY_WINDOW.size,
        ),
        SlaveSpec(
            slave_id=2,
            name="sim_scratch",
            domain=Domain.SIMULATOR,
            base=SIM_BUFFER_WINDOW.base,
            size=SIM_BUFFER_WINDOW.size,
        ),
    ]
    return SocSpec(
        name="rmw_fifo",
        description="read-modify-write bursts against an accelerator FIFO peripheral",
        masters=masters,
        slaves=slaves,
    )


# ---------------------------------------------------------------------------
# Imperfect-channel scenarios.
#
# Each takes an existing traffic shape and declares a ChannelFaultConfig on
# the spec, so every run of the scenario -- CLI, orchestrator, sweeps --
# pays the seeded fault schedule through the selective-repeat reliability
# layer.  Functional results are identical to the ideal-channel runs of the
# same traffic (values travel in-process); what degrades is the modelled
# performance, which is exactly what the degradation sweeps measure.  A run
# request can still force the ideal channel back with an all-zero
# ``channel_faults`` override.
# ---------------------------------------------------------------------------


@register_scenario(
    "lossy_streaming",
    tags=("faulty", "streaming", "als-friendly"),
)
def lossy_streaming_soc(n_bursts: int = 24, loss_rate: float = 0.02, seed: int = 67) -> SocSpec:
    """The ALS streaming workload over a lossy, jittery channel.

    I.i.d. frame loss plus uniform jitter on every access: the mildest
    degradation shape, recovered by retransmission alone.
    """
    spec = als_streaming_soc(n_bursts=n_bursts)
    spec.name = "lossy_streaming"
    spec.description = "ALS streaming traffic over an i.i.d.-lossy, jittery channel"
    spec.channel_faults = ChannelFaultConfig(
        loss_rate=loss_rate,
        jitter_mean=0.5e-6,
        jitter_spread=1.0e-6,
        seed=seed,
    )
    return spec


@register_scenario(
    "bursty_link_mixed",
    tags=("faulty", "bidirectional", "burst-loss"),
)
def bursty_link_mixed_soc(seed: int = 71) -> SocSpec:
    """The mixed bidirectional workload over a bursty Gilbert-Elliott link.

    Loss arrives in bursts (a two-state channel alternating between a nearly
    clean and a heavily lossy regime), with occasional reordering and
    checksum-detectable corruption on top -- the shape that stresses the
    exponential-backoff RTO hardest.
    """
    spec = mixed_soc()
    spec.name = "bursty_link_mixed"
    spec.description = "mixed traffic over a bursty (Gilbert-Elliott) lossy link"
    spec.channel_faults = ChannelFaultConfig(
        loss_rate=0.005,
        burst_loss_rate=0.35,
        burst_enter=0.02,
        burst_exit=0.25,
        reorder_rate=0.02,
        corruption_rate=0.01,
        max_attempts=16,
        seed=seed,
    )
    return spec


@register_scenario(
    "degraded_pipeline",
    tags=("faulty", "multi-domain", "pipeline"),
)
def degraded_pipeline_soc(n_bursts: int = 10, seed: int = 73) -> SocSpec:
    """The three-domain pipeline with every sync channel degraded at once.

    Duplicates and a small bounded receive buffer join moderate loss across
    the whole channel mesh, so the reliability layer runs on every link of a
    multi-domain topology simultaneously.
    """
    spec = dual_accelerator_pipeline_soc(n_bursts=n_bursts)
    spec.name = "degraded_pipeline"
    spec.description = "3-domain pipeline with loss, duplicates and a bounded buffer"
    spec.channel_faults = ChannelFaultConfig(
        loss_rate=0.02,
        duplicate_rate=0.03,
        reorder_rate=0.05,
        reorder_depth=4,
        buffer_capacity=3,
        jitter_mean=0.2e-6,
        jitter_spread=0.4e-6,
        max_attempts=12,
        seed=seed,
    )
    return spec
