"""Plain-text rendering of tables and figures.

The benchmark harness prints the reproduced tables/figures in the same shape
as the paper: Table 2 as a column-per-accuracy table and Figure 4 as a set of
performance-vs-accuracy series (rendered as an ASCII chart, since the
environment is text only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_quantity(value: float, significant_digits: int = 3) -> str:
    """Engineering-friendly formatting: scientific for small values,
    thousands-separated for big ones."""
    if value == 0:
        return "0"
    if abs(value) < 1e-3:
        return f"{value:.{significant_digits - 1}e}"
    if abs(value) >= 1e4:
        return f"{value:,.0f}"
    return f"{value:.{significant_digits}g}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    column_gap: int = 2,
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [
        [cell if isinstance(cell, str) else format_quantity(float(cell)) for cell in row]
        for row in rows
    ]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    gap = " " * column_gap
    lines = []
    if title:
        lines.append(title)
    lines.append(gap.join(cell.rjust(width) for cell, width in zip(cells[0], widths)))
    lines.append(gap.join("-" * width for width in widths))
    for row in cells[1:]:
        lines.append(gap.join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_transposed_table(
    row_labels: Sequence[str],
    columns: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render a table whose columns are keyed series (like the paper's
    Table 2, where each column is one prediction accuracy)."""
    headers = [""] + list(columns.keys())
    rows = []
    for index, label in enumerate(row_labels):
        row = [label] + [format_quantity(columns[key][index]) for key in columns]
        rows.append(row)
    return render_table(headers, rows, title=title)


@dataclass
class Series:
    """One line of an ASCII chart."""

    label: str
    x: List[float]
    y: List[float]
    marker: str = "*"


def render_ascii_chart(
    series: Iterable[Series],
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    reference_lines: Optional[Dict[str, float]] = None,
) -> str:
    """Render a set of series as a crude ASCII scatter/line chart.

    The x axis is laid out by value order of the union of x points (matching
    the paper's Figure 4, whose accuracy axis is categorical).
    """
    series = list(series)
    if not series:
        return "(no data)"
    all_x = sorted({x for s in series for x in s.x}, reverse=True)
    all_y = [y for s in series for y in s.y]
    if reference_lines:
        all_y.extend(reference_lines.values())
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    grid = [[" " for _ in range(width)] for _ in range(height)]

    def col_of(x: float) -> int:
        index = all_x.index(x)
        if len(all_x) == 1:
            return 0
        return round(index * (width - 1) / (len(all_x) - 1))

    def row_of(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return (height - 1) - round(frac * (height - 1))

    if reference_lines:
        for _, value in reference_lines.items():
            row = row_of(value)
            for col in range(width):
                if grid[row][col] == " ":
                    grid[row][col] = "."
    for s in series:
        for x, y in zip(s.x, s.y):
            grid[row_of(y)][col_of(x)] = s.marker

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"[y: {y_label}]  max={format_quantity(y_max)}  min={format_quantity(y_min)}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    axis = "  ".join(format_quantity(x) for x in all_x)
    lines.append(f"x ({x_label}): {axis}")
    legend = "legend: " + "  ".join(f"{s.marker}={s.label}" for s in series)
    if reference_lines:
        legend += "  " + "  ".join(
            f".={name} ({format_quantity(value)})" for name, value in reference_lines.items()
        )
    lines.append(legend)
    return "\n".join(lines)


def render_comparison(title: str, rows: List[dict]) -> str:
    """Render paper-vs-measured comparison rows."""
    table_rows = [
        [
            row["name"],
            format_quantity(row["paper"]),
            format_quantity(row["measured"]),
            f"{row['ratio']:.2f}x",
            f"{100 * row['relative_error']:.1f}%",
        ]
        for row in rows
    ]
    return render_table(
        ["quantity", "paper", "reproduced", "ratio", "rel.err"], table_rows, title=title
    )
