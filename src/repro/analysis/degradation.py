"""Channel-degradation sweeps.

The paper's central claim is that prediction packetizing reduces *channel
accesses*; an imperfect channel multiplies the cost of every access it keeps.
These sweeps quantify that interaction: how each synchronisation mechanism's
performance falls off as frame loss rises, how prediction accuracy and loss
compound, and where a link becomes effectively unusable (the give-up
threshold).  The headline result mirrors the ideal-channel story -- because
the optimistic scheme pays orders of magnitude fewer accesses, it also
suffers orders of magnitude fewer faults, so its degradation curve is far
flatter than the conventional scheme's.

Every point is deterministic: the fault schedule is a pure function of the
:class:`~repro.channel.faults.ChannelFaultConfig` seed, and the functional
run (committed beats) is identical across the whole grid by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence

from ..channel.faults import ChannelDegradedError, ChannelFaultConfig
from ..core.coemulation import CoEmulationConfig
from ..core.modes import OperatingMode
from ..workloads.soc import SocSpec
from .sweep import run_engine


@dataclass
class DegradationPoint:
    """One (mechanism, loss rate[, accuracy]) point of a degradation sweep."""

    mode: str
    loss_rate: float
    accuracy: Optional[float]
    performance: float
    channel_accesses: int
    retransmissions: int
    drops: int
    rollbacks: int
    total_time: float
    #: Relative performance against the same mechanism's ideal-channel run.
    relative_performance: float = 1.0
    #: True when the link degraded past the give-up threshold (the run raised
    #: :class:`~repro.channel.faults.ChannelDegradedError` instead of
    #: finishing; the metric fields hold zeros).
    gave_up: bool = False

    def row(self) -> dict:
        return {
            "mode": self.mode,
            "loss_rate": self.loss_rate,
            "accuracy": self.accuracy,
            "performance": self.performance,
            "relative_performance": self.relative_performance,
            "channel_accesses": self.channel_accesses,
            "retransmissions": self.retransmissions,
            "drops": self.drops,
            "rollbacks": self.rollbacks,
            "total_time": self.total_time,
            "gave_up": self.gave_up,
        }


def _point(
    spec: SocSpec,
    config: CoEmulationConfig,
    mode: OperatingMode,
    loss_rate: float,
    accuracy: Optional[float],
) -> DegradationPoint:
    try:
        result = run_engine(spec, config)
    except ChannelDegradedError:
        return DegradationPoint(
            mode=mode.value,
            loss_rate=loss_rate,
            accuracy=accuracy,
            performance=0.0,
            channel_accesses=0,
            retransmissions=0,
            drops=0,
            rollbacks=0,
            total_time=0.0,
            gave_up=True,
        )
    faults = result.channel.get("faults") or {}
    return DegradationPoint(
        mode=mode.value,
        loss_rate=loss_rate,
        accuracy=accuracy,
        performance=result.performance_cycles_per_second,
        channel_accesses=result.channel.get("accesses", 0),
        retransmissions=faults.get("retransmissions", 0),
        drops=faults.get("drops", 0),
        rollbacks=result.transitions.get("rollbacks", 0),
        total_time=result.total_modelled_time,
    )


def loss_rate_sweep(
    spec: SocSpec,
    base_config: CoEmulationConfig,
    loss_rates: Sequence[float],
    modes: Iterable[OperatingMode] = (OperatingMode.CONSERVATIVE, OperatingMode.ALS),
    base_faults: Optional[ChannelFaultConfig] = None,
) -> List[DegradationPoint]:
    """Sweep frame-loss rate for each mechanism.

    ``base_faults`` carries every non-loss knob (jitter, reliability-protocol
    parameters, seed); each point overrides only ``loss_rate``.  The zero-loss
    point of each mode anchors its ``relative_performance`` column (an ideal
    channel when ``base_faults`` is otherwise fault-free).
    """
    spec.cache_traffic()
    faults = base_faults if base_faults is not None else ChannelFaultConfig()
    points: List[DegradationPoint] = []
    for mode in modes:
        baseline: Optional[float] = None
        for loss in loss_rates:
            config = replace(
                base_config,
                mode=mode,
                channel_faults=replace(faults, loss_rate=loss),
            )
            point = _point(spec, config, mode, loss, base_config.forced_accuracy)
            if baseline is None and not point.gave_up:
                baseline = point.performance
            point.relative_performance = (
                point.performance / baseline if baseline else 0.0
            )
            points.append(point)
    return points


def accuracy_loss_grid(
    spec: SocSpec,
    base_config: CoEmulationConfig,
    accuracies: Sequence[float],
    loss_rates: Sequence[float],
    base_faults: Optional[ChannelFaultConfig] = None,
) -> List[DegradationPoint]:
    """The accuracy x loss-rate grid for the optimistic mechanism.

    Prediction failures and channel faults compound: a rollback's follow-up
    exchanges also ride the faulty channel.  Each accuracy's zero-loss point
    anchors that row's ``relative_performance``.
    """
    spec.cache_traffic()
    faults = base_faults if base_faults is not None else ChannelFaultConfig()
    points: List[DegradationPoint] = []
    for accuracy in accuracies:
        baseline: Optional[float] = None
        for loss in loss_rates:
            config = replace(
                base_config,
                mode=OperatingMode.ALS,
                forced_accuracy=accuracy,
                channel_faults=replace(faults, loss_rate=loss),
            )
            point = _point(spec, config, OperatingMode.ALS, loss, accuracy)
            if baseline is None and not point.gave_up:
                baseline = point.performance
            point.relative_performance = (
                point.performance / baseline if baseline else 0.0
            )
            points.append(point)
    return points


def degradation_rows(points: List[DegradationPoint]) -> List[dict]:
    return [point.row() for point in points]
