"""Paper-artifact pipeline: declarative specs -> orchestrated runs -> files.

The paper's headline artifacts -- Table 2 (ALS performance breakdown),
Figure 4 (performance-vs-accuracy curves) and the reproduction's own
mechanism-accuracy tables -- used to be produced by ad-hoc benchmark
scripts.  This module drives all of them through the batch orchestrator
instead: each artifact declares the :class:`~repro.orchestration.request.
RunRequest` grid it needs, the pipeline executes the union of those grids
once (deduplicated by ``request_id``, optionally memoized through a
:class:`~repro.orchestration.cache.ResultCache`, parallelised by a
:class:`~repro.orchestration.runner.BatchRunner`), and each artifact is then
rendered purely from the resulting records.

Because records are deterministic functions of their requests and every
emitted byte is derived from records through canonical encoders (sorted-key
JSON, ``repr`` floats, ``\\n`` line endings), the files under ``artifacts/``
are byte-identical across repeated runs, across ``--jobs`` levels and across
cold/warm caches -- which is exactly what the CI artifact smoke job asserts.
"""

from __future__ import annotations

import csv
import hashlib
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.analytical import (
    FIGURE4_ACCURACIES,
    PAPER_TABLE2,
    TABLE2_ACCURACIES,
)
from ..orchestration import BatchRunner, RunRecord, RunRequest, derive_seed
from .metrics import trace_replay_share
from ..orchestration.cache import CacheStats, ResultCache
from ..orchestration.request import canonical_json
from ..orchestration.store import atomic_write_text
from ..workloads.catalog import artifact_scenarios

#: Accuracy grids for ``--quick`` mode: subsets of the full grids, so a quick
#: run's cache entries are all reusable by a later full run.
QUICK_TABLE2_ACCURACIES = (1.0, 0.9, 0.6, 0.1)
QUICK_FIGURE4_ACCURACIES = (1.0, 0.9, 0.6, 0.3, 0.1)

#: Figure 4's configuration axes (paper Section 6).
FIGURE4_SIMULATOR_SPEEDS = (1_000_000.0, 100_000.0)
FIGURE4_LOB_DEPTHS = (64, 8)

#: Cycle count for analytical pseudo-engine runs.  The closed-form model's
#: per-cycle numbers are independent of it; it only scales committed cycles.
ANALYTICAL_CYCLES = 1000

#: Scenario carried by analytical requests.  The pseudo-engine never builds
#: the SoC, but requests validate their scenario name either way; the
#: cheapest catalog entry keeps that validation fast.
ANALYTICAL_SCENARIO = "single_master"

#: Base seed for the mechanism artifact grids (per-request seeds derive from
#: it via :func:`~repro.orchestration.request.derive_seed`).
MECHANISM_BASE_SEED = 2005


@dataclass(frozen=True)
class Artifact:
    """One rendered artifact: a titled table with typed cells.

    ``rows`` hold plain scalars (str/int/float/bool/None); rendering to CSV
    and JSON is canonical, so equal artifacts always serialise to equal
    bytes.
    """

    name: str
    title: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]

    def as_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
        }


@dataclass(frozen=True)
class ArtifactSpec:
    """An artifact's request grid plus its record-to-table renderer."""

    name: str
    requests: Tuple[RunRequest, ...]
    build: Callable[[Mapping[str, RunRecord]], Artifact]


@dataclass
class PipelineResult:
    """Outcome of one pipeline run."""

    artifacts: List[Artifact]
    total_requests: int
    executed: int
    cache_hits: int

    def summary(self) -> str:
        return (
            f"{self.total_requests} grid point(s): "
            f"{self.executed} executed, {self.cache_hits} cache hit(s)"
        )


#: Analytical grids pin the paper's LOB depth explicitly so their request
#: payloads stay stable even if the engine-level default ever moves.
DEFAULT_ANALYTICAL_LOB_DEPTH = 64


def _record(records: Mapping[str, RunRecord], request: RunRequest) -> RunRecord:
    try:
        return records[request.request_id]
    except KeyError:
        raise KeyError(
            f"pipeline is missing a record for request {request.request_id} "
            f"({request.display_label()})"
        ) from None


def _analytical_request(
    mode: str,
    simulator_speed: float,
    lob_depth: int,
    accuracy: Optional[float] = None,
) -> RunRequest:
    """One closed-form-model run, fully pinned so equal points share an id.

    Requests deliberately carry no display label: the label participates in
    ``request_id`` (a record must reproduce its request's label for store
    byte-identity), so shared analytical points must agree on every field.
    """
    return RunRequest(
        scenario=ANALYTICAL_SCENARIO,
        mode=mode,
        cycles=ANALYTICAL_CYCLES,
        lob_depth=lob_depth,
        accuracy=accuracy,
        engine="analytical",
        config_overrides={"simulator_cycles_per_second": simulator_speed},
    )


# ---------------------------------------------------------------------------
# Table 2.
# ---------------------------------------------------------------------------


def table2_spec(quick: bool = False) -> ArtifactSpec:
    """Table 2: ALS per-cycle cost breakdown and gain vs accuracy."""
    accuracies = QUICK_TABLE2_ACCURACIES if quick else TABLE2_ACCURACIES
    # No display labels and an explicit simulator speed: Table 2's points are
    # exactly Figure 4's "Sim=1000k, LOBdepth=64" series (where accuracies
    # overlap), so the pipeline and the cache see one request, not two.
    conventional = _analytical_request(
        "conservative", FIGURE4_SIMULATOR_SPEEDS[0], DEFAULT_ANALYTICAL_LOB_DEPTH
    )
    points = tuple(
        _analytical_request(
            "als", FIGURE4_SIMULATOR_SPEEDS[0], DEFAULT_ANALYTICAL_LOB_DEPTH, accuracy
        )
        for accuracy in accuracies
    )

    def build(records: Mapping[str, RunRecord]) -> Artifact:
        baseline = _record(records, conventional).performance
        rows = []
        for request in points:
            record = _record(records, request)
            times = record.per_cycle_times
            paper = PAPER_TABLE2.get(round(record.accuracy, 3), {})
            rows.append(
                (
                    record.accuracy,
                    times["simulator"],
                    times["accelerator"],
                    times["state_store"],
                    times["state_restore"],
                    times["channel"],
                    record.performance,
                    record.performance / baseline,
                    paper.get("performance"),
                    paper.get("ratio"),
                )
            )
        return Artifact(
            name="table2",
            title="Table 2: Performance of ALS (analytical, via the orchestrator)",
            headers=(
                "accuracy",
                "t_sim",
                "t_acc",
                "t_store",
                "t_restore",
                "t_channel",
                "performance",
                "ratio",
                "paper_performance",
                "paper_ratio",
            ),
            rows=tuple(rows),
        )

    return ArtifactSpec(
        name="table2", requests=(conventional,) + points, build=build
    )


# ---------------------------------------------------------------------------
# Figure 4.
# ---------------------------------------------------------------------------


def figure4_spec(quick: bool = False) -> ArtifactSpec:
    """Figure 4: performance vs accuracy across speed x LOB-depth series."""
    accuracies = QUICK_FIGURE4_ACCURACIES if quick else FIGURE4_ACCURACIES
    conventionals = {
        speed: _analytical_request(
            "conservative", speed, DEFAULT_ANALYTICAL_LOB_DEPTH
        )
        for speed in FIGURE4_SIMULATOR_SPEEDS
    }
    series: List[Tuple[str, float, int, RunRequest]] = []
    for speed in FIGURE4_SIMULATOR_SPEEDS:
        for depth in FIGURE4_LOB_DEPTHS:
            label = f"Sim={int(speed / 1000)}k, LOBdepth={depth}"
            for accuracy in accuracies:
                series.append(
                    (label, speed, depth, _analytical_request("als", speed, depth, accuracy))
                )

    def build(records: Mapping[str, RunRecord]) -> Artifact:
        baselines = {
            speed: _record(records, request).performance
            for speed, request in conventionals.items()
        }
        rows = []
        for label, speed, depth, request in series:
            record = _record(records, request)
            rows.append(
                (
                    label,
                    speed,
                    depth,
                    record.accuracy,
                    record.performance,
                    baselines[speed],
                    record.performance / baselines[speed],
                )
            )
        return Artifact(
            name="figure4",
            title="Figure 4: ALS performance vs prediction accuracy "
            "(analytical, via the orchestrator)",
            headers=(
                "series",
                "simulator_speed",
                "lob_depth",
                "accuracy",
                "performance",
                "conventional_performance",
                "gain",
            ),
            rows=tuple(rows),
        )

    return ArtifactSpec(
        name="figure4",
        requests=tuple(conventionals.values())
        + tuple(request for _, _, _, request in series),
        build=build,
    )


# ---------------------------------------------------------------------------
# Mechanism accuracy (one artifact per catalog scenario that declares a spec).
# ---------------------------------------------------------------------------


def mechanism_spec(scenario: str, quick: bool = False) -> ArtifactSpec:
    """Mechanism-level ALS-vs-conventional table for one catalog scenario."""
    for info in artifact_scenarios():
        if info.name == scenario:
            break
    else:
        raise LookupError(f"scenario {scenario!r} declares no artifact spec")
    cycles, accuracies = info.artifact.grid(quick)
    conventional = RunRequest(
        scenario=scenario,
        mode="conservative",
        cycles=cycles,
        seed=derive_seed(MECHANISM_BASE_SEED, "mechanism", scenario, "conservative"),
        label=f"mechanism/{scenario}/conventional",
    )
    points = tuple(
        RunRequest(
            scenario=scenario,
            mode="als",
            cycles=cycles,
            accuracy=accuracy,
            seed=derive_seed(MECHANISM_BASE_SEED, "mechanism", scenario, accuracy),
            label=f"mechanism/{scenario}/p={accuracy:g}",
        )
        for accuracy in accuracies
    )

    def build(records: Mapping[str, RunRecord]) -> Artifact:
        baseline = _record(records, conventional)
        rows = []
        for request in (conventional,) + points:
            record = _record(records, request)
            rows.append(
                (
                    record.mode,
                    record.accuracy,
                    record.committed_cycles,
                    record.performance,
                    record.performance / baseline.performance,
                    record.channel.get("accesses", 0),
                    record.transitions.get("rollbacks", 0),
                    trace_replay_share(record.trace_replay, record.committed_cycles),
                    record.monitors_ok,
                    record.beat_digest,
                )
            )
        return Artifact(
            name=f"mechanism_{scenario}",
            title=f"Mechanism-level ALS sweep on '{scenario}' ({cycles} cycles)",
            headers=(
                "mode",
                "accuracy",
                "committed_cycles",
                "performance",
                "gain",
                "channel_accesses",
                "rollbacks",
                "trace_pct",
                "monitors_ok",
                "beat_digest",
            ),
            rows=tuple(rows),
        )

    return ArtifactSpec(
        name=f"mechanism_{scenario}",
        requests=(conventional,) + points,
        build=build,
    )


def default_specs(quick: bool = False) -> List[ArtifactSpec]:
    """The full reproduction: Table 2, Figure 4, every mechanism artifact."""
    specs = [table2_spec(quick), figure4_spec(quick)]
    for info in artifact_scenarios():
        specs.append(mechanism_spec(info.name, quick))
    return specs


# ---------------------------------------------------------------------------
# The pipeline.
# ---------------------------------------------------------------------------


def run_pipeline(
    *,
    quick: bool = False,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    names: Optional[Sequence[str]] = None,
    runner: Optional[BatchRunner] = None,
) -> PipelineResult:
    """Execute the artifact specs' request grids and render the artifacts.

    Requests shared between artifacts (and repeated grid points) are
    deduplicated by ``request_id`` before execution, so the engine work is
    the union of the grids, not their sum.
    """
    specs = default_specs(quick)
    if names is not None:
        wanted = set(names)
        specs = [spec for spec in specs if spec.name in wanted]
        unknown = wanted - {spec.name for spec in specs}
        if unknown:
            known = ", ".join(spec.name for spec in default_specs(quick))
            raise LookupError(
                f"unknown artifact(s) {sorted(unknown)}; known: {known}"
            )
    unique: Dict[str, RunRequest] = {}
    for spec in specs:
        for request in spec.requests:
            unique.setdefault(request.request_id, request)
    requests = list(unique.values())
    runner = runner or BatchRunner(jobs=jobs)
    before = cache.stats.snapshot() if cache is not None else CacheStats()
    records = runner.run(requests, cache=cache)
    hits = (cache.stats.since(before).hits) if cache is not None else 0
    by_id = {record.request_id: record for record in records}
    return PipelineResult(
        artifacts=[spec.build(by_id) for spec in specs],
        total_requests=len(requests),
        executed=len(requests) - hits,
        cache_hits=hits,
    )


# ---------------------------------------------------------------------------
# Canonical rendering.
# ---------------------------------------------------------------------------


def canonical_cell(value: object) -> str:
    """Deterministic CSV cell text: ``repr`` for floats, ``str`` otherwise.

    ``repr`` of a float is its shortest round-tripping decimal form --
    stable across runs, platforms and Python versions >= 3.1.
    """
    if isinstance(value, float):
        return repr(value)
    if value is None:
        return ""
    return str(value)


def render_csv(artifact: Artifact) -> str:
    """Canonical CSV: header row plus data rows, ``\\n`` line endings."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(artifact.headers)
    for row in artifact.rows:
        writer.writerow([canonical_cell(cell) for cell in row])
    return buffer.getvalue()


def render_json(artifact: Artifact) -> str:
    """Canonical JSON (sorted keys, compact separators), newline-terminated."""
    return canonical_json(artifact.as_payload()) + "\n"


def write_artifacts(
    artifacts: Sequence[Artifact], out_dir: Union[str, Path]
) -> Dict[str, str]:
    """Write each artifact as ``<name>.csv`` + ``<name>.json`` plus a manifest.

    Every file is written atomically.  Returns the manifest mapping: file
    name -> SHA-256 of its bytes.  ``MANIFEST.json`` itself is the canonical
    encoding of that mapping, so the whole directory is byte-identical
    whenever the artifacts are.
    """
    out = Path(out_dir)
    manifest: Dict[str, str] = {}
    for artifact in artifacts:
        for suffix, text in (
            (".csv", render_csv(artifact)),
            (".json", render_json(artifact)),
        ):
            name = artifact.name + suffix
            atomic_write_text(out / name, text)
            manifest[name] = hashlib.sha256(text.encode("utf-8")).hexdigest()
    atomic_write_text(out / "MANIFEST.json", canonical_json(manifest) + "\n")
    return manifest
