"""Metrics helpers: speed-ups, relative errors and paper comparisons."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional


def speedup(optimized: float, baseline: float) -> float:
    """Performance ratio; infinite when the baseline is zero."""
    if baseline == 0:
        return math.inf
    return optimized / baseline


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (0 when both are zero)."""
    if reference == 0:
        return 0.0 if measured == 0 else math.inf
    return abs(measured - reference) / abs(reference)


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """True when ``measured`` is within ``factor``x of ``reference`` either way."""
    if measured <= 0 or reference <= 0 or factor < 1.0:
        return False
    ratio = measured / reference
    return 1.0 / factor <= ratio <= factor


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class ComparisonRow:
    """One measured-vs-paper comparison entry."""

    name: str
    paper_value: float
    measured_value: float

    @property
    def error(self) -> float:
        return relative_error(self.measured_value, self.paper_value)

    @property
    def ratio(self) -> float:
        if self.paper_value == 0:
            return math.inf if self.measured_value else 1.0
        return self.measured_value / self.paper_value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "paper": self.paper_value,
            "measured": self.measured_value,
            "ratio": self.ratio,
            "relative_error": self.error,
        }


@dataclass
class PaperComparison:
    """A set of measured-vs-paper comparisons with summary statistics."""

    title: str
    rows: List[ComparisonRow]

    @classmethod
    def from_mappings(
        cls,
        title: str,
        paper: Mapping[str, float],
        measured: Mapping[str, float],
    ) -> "PaperComparison":
        rows = [
            ComparisonRow(name=key, paper_value=paper[key], measured_value=measured[key])
            for key in paper
            if key in measured
        ]
        return cls(title=title, rows=rows)

    def max_error(self) -> float:
        return max((row.error for row in self.rows), default=0.0)

    def mean_error(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.error for row in self.rows) / len(self.rows)

    def worst_row(self) -> Optional[ComparisonRow]:
        return max(self.rows, key=lambda row: row.error, default=None)

    def all_within(self, max_relative_error: float) -> bool:
        return all(row.error <= max_relative_error for row in self.rows)

    def as_dicts(self) -> List[dict]:
        return [row.as_dict() for row in self.rows]


def crossover_accuracy(
    accuracies: List[float], performances: List[float], threshold: float
) -> Optional[float]:
    """Find (by linear interpolation) the accuracy at which a descending
    performance curve crosses ``threshold``.

    The curve is assumed to be sampled at decreasing performance as accuracy
    decreases.  Returns None when the curve never crosses.
    """
    if len(accuracies) != len(performances):
        raise ValueError("accuracies and performances must have the same length")
    points = sorted(zip(accuracies, performances))
    below = None
    above = None
    for accuracy, perf in points:
        if perf < threshold:
            below = (accuracy, perf)
        elif above is None or accuracy < above[0]:
            above = (accuracy, perf)
    if below is None or above is None:
        return None
    (a0, p0), (a1, p1) = below, above
    if p1 == p0:
        return a0
    return a0 + (threshold - p0) * (a1 - a0) / (p1 - p0)


def monotonically_non_increasing(values: List[float], tolerance: float = 1e-9) -> bool:
    """True when each value is <= the previous one (within tolerance)."""
    return all(b <= a + tolerance for a, b in zip(values, values[1:]))


def summarize_counts(counts: Dict[str, int]) -> str:
    """Compact 'k=v' rendering of a counter dict, sorted by key."""
    return ", ".join(f"{key}={counts[key]}" for key in sorted(counts))


def trace_replay_share(trace_replay: Mapping[str, object], committed_cycles: int) -> float:
    """Fraction of committed cycles the trace-replay controller fast-forwarded.

    ``trace_replay`` is the counter mapping the trace engines attach to
    results (``CoEmulationResult.trace_replay`` / ``RunRecord.trace_replay``).
    Engines without the controller report an empty mapping; those, disabled
    controllers and zero-cycle runs all yield ``0.0``.
    """
    if not trace_replay or committed_cycles <= 0:
        return 0.0
    return float(trace_replay.get("replayed_cycles", 0) or 0) / float(committed_cycles)


#: Ledger categories that are bookkeeping, not domain execution time.
NON_DOMAIN_CATEGORIES = frozenset({"state_store", "state_restore", "channel", "other"})


def domain_time_shares(per_cycle_times: Mapping[str, float]) -> Dict[str, float]:
    """Per-domain execution time per committed cycle, in ledger order.

    Every ledger category that is not synchronisation bookkeeping is a
    domain execution bucket (``simulator`` / ``accelerator`` for the
    canonical pair, one entry per domain id for multi-domain topologies).
    """
    return {
        category: seconds
        for category, seconds in per_cycle_times.items()
        if category not in NON_DOMAIN_CATEGORIES
    }


def per_domain_utilisation(per_cycle_times: Mapping[str, float]) -> Dict[str, float]:
    """Fraction of total modelled time each domain spends executing.

    The residual (1 - sum of the returned values) is synchronisation
    overhead: channel accesses plus state store/restore.  Zero-total inputs
    yield all-zero utilisations.
    """
    total = sum(per_cycle_times.values())
    if total <= 0:
        return {domain: 0.0 for domain in domain_time_shares(per_cycle_times)}
    return {
        domain: seconds / total
        for domain, seconds in domain_time_shares(per_cycle_times).items()
    }
