"""Parameter sweep helpers.

The experiments sweep prediction accuracy (Table 2, Figure 4), LOB depth and
simulator speed (Figure 4), and -- in the reproduction's own ablations --
channel startup overhead and state-store cost.  These helpers run the
mechanism-level engines across such sweeps and collect flat result rows that
the report renderers and benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional

from ..core.coemulation import CoEmulationConfig, CoEmulationResult
from ..core.engine import create_engine
from ..core.modes import OperatingMode
from ..workloads.soc import SocSpec


@dataclass
class SweepPoint:
    """One point of a mechanism-level sweep."""

    label: str
    config: CoEmulationConfig
    result: CoEmulationResult

    def row(self) -> dict:
        row = self.result.summary_row()
        row["label"] = self.label
        row["lob_depth"] = self.config.lob_depth
        row["forced_accuracy"] = self.config.forced_accuracy
        row["sim_speed"] = self.config.simulator_speed.cycles_per_second
        return row


def run_engine(
    spec: SocSpec, config: CoEmulationConfig, *, engine: Optional[str] = None
) -> CoEmulationResult:
    """Instantiate the SoC and run the engine registered for ``config.mode``.

    A *fresh* partition of half bus models is built for every run on
    purpose: the engines mutate component state in place (master queues
    drain, memories and FIFOs fill, monitors and recorders accumulate), so a
    run on reused models would start from the previous run's final state.
    What the sweep helpers *do* hoist out of the per-point loop is the
    spec's generated traffic (:meth:`~repro.workloads.soc.SocSpec.
    cache_traffic`): the generators run once per spec and each build
    receives copies, so per point only the half bus models are rebuilt.
    """
    config, partition = spec.prepare_run(config)
    return create_engine(config, partition=partition, engine=engine).run()


def accuracy_sweep_mechanism(
    spec: SocSpec,
    base_config: CoEmulationConfig,
    accuracies: Iterable[float],
) -> List[SweepPoint]:
    """Run the optimistic engine across forced prediction accuracies."""
    spec.cache_traffic()
    points = []
    for accuracy in accuracies:
        config = replace(base_config, forced_accuracy=accuracy)
        result = run_engine(spec, config)
        points.append(SweepPoint(label=f"p={accuracy:g}", config=config, result=result))
    return points


def lob_depth_sweep(
    spec: SocSpec,
    base_config: CoEmulationConfig,
    depths: Iterable[int],
) -> List[SweepPoint]:
    """Run the optimistic engine across LOB depths."""
    spec.cache_traffic()
    points = []
    for depth in depths:
        config = replace(base_config, lob_depth=depth)
        result = run_engine(spec, config)
        points.append(SweepPoint(label=f"lob={depth}", config=config, result=result))
    return points


def mode_comparison(
    spec: SocSpec,
    base_config: CoEmulationConfig,
    modes: Iterable[OperatingMode] = tuple(OperatingMode),
) -> Dict[OperatingMode, CoEmulationResult]:
    """Run the same SoC under several operating modes."""
    spec.cache_traffic()
    results: Dict[OperatingMode, CoEmulationResult] = {}
    for mode in modes:
        config = replace(base_config, mode=mode)
        results[mode] = run_engine(spec, config)
    return results


def generic_sweep(
    spec: SocSpec,
    base_config: CoEmulationConfig,
    variations: Dict[str, Callable[[CoEmulationConfig], CoEmulationConfig]],
) -> List[SweepPoint]:
    """Run arbitrary config variations, keyed by label."""
    spec.cache_traffic()
    points = []
    for label, mutate in variations.items():
        config = mutate(base_config)
        result = run_engine(spec, config)
        points.append(SweepPoint(label=label, config=config, result=result))
    return points


def rows_from_points(points: List[SweepPoint]) -> List[dict]:
    return [point.row() for point in points]
