"""Metrics, sweeps and plain-text report rendering."""

from .metrics import (
    ComparisonRow,
    PaperComparison,
    crossover_accuracy,
    geometric_mean,
    monotonically_non_increasing,
    relative_error,
    speedup,
    summarize_counts,
    within_factor,
)
from .report import (
    Series,
    format_quantity,
    render_ascii_chart,
    render_comparison,
    render_table,
    render_transposed_table,
)
from .sweep import (
    SweepPoint,
    accuracy_sweep_mechanism,
    generic_sweep,
    lob_depth_sweep,
    mode_comparison,
    rows_from_points,
    run_engine,
)

__all__ = [
    "ComparisonRow",
    "PaperComparison",
    "Series",
    "SweepPoint",
    "accuracy_sweep_mechanism",
    "crossover_accuracy",
    "format_quantity",
    "generic_sweep",
    "geometric_mean",
    "lob_depth_sweep",
    "mode_comparison",
    "monotonically_non_increasing",
    "relative_error",
    "render_ascii_chart",
    "render_comparison",
    "render_table",
    "render_transposed_table",
    "rows_from_points",
    "run_engine",
    "speedup",
    "summarize_counts",
    "within_factor",
]
