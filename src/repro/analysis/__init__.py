"""Metrics, sweeps, artifact pipeline and plain-text report rendering."""

from .artifacts import (
    Artifact,
    ArtifactSpec,
    PipelineResult,
    default_specs,
    render_csv,
    render_json,
    run_pipeline,
    write_artifacts,
)
from .degradation import (
    DegradationPoint,
    accuracy_loss_grid,
    degradation_rows,
    loss_rate_sweep,
)
from .fleet import (
    fleet_worker_rows,
    render_fleet_stats,
)
from .metrics import (
    ComparisonRow,
    PaperComparison,
    crossover_accuracy,
    geometric_mean,
    monotonically_non_increasing,
    relative_error,
    speedup,
    summarize_counts,
    within_factor,
)
from .report import (
    Series,
    format_quantity,
    render_ascii_chart,
    render_comparison,
    render_table,
    render_transposed_table,
)
from .sweep import (
    SweepPoint,
    accuracy_sweep_mechanism,
    generic_sweep,
    lob_depth_sweep,
    mode_comparison,
    rows_from_points,
    run_engine,
)

__all__ = [
    "Artifact",
    "ArtifactSpec",
    "ComparisonRow",
    "DegradationPoint",
    "PaperComparison",
    "PipelineResult",
    "accuracy_loss_grid",
    "degradation_rows",
    "fleet_worker_rows",
    "loss_rate_sweep",
    "render_fleet_stats",
    "Series",
    "SweepPoint",
    "accuracy_sweep_mechanism",
    "crossover_accuracy",
    "default_specs",
    "format_quantity",
    "generic_sweep",
    "geometric_mean",
    "lob_depth_sweep",
    "mode_comparison",
    "monotonically_non_increasing",
    "relative_error",
    "render_ascii_chart",
    "render_comparison",
    "render_csv",
    "render_json",
    "render_table",
    "render_transposed_table",
    "rows_from_points",
    "run_engine",
    "run_pipeline",
    "speedup",
    "write_artifacts",
    "summarize_counts",
    "within_factor",
]
