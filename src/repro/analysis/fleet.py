"""Per-worker throughput reporting for distributed fleet sweeps.

The deterministic half of a fleet sweep (the record table, the store bytes)
is rendered by the ordinary sweep report; this module renders the
*operational* half -- who claimed, stole, executed and deduped what, and at
what wall-clock rate -- from the :class:`~repro.orchestration.fleet.
FleetStats` the driver assembles out of the workers' stats files.
"""

from __future__ import annotations

from typing import Iterable, List, Union

from ..orchestration.fleet import FleetStats, FleetWorkerStats
from .report import render_table

#: Columns of the per-worker table, in display order.
WORKER_COLUMNS = [
    "worker",
    "claimed",
    "stolen",
    "executed",
    "deduped",
    "released",
    "lost",
    "elapsed",
    "points/s",
]


def worker_row(stats: FleetWorkerStats) -> List[str]:
    return [
        stats.owner,
        str(stats.claimed),
        str(stats.stolen),
        str(stats.executed),
        str(stats.deduped),
        str(stats.released),
        str(stats.lost),
        f"{stats.elapsed_seconds:.2f}s",
        f"{stats.throughput:.2f}",
    ]


def fleet_worker_rows(
    workers: Iterable[FleetWorkerStats], totals: bool = True
) -> List[List[str]]:
    """One row per worker (owner-sorted for stable output) plus a totals row.

    The totals row's throughput is the *aggregate* rate -- total executed
    points over the longest worker wall-clock -- which is the number the
    1..N scaling benchmark plots.
    """
    worker_list = sorted(workers, key=lambda stats: stats.owner)
    rows = [worker_row(stats) for stats in worker_list]
    if totals and worker_list:
        executed = sum(stats.executed for stats in worker_list)
        elapsed = max(stats.elapsed_seconds for stats in worker_list)
        rows.append(
            [
                "TOTAL",
                str(sum(stats.claimed for stats in worker_list)),
                str(sum(stats.stolen for stats in worker_list)),
                str(executed),
                str(sum(stats.deduped for stats in worker_list)),
                str(sum(stats.released for stats in worker_list)),
                str(sum(stats.lost for stats in worker_list)),
                f"{elapsed:.2f}s",
                f"{executed / elapsed:.2f}" if elapsed > 0 else "0.00",
            ]
        )
    return rows


def render_fleet_stats(
    stats: Union[FleetStats, FleetWorkerStats], title: str = ""
) -> str:
    """The per-worker throughput table for a fleet sweep (or one worker)."""
    if isinstance(stats, FleetWorkerStats):
        workers: List[FleetWorkerStats] = [stats]
        totals = False
        heading = title or f"Fleet worker '{stats.owner}'"
    else:
        workers = stats.workers
        totals = True
        heading = title or (
            f"Fleet sweep {stats.sweep_id}: {stats.grid_points} point(s), "
            f"{stats.restarts} restart(s), "
            f"{stats.reconcile_passes} reconciliation pass(es)"
        )
        if not workers:
            return f"{heading}\n(no worker reports)"
    return render_table(WORKER_COLUMNS, fleet_worker_rows(workers, totals), title=heading)
