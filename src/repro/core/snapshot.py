"""Durable whole-engine snapshots: kill-resume with bit-identical results.

The optimistic scheme's :class:`~repro.sim.checkpoint.CheckpointManager`
state lives only in process memory: a SIGKILLed worker re-executes every run
from cycle 0 and a preempted long run loses all progress.  This module makes
any engine's *complete* mid-run state durable:

* every engine is pure Python and every modelled quantity lives in the
  engine's object graph (kernel clocks, component stores, LOB, ledgers,
  channel/fault RNG streams, trace/batch caches), so pickling the engine at a
  *safe point* captures the run exactly;
* a **safe point** is the top of an engine's run-loop iteration: no
  transition in flight, no outstanding rollback checkpoint on any host, the
  committed prefix fully charged.  Engines expose safe points through the
  ``run_hook`` attribute (see
  :class:`~repro.core.coemulation.CoEmulationEngineBase`);
* a snapshot file is *atomic* (temp file + fsync + rename), *versioned* and
  *digest-verified* (magic + JSON header + SHA-256 of the pickled payload),
  so a crash mid-write leaves the previous snapshot intact and a corrupt
  file is detected on load, never silently resumed;
* resuming is just ``engine = load_engine(path); engine.run()`` -- the run
  loops are written as ``while committed < total``, so a restored engine
  finishes the remaining cycles and the completed run is **bit-identical**
  to an uninterrupted one (the snapshot property suite proves full-digest
  equality, per-cycle float reprs included).

Nothing here knows about requests or orchestration;
:mod:`repro.orchestration.durable` layers scheduling (every K cycles / N
seconds), chaos injection and snapshot lifecycle management on top.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Tuple, Union

#: First bytes of every snapshot file; also the format's ASCII fingerprint.
SNAPSHOT_MAGIC = b"#repro-snapshot\n"

#: Bumped when the container format (not the pickled payload) changes.
SNAPSHOT_VERSION = 1


class SnapshotError(RuntimeError):
    """A snapshot file is missing, corrupt, or from an incompatible writer."""


class AbortRun(Exception):
    """Control-flow exception a ``run_hook`` raises to stop at a safe point.

    The engine's run loop does not catch it, so ``engine.run()`` unwinds with
    the engine parked exactly at the safe point -- ready to be snapshotted
    and resumed later.  Used by graceful drain (a fleet worker asked to stop
    persists its progress and releases its leases instead of abandoning
    them).
    """

    def __init__(self, reason: str = "run aborted at a safe point") -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class SnapshotMeta:
    """The header of one snapshot file (everything but the pickled engine).

    Deliberately free of wall-clock fields: re-snapshotting the same engine
    state produces byte-identical files, so snapshots can be diffed and
    digested like any other deterministic artefact.
    """

    version: int
    engine: str  # engine class name, for diagnostics and sanity checks
    committed_cycles: int
    total_cycles: int
    payload_sha256: str
    payload_length: int
    request_id: Optional[str] = None

    def as_dict(self) -> dict:
        payload = {
            "version": self.version,
            "engine": self.engine,
            "committed_cycles": self.committed_cycles,
            "total_cycles": self.total_cycles,
            "payload_sha256": self.payload_sha256,
            "payload_length": self.payload_length,
        }
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SnapshotMeta":
        try:
            return cls(
                version=int(payload["version"]),
                engine=str(payload["engine"]),
                committed_cycles=int(payload["committed_cycles"]),
                total_cycles=int(payload["total_cycles"]),
                payload_sha256=str(payload["payload_sha256"]),
                payload_length=int(payload["payload_length"]),
                request_id=(
                    None
                    if payload.get("request_id") is None
                    else str(payload["request_id"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"snapshot header does not fit the schema: {exc}") from None


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Binary sibling of the store's atomic text writer (temp + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _assert_snapshot_safe(engine: Any) -> None:
    """Refuse to snapshot an engine that is not parked at a safe point.

    The run loops only invoke hooks between transitions, so an outstanding
    rollback checkpoint here means the caller is snapshotting from the wrong
    place (e.g. inside a transition); resuming such a state would not be
    bit-identical.
    """
    for host in getattr(engine, "_host_list", None) or ():
        checkpoints = getattr(host, "checkpoints", None)
        if checkpoints is not None and not checkpoints.snapshot_safe:
            raise SnapshotError(
                f"engine has an outstanding rollback checkpoint on domain "
                f"{host.domain!r}; snapshots are only valid at run-loop safe points"
            )


def snapshot_bytes(engine: Any) -> bytes:
    """Pickle ``engine`` with its (non-picklable, host-local) hook stripped."""
    _assert_snapshot_safe(engine)
    hook = getattr(engine, "run_hook", None)
    if hook is not None:
        engine.run_hook = None
    try:
        return pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        if hook is not None:
            engine.run_hook = hook


def write_snapshot(
    path: Union[str, Path],
    engine: Any,
    request_id: Optional[str] = None,
) -> SnapshotMeta:
    """Atomically write a durable snapshot of ``engine`` to ``path``.

    The file is ``MAGIC + header-JSON line + pickled payload``; the header
    carries the payload's SHA-256 so a corrupt or truncated file is rejected
    on load.  A crash at any point leaves either the previous snapshot or
    the new one, never a torn file.
    """
    payload = snapshot_bytes(engine)
    meta = SnapshotMeta(
        version=SNAPSHOT_VERSION,
        engine=type(engine).__name__,
        committed_cycles=int(engine.ledger.committed_cycles),
        total_cycles=int(engine.config.total_cycles),
        payload_sha256=hashlib.sha256(payload).hexdigest(),
        payload_length=len(payload),
        request_id=request_id,
    )
    header = json.dumps(meta.as_dict(), sort_keys=True, separators=(",", ":"))
    atomic_write_bytes(path, SNAPSHOT_MAGIC + header.encode("utf-8") + b"\n" + payload)
    return meta


def read_snapshot(path: Union[str, Path]) -> Tuple[SnapshotMeta, Any]:
    """Load and verify one snapshot file; returns ``(meta, engine)``.

    Raises :class:`SnapshotError` on a missing file, bad magic, unsupported
    version, torn header, payload digest mismatch, or an unpicklable payload
    -- every failure mode a crashed or interfering writer could produce.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot at {path}") from None
    if not data.startswith(SNAPSHOT_MAGIC):
        raise SnapshotError(f"{path} is not a snapshot file (bad magic)")
    body = data[len(SNAPSHOT_MAGIC):]
    newline = body.find(b"\n")
    if newline < 0:
        raise SnapshotError(f"{path} is truncated (no header line)")
    try:
        header = json.loads(body[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path} has a corrupt header: {exc}") from None
    meta = SnapshotMeta.from_dict(header)
    if meta.version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path} was written by snapshot format v{meta.version}; "
            f"this reader supports v{SNAPSHOT_VERSION}"
        )
    payload = body[newline + 1:]
    if len(payload) != meta.payload_length:
        raise SnapshotError(
            f"{path} payload is {len(payload)} byte(s), header promises "
            f"{meta.payload_length} (truncated or overwritten)"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != meta.payload_sha256:
        raise SnapshotError(f"{path} fails its payload digest check")
    try:
        engine = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types on corrupt input
        raise SnapshotError(f"{path} payload does not unpickle: {exc}") from None
    return meta, engine


def load_engine(path: Union[str, Path]) -> Any:
    """The resumable engine stored at ``path`` (header verified, hook clear)."""
    _, engine = read_snapshot(path)
    try:
        engine.run_hook = None
    except (AttributeError, TypeError):
        # Not an engine at all (e.g. a foreign pickle smuggled into the
        # snapshot container); leave the type check to the caller.
        pass
    return engine
