"""The optimistic (prediction packetizing) co-emulation engine.

This module implements the paper's contribution: the pair of channel
wrappers that let one verification domain (the *leader*) run ahead of the
other (the *lagger*) by predicting the values it would otherwise read over
the channel, buffering its own outputs in the Leader Output Buffer and
flushing them as one burst transfer.

The behaviour follows the channel-wrapper state machine of Figure 3.  Each
per-cycle pass through the state machine takes one of six paths; the engine
records which path each domain took so traces can be compared against the
paper's Table 1:

* **C-path** (conservative): conventional cycle-by-cycle synchronisation.
* **P-path** (prediction): the leader's run-ahead cycles.  The first P-path
  cycle of a transition registers a state store and still runs
  conservatively (states P-5 / P-6 in the paper).
* **S-path** (synchronisation): the leader flushes the LOB and waits for the
  lagger's report; on a reported misprediction it stores the actual response
  and requests a state restore.
* **L-path** (lagger): the lagger's follow-up cycles, each checking one
  prediction.
* **R-path** (report): the lagger reports that every prediction was correct.
* **F-path** (roll-forth): the leader re-executes committed cycles after a
  rollback.

Relation to the transition steps (Table 1): RA = leader on P-path while the
lagger sits on L/R/C; FU = leader on S-path, lagger on L-path; RB = the state
restore triggered from the S-path; RF = leader on F-path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..ahb.bus import DriveValues
from ..ahb.half_bus import drives_functionally_equal, merge_boundary_drives
from ..ahb.signals import AddressPhase, BusCycleRecord, DataPhaseResult, HTrans
from ..ahb.transaction import CompletedBeat
from ..sim.component import Domain
from .coemulation import CoEmulationConfig, CoEmulationEngineBase, CoEmulationResult
from .domain import DomainHost
from .engine import register_engine
from .lob import LeaderOutputBuffer, LobEntry
from .modes import ModeDecision, OperatingMode, policy_for_mode
from .prediction import PredictionStats
from .transition import TransitionOutcome, TransitionRecord


_INF = float("inf")


class CwPath(str, Enum):
    """The six operation paths of the channel wrapper (Figure 3)."""

    CONSERVATIVE = "C"
    PREDICTION = "P"
    SYNCHRONIZATION = "S"
    LAGGER = "L"
    REPORT = "R"
    ROLL_FORTH = "F"


@dataclass
class PathTraceEntry:
    """One unit-cycle operation of one channel wrapper."""

    domain: Domain
    cycle: int
    path: CwPath


@dataclass
class OptimisticRunTrace:
    """Optional per-cycle path trace (kept only when enabled)."""

    enabled: bool = False
    entries: List[PathTraceEntry] = field(default_factory=list)

    def record(self, domain: Domain, cycle: int, path: CwPath) -> None:
        if self.enabled:
            self.entries.append(PathTraceEntry(domain=domain, cycle=cycle, path=path))

    def paths_for(self, domain: Domain) -> List[CwPath]:
        return [entry.path for entry in self.entries if entry.domain is domain]


@register_engine(
    "optimistic",
    modes=(OperatingMode.SLA, OperatingMode.ALS, OperatingMode.AUTO),
    description="prediction-and-rollback engine (SLA / ALS / AUTO leaders)",
)
class OptimisticCoEmulation(CoEmulationEngineBase):
    """Prediction-and-rollback synchronisation between the topology domains.

    One domain leads; every other domain is a lagger.  With two domains this
    is exactly the paper's scheme; with N domains the leader predicts the
    merged boundary values of all laggers, flushes the LOB to each of them,
    and the laggers replay the buffered cycles in lock step among themselves.
    """

    def __init__(
        self,
        partition,
        acc_hbm=None,
        config: Optional[CoEmulationConfig] = None,
        trace_paths: bool = False,
    ) -> None:
        super().__init__(partition, acc_hbm, config)
        config = self.config
        if config.mode is OperatingMode.CONSERVATIVE:
            raise ValueError(
                "OptimisticCoEmulation requires an optimistic mode (SLA / ALS / AUTO); "
                "use ConventionalCoEmulation for the conservative baseline"
            )
        self.policy = policy_for_mode(config.mode, topology=self.topology)
        self.lob = LeaderOutputBuffer(config.lob_depth)
        self.trace = OptimisticRunTrace(enabled=trace_paths)

    # -- top level -----------------------------------------------------------------
    def run(self) -> CoEmulationResult:
        """Run ``config.total_cycles`` committed target cycles."""
        total = self.config.total_cycles
        while self.ledger.committed_cycles < total:
            self._safe_point()
            if self.config.stop_when_workload_done and self._workload_done():
                break
            decision = self._decide_mode()
            if not decision.optimistic:
                self._traced_conservative_cycle()
                continue
            leader = self.host_for(decision.leader)
            self._run_transition(leader, remaining=total - self.ledger.committed_cycles)
        prediction = self._combined_prediction_stats()
        return self._build_result(self.config.mode, prediction=prediction, lob=self.lob.stats.as_dict())

    # -- mode decision -----------------------------------------------------------------
    def _decide_mode(self) -> ModeDecision:
        if len(self._host_list) == 1:
            # No laggers, no channel: optimism could only add checkpoint
            # overhead, so a single-domain topology always runs conservative.
            return ModeDecision(
                optimistic=False,
                reason="single-domain topology has no remote values to predict",
            )
        candidates: Dict[Domain, bool] = {}
        for domain, host in self.hosts.items():
            candidates[domain] = (
                host.predictor.can_predict(host.needed_fields())
                if host.predictor is not None
                else False
            )
        return self.policy.decide(candidates)

    def _traced_conservative_cycle(self) -> None:
        if self.trace.enabled:
            cycle = self._host_list[0].current_cycle
            for host in self._host_list:
                self.trace.record(host.domain, cycle, CwPath.CONSERVATIVE)
        self.run_conservative_cycle()

    # -- one transition ------------------------------------------------------------------
    def _run_transition(self, leader: DomainHost, remaining: int) -> TransitionRecord:
        laggers = self.peer_hosts(leader)
        predictor = leader.predictor
        assert predictor is not None
        record = self.transitions.new_record(leader.domain, leader.current_cycle)

        # First P-path cycle: register the state store and run conservatively
        # (paper states P-5 / P-6).  The stored state is the leader state
        # *after* this cycle completes.
        self.trace.record(leader.domain, leader.current_cycle, CwPath.PREDICTION)
        for lagger in laggers:
            self.trace.record(lagger.domain, lagger.current_cycle, CwPath.CONSERVATIVE)
        self.run_conservative_cycle()
        remaining -= 1
        leader.store_checkpoint(label=f"transition_{record.index}")

        # Run-Ahead step: leader proceeds, predicting the laggers' values.
        run_ahead_budget = min(self.config.lob_depth, max(remaining, 0))
        entries = self._run_ahead(leader, predictor, record, run_ahead_budget)
        if not entries:
            # Degenerate transition: the leader could not predict even one
            # cycle.  The state store was wasted overhead (paper footnote 6).
            leader.discard_checkpoint()
            record.outcome = TransitionOutcome.DEGENERATE
            return record

        # Synchronisation: flush the LOB to every lagger as one burst access
        # per sync channel.
        flush_words = self._flush_lob(leader, laggers, entries, record)
        record.flush_words = flush_words

        # Follow-Up step: the laggers replay the buffered cycles in lock
        # step, checking each prediction.
        failure_index, failure_reason, injected, actual_drive, actual_response = (
            self._follow_up(laggers, predictor, entries)
        )

        if failure_index is None:
            self._finish_success(leader, laggers, record, entries)
        else:
            self._finish_misprediction(
                leader,
                laggers,
                record,
                entries,
                failure_index,
                failure_reason,
                injected,
                actual_drive,
                actual_response,
            )
        return record

    # -- RA step ------------------------------------------------------------------------------
    def _run_ahead(
        self,
        leader: DomainHost,
        predictor,
        record: TransitionRecord,
        budget: int,
    ) -> List[LobEntry]:
        ra_cycles = 0
        # Hot loop: bind the per-cycle collaborators once (every attribute
        # lookup in here runs tens of thousands of times per second), and
        # inline the DomainHost.execute_cycle wrapper -- run the half bus
        # cycle directly, then advance the clock and charge execution time
        # exactly as execute_cycle would.
        lob = self.lob
        entries: List[LobEntry] = []
        entries_append = entries.append
        depth = lob.depth
        needed_fields = leader.hbm.needed_fields
        can_predict = predictor.can_predict
        predict = predictor.predict
        observe = predictor.observe
        run_cycle = leader.hbm.run_local_cycle
        clock = leader.clock
        execution = leader.execution
        buckets = self.ledger.buckets
        category = execution.category
        seconds_per_cycle = execution._seconds_per_cycle
        trace = self.trace if self.trace.enabled else None
        # Clock and execution-time bookkeeping are accumulated locally and
        # written back once after the loop.  The float additions happen in
        # exactly the per-cycle order (bucket += spc each iteration), so the
        # modelled times stay bit-identical to per-cycle charging.
        cycle = clock.cycle
        bucket_acc = buckets[category]
        while ra_cycles < budget:
            needed = needed_fields()
            if not can_predict(needed):
                predictor.record_unpredictable()
                break
            prediction = predict(cycle, needed)
            remote_drive, remote_response = prediction.as_boundary_values(cycle)
            local_drive, local_response, _ = run_cycle(cycle, remote_drive, remote_response)
            bucket_acc += seconds_per_cycle
            # Chain the prediction state: subsequent predictions extrapolate
            # from what was just predicted.
            observe(remote_drive, remote_response)
            entries_append(
                LobEntry(
                    cycle=cycle,
                    leader_drive=local_drive,
                    leader_response=local_response,
                    prediction=prediction,
                )
            )
            if trace is not None:
                trace.record(leader.domain, cycle, CwPath.PREDICTION)
            cycle += 1
            ra_cycles += 1
            if ra_cycles >= depth:
                break
        clock.cycle = cycle
        clock.total_executed += ra_cycles
        buckets[category] = bucket_acc
        execution.cycles_charged += ra_cycles
        record.run_ahead_cycles = ra_cycles
        if not ra_cycles:
            return []
        lob.adopt(entries)
        return lob.flush()

    # -- flush (S-path, leader side) ---------------------------------------------------------------
    def _flush_lob(
        self,
        leader: DomainHost,
        laggers: List[DomainHost],
        entries: List[LobEntry],
        record: TransitionRecord,
    ) -> int:
        # The flush is charged from the exact word counts the packetizer
        # would produce; the burst itself is never materialised (the laggers
        # consume the LOB entries in-process).  Each lagger receives its own
        # burst over its sync channel with the leader.  The per-entry counts
        # inline BoundaryPacketizer.cycle_word_count's arithmetic (header +
        # 2-word address phase + write data + response + read data);
        # tests/core/test_flush_words.py pins this copy to the packetizer
        # across every field combination.
        n_words = 0
        for entry in entries:
            drive = entry.leader_drive
            words = 1
            if drive.address_phase is not None:
                words += 2
            if drive.hwdata is not None:
                words += 1
            response = entry.leader_response
            if response is not None:
                words += 2 if response.hrdata is not None else 1
                words += 1  # response packet header
            prediction = entry.prediction
            if prediction is not None:
                words += 1
                if prediction.address_phase is not None:
                    words += 2
                if prediction.hwdata is not None:
                    words += 1
                predicted_response = prediction.response
                if predicted_response is not None:
                    words += 2 if predicted_response.hrdata is not None else 1
            n_words += words
        self.trace.record(leader.domain, leader.current_cycle, CwPath.SYNCHRONIZATION)
        for lagger in laggers:
            self._charge_channel(leader, lagger, n_words, purpose="lob_flush", cycle=entries[0].cycle)
        return n_words

    # -- FU step (L-path / R-path, lagger side) ---------------------------------------------------------
    def _follow_up(self, laggers: List[DomainHost], predictor, entries: List[LobEntry]):
        if not laggers:
            # Single-domain topology: nothing external was predicted, so the
            # whole run-ahead window commits unchecked.
            return None, "", False, None, None
        if len(laggers) == 1:
            return self._follow_up_single(laggers[0], predictor, entries)
        return self._follow_up_group(laggers, predictor, entries)

    def _follow_up_single(self, lagger: DomainHost, predictor, entries: List[LobEntry]):
        failure_index: Optional[int] = None
        failure_reason = ""
        injected = False
        actual_drive = None
        actual_response = None
        execute_cycle = lagger.execute_cycle
        trace = self.trace if self.trace.enabled else None
        for index, entry in enumerate(entries):
            cycle = lagger.current_cycle
            lag_drive, lag_response, _ = execute_cycle(
                entry.leader_drive, entry.leader_response
            )
            if trace is not None:
                trace.record(lagger.domain, cycle, CwPath.LAGGER)
            if entry.prediction is None:
                continue
            matched, reason = entry.prediction.check(lag_drive, lag_response)
            predictor.record_check(matched, entry.prediction.forced_failure)
            if not matched:
                failure_index = index
                failure_reason = reason
                injected = entry.prediction.forced_failure
                actual_drive = lag_drive
                actual_response = lag_response
                break
        return failure_index, failure_reason, injected, actual_drive, actual_response

    def _follow_up_group(self, laggers: List[DomainHost], predictor, entries: List[LobEntry]):
        """Multi-lagger follow-up: the laggers replay the buffered cycles in
        lock step among themselves, exchanging their own boundary values
        pairwise (conservatively) while the leader's contribution comes from
        the LOB.  The leader's prediction is checked against the *merged*
        lagger values -- exactly what the leader consumed during run-ahead.

        With sync gating enabled the pairwise exchange is both *activity
        gated* (a lagger whose drive is unchanged since it last shipped
        contributes nothing that entry) and *batched*: the changed drives of
        the whole transition travel as one burst access per ordered lagger
        pair, charged when the replay window closes -- mirroring how the
        leader's own LOB flush amortises the channel startup cost."""
        failure_index: Optional[int] = None
        failure_reason = ""
        injected = False
        actual_drive = None
        actual_response = None
        packetizer = self.packetizer
        gating = self._sync_gating
        last_broadcast = self._last_broadcast
        batched_words: Dict[Domain, int] = {}
        trace = self.trace if self.trace.enabled else None
        last_cycle = laggers[0].current_cycle
        slave_ids_of = self._slave_ids_of
        buckets = self.ledger.buckets
        quiet_until = self._quiet_until
        master_home = self._master_home
        for index, entry in enumerate(entries):
            cycle = last_cycle = laggers[0].current_cycle
            first_core = laggers[0].hbm.core
            lock_info = first_core.data_phase_info()
            if gating:
                # Quiet-lagger drive reuse under stable arbitration (same
                # reasoning as the gated conservative cycle).
                effective_grant = first_core.arbiter.current_grant
                grant_stable = effective_grant == self._last_grant
                self._last_grant = effective_grant
                owner_host = (
                    master_home.get(lock_info.owner_master_id)
                    if lock_info.active
                    else None
                )
                drive_list = []
                for src in laggers:
                    domain = src.domain
                    if (
                        grant_stable
                        and src is not owner_host
                        and quiet_until.get(domain, -1.0) == _INF
                        and not src.hbm._tick_active
                    ):
                        drive_list.append(last_broadcast[domain])
                        continue
                    drive = src.hbm.drive_phase(cycle)
                    drive_list.append(drive)
                    last = last_broadcast.get(domain)
                    if last is not None and drives_functionally_equal(drive, last):
                        continue
                    last_broadcast[domain] = drive
                    quiet_until[domain] = -1.0
                    batched_words[domain] = batched_words.get(domain, 0) + (
                        packetizer.drive_word_count(drive)
                    )
            else:
                drive_list = [lagger.hbm.drive_phase(cycle) for lagger in laggers]
                for src_index, src in enumerate(laggers):
                    words = packetizer.drive_word_count(drive_list[src_index])
                    for dst in laggers:
                        if dst is not src:
                            self._charge_channel(
                                src, dst, words, purpose="followup_exchange", cycle=cycle
                            )
            # In lock step every lagger commits the *same* merged values:
            # build the union of the leader's entry and every lagger's drive
            # once and share the resulting DriveValues across all commits
            # (master ownership is disjoint; at most one domain drives an
            # address phase / write data; committed values are read-only).
            global_drive = merge_boundary_drives([entry.leader_drive] + drive_list)
            global_phase = global_drive.address_phase
            merged = DriveValues(
                requests=global_drive.requests,
                address_phase=(
                    global_phase
                    if global_phase is not None
                    else AddressPhase.idle_phase(first_core.arbiter.current_grant)
                ),
                hwdata=global_drive.hwdata,
                interrupts=global_drive.interrupts,
            )
            # Only the domain owning the active data-phase slave can answer;
            # dispatch the response step straight to it (first lagger in
            # order, matching the ungated first-non-None rule).
            lagger_response = None
            if lock_info.active:
                slave_id = lock_info.slave_id
                for lagger in laggers:
                    if slave_id in slave_ids_of[lagger.domain]:
                        lagger_response = lagger.hbm.response_phase(cycle, merged).response
                        break
            commit_response = lagger_response or entry.leader_response or DataPhaseResult.okay()
            # Shared commit objects (see _run_conservative_cycle_gated): the
            # laggers' replicated cores all commit the same values.
            shared_record = BusCycleRecord(
                cycle=cycle,
                granted_master=first_core.arbiter.current_grant,
                address_phase=merged.address_phase,
                data_phase=first_core.data_phase,
                hwdata=merged.hwdata,
                response=commit_response,
                requests=merged.requests,
            )
            shared_beat = None
            if lock_info.active and commit_response.hready:
                phase = lock_info.address_phase
                shared_beat = CompletedBeat(
                    cycle=cycle,
                    master_id=phase.master_id,
                    address=phase.haddr,
                    write=phase.hwrite,
                    data=merged.hwdata if phase.hwrite else commit_response.hrdata,
                    hresp=commit_response.hresp,
                    hburst=phase.hburst,
                    hsize=phase.hsize,
                    first_beat=phase.htrans is HTrans.NONSEQ,
                )
            for lagger in laggers:
                lagger.hbm.commit_lockstep(
                    cycle, merged, commit_response, shared_record, shared_beat
                )
                clock = lagger.clock
                clock.cycle += 1
                clock.total_executed += 1
                execution = lagger.execution
                buckets[execution.category] += execution._seconds_per_cycle
                execution.cycles_charged += 1
                if trace is not None:
                    trace.record(lagger.domain, cycle, CwPath.LAGGER)
            if entry.prediction is None:
                continue
            merged_drive = merge_boundary_drives(drive_list)
            matched, reason = entry.prediction.check(merged_drive, lagger_response)
            predictor.record_check(matched, entry.prediction.forced_failure)
            if not matched:
                failure_index = index
                failure_reason = reason
                injected = entry.prediction.forced_failure
                actual_drive = merged_drive
                actual_response = lagger_response
                break
        if gating:
            # Charge the batched exchange: one burst access per ordered
            # lagger pair carrying every changed drive of this transition.
            for src in laggers:
                words = batched_words.get(src.domain, 0)
                if not words:
                    continue
                for dst in laggers:
                    if dst is not src:
                        self._charge_channel(
                            src, dst, words, purpose="followup_exchange", cycle=last_cycle
                        )
        return failure_index, failure_reason, injected, actual_drive, actual_response

    # -- transition epilogue -----------------------------------------------------------------------------
    def _finish_success(
        self,
        leader: DomainHost,
        laggers: List[DomainHost],
        record: TransitionRecord,
        entries: List[LobEntry],
    ) -> None:
        # R-path: each lagger reports success (one channel access per sync
        # channel).  The reply carries the lagger's current boundary outputs,
        # mirroring the conventional read the leader skipped on its final
        # run-ahead cycle.
        report_words = self.packetizer.cycle_word_count()
        for lagger in laggers:
            self.trace.record(lagger.domain, lagger.current_cycle, CwPath.REPORT)
            self._charge_channel(
                lagger, leader, report_words, purpose="followup_success", cycle=lagger.current_cycle
            )
        leader.discard_checkpoint()
        if self._sync_gating and entries:
            # The flush shipped the leader's drives: the channels now
            # remember the last consumed entry.
            self._last_broadcast[leader.domain] = entries[-1].leader_drive
            self._quiet_until[leader.domain] = -1.0
        committed = len(entries)
        self.ledger.commit_cycles(committed)
        record.committed_cycles = committed
        record.outcome = TransitionOutcome.SUCCESS

    def _finish_misprediction(
        self,
        leader: DomainHost,
        laggers: List[DomainHost],
        record: TransitionRecord,
        entries: List[LobEntry],
        failure_index: int,
        failure_reason: str,
        injected: bool,
        actual_drive,
        actual_response,
    ) -> None:
        predictor = leader.predictor
        assert predictor is not None
        # L-5 / L-6: each lagger reports the prediction failure together with
        # the actual values for the failed cycle (one channel access per sync
        # channel; with several laggers the merged report is a conservative
        # upper bound on each link's payload).
        report_words = self.packetizer.drive_word_count(actual_drive)
        report_words += self.packetizer.response_word_count(actual_response)
        for lagger in laggers:
            self._charge_channel(
                lagger, leader, report_words, purpose="followup_failure", cycle=lagger.current_cycle
            )
        # S-5 / S-6 then RB step: leader stores the reported response and
        # rolls back to the checkpoint taken at the start of the transition.
        self.trace.record(leader.domain, leader.current_cycle, CwPath.SYNCHRONIZATION)
        if self._sync_gating:
            # The laggers consumed the flushed burst up to the failed entry;
            # the channels remember that drive (speculative values already
            # shipped stay shipped -- the gate state is never rolled back).
            self._last_broadcast[leader.domain] = entries[failure_index].leader_drive
            self._quiet_until[leader.domain] = -1.0
        leader.restore_checkpoint()
        # RF step (F-path): the leader re-executes the cycles the lagger has
        # already committed.  For the validated prefix the (correct)
        # predictions are re-used; the failed cycle uses the actual values
        # reported by the lagger.
        for index in range(failure_index + 1):
            entry = entries[index]
            if index < failure_index:
                remote_drive, remote_response = entry.prediction.as_boundary_values(entry.cycle)
            else:
                remote_drive, remote_response = actual_drive, actual_response
            leader.execute_cycle(remote_drive, remote_response)
            predictor.observe(remote_drive, remote_response)
            self.trace.record(leader.domain, entry.cycle, CwPath.ROLL_FORTH)
        committed = failure_index + 1
        self.ledger.commit_cycles(committed)
        record.committed_cycles = committed
        record.roll_forth_cycles = committed
        record.outcome = TransitionOutcome.MISPREDICTION
        record.failure_position = failure_index
        record.failure_reason = failure_reason
        record.forced_failure = injected

    # -- reporting ------------------------------------------------------------------------------------------
    def _combined_prediction_stats(self) -> PredictionStats:
        combined = PredictionStats()
        for host in self._host_list:
            if host.predictor is None:
                continue
            stats = host.predictor.stats
            combined.predictions_made += stats.predictions_made
            combined.predictions_checked += stats.predictions_checked
            combined.predictions_correct += stats.predictions_correct
            combined.real_failures += stats.real_failures
            combined.injected_failures += stats.injected_failures
            combined.unpredictable_cycles += stats.unpredictable_cycles
        return combined
