"""The optimistic (prediction packetizing) co-emulation engine.

This module implements the paper's contribution: the pair of channel
wrappers that let one verification domain (the *leader*) run ahead of the
other (the *lagger*) by predicting the values it would otherwise read over
the channel, buffering its own outputs in the Leader Output Buffer and
flushing them as one burst transfer.

The behaviour follows the channel-wrapper state machine of Figure 3.  Each
per-cycle pass through the state machine takes one of six paths; the engine
records which path each domain took so traces can be compared against the
paper's Table 1:

* **C-path** (conservative): conventional cycle-by-cycle synchronisation.
* **P-path** (prediction): the leader's run-ahead cycles.  The first P-path
  cycle of a transition registers a state store and still runs
  conservatively (states P-5 / P-6 in the paper).
* **S-path** (synchronisation): the leader flushes the LOB and waits for the
  lagger's report; on a reported misprediction it stores the actual response
  and requests a state restore.
* **L-path** (lagger): the lagger's follow-up cycles, each checking one
  prediction.
* **R-path** (report): the lagger reports that every prediction was correct.
* **F-path** (roll-forth): the leader re-executes committed cycles after a
  rollback.

Relation to the transition steps (Table 1): RA = leader on P-path while the
lagger sits on L/R/C; FU = leader on S-path, lagger on L-path; RB = the state
restore triggered from the S-path; RF = leader on F-path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..ahb.half_bus import merge_boundary_drives
from ..ahb.signals import DataPhaseResult
from ..sim.component import Domain
from .coemulation import CoEmulationConfig, CoEmulationEngineBase, CoEmulationResult
from .domain import DomainHost
from .engine import register_engine
from .lob import LeaderOutputBuffer, LobEntry
from .modes import ModeDecision, OperatingMode, policy_for_mode
from .prediction import PredictionStats
from .transition import TransitionOutcome, TransitionRecord


class CwPath(str, Enum):
    """The six operation paths of the channel wrapper (Figure 3)."""

    CONSERVATIVE = "C"
    PREDICTION = "P"
    SYNCHRONIZATION = "S"
    LAGGER = "L"
    REPORT = "R"
    ROLL_FORTH = "F"


@dataclass
class PathTraceEntry:
    """One unit-cycle operation of one channel wrapper."""

    domain: Domain
    cycle: int
    path: CwPath


@dataclass
class OptimisticRunTrace:
    """Optional per-cycle path trace (kept only when enabled)."""

    enabled: bool = False
    entries: List[PathTraceEntry] = field(default_factory=list)

    def record(self, domain: Domain, cycle: int, path: CwPath) -> None:
        if self.enabled:
            self.entries.append(PathTraceEntry(domain=domain, cycle=cycle, path=path))

    def paths_for(self, domain: Domain) -> List[CwPath]:
        return [entry.path for entry in self.entries if entry.domain is domain]


@register_engine(
    "optimistic",
    modes=(OperatingMode.SLA, OperatingMode.ALS, OperatingMode.AUTO),
    description="prediction-and-rollback engine (SLA / ALS / AUTO leaders)",
)
class OptimisticCoEmulation(CoEmulationEngineBase):
    """Prediction-and-rollback synchronisation between the topology domains.

    One domain leads; every other domain is a lagger.  With two domains this
    is exactly the paper's scheme; with N domains the leader predicts the
    merged boundary values of all laggers, flushes the LOB to each of them,
    and the laggers replay the buffered cycles in lock step among themselves.
    """

    def __init__(
        self,
        partition,
        acc_hbm=None,
        config: Optional[CoEmulationConfig] = None,
        trace_paths: bool = False,
    ) -> None:
        super().__init__(partition, acc_hbm, config)
        config = self.config
        if config.mode is OperatingMode.CONSERVATIVE:
            raise ValueError(
                "OptimisticCoEmulation requires an optimistic mode (SLA / ALS / AUTO); "
                "use ConventionalCoEmulation for the conservative baseline"
            )
        self.policy = policy_for_mode(config.mode, topology=self.topology)
        self.lob = LeaderOutputBuffer(config.lob_depth)
        self.trace = OptimisticRunTrace(enabled=trace_paths)

    # -- top level -----------------------------------------------------------------
    def run(self) -> CoEmulationResult:
        """Run ``config.total_cycles`` committed target cycles."""
        total = self.config.total_cycles
        while self.ledger.committed_cycles < total:
            if self.config.stop_when_workload_done and self._workload_done():
                break
            decision = self._decide_mode()
            if not decision.optimistic:
                self._traced_conservative_cycle()
                continue
            leader = self.host_for(decision.leader)
            self._run_transition(leader, remaining=total - self.ledger.committed_cycles)
        prediction = self._combined_prediction_stats()
        return self._build_result(self.config.mode, prediction=prediction, lob=self.lob.stats.as_dict())

    # -- mode decision -----------------------------------------------------------------
    def _decide_mode(self) -> ModeDecision:
        if len(self._host_list) == 1:
            # No laggers, no channel: optimism could only add checkpoint
            # overhead, so a single-domain topology always runs conservative.
            return ModeDecision(
                optimistic=False,
                reason="single-domain topology has no remote values to predict",
            )
        candidates: Dict[Domain, bool] = {}
        for domain, host in self.hosts.items():
            candidates[domain] = (
                host.predictor.can_predict(host.needed_fields())
                if host.predictor is not None
                else False
            )
        return self.policy.decide(candidates)

    def _traced_conservative_cycle(self) -> None:
        cycle = self._host_list[0].current_cycle
        for host in self._host_list:
            self.trace.record(host.domain, cycle, CwPath.CONSERVATIVE)
        self.run_conservative_cycle()

    # -- one transition ------------------------------------------------------------------
    def _run_transition(self, leader: DomainHost, remaining: int) -> TransitionRecord:
        laggers = self.peer_hosts(leader)
        predictor = leader.predictor
        assert predictor is not None
        record = self.transitions.new_record(leader.domain, leader.current_cycle)

        # First P-path cycle: register the state store and run conservatively
        # (paper states P-5 / P-6).  The stored state is the leader state
        # *after* this cycle completes.
        self.trace.record(leader.domain, leader.current_cycle, CwPath.PREDICTION)
        for lagger in laggers:
            self.trace.record(lagger.domain, lagger.current_cycle, CwPath.CONSERVATIVE)
        self.run_conservative_cycle()
        remaining -= 1
        leader.store_checkpoint(label=f"transition_{record.index}")

        # Run-Ahead step: leader proceeds, predicting the laggers' values.
        run_ahead_budget = min(self.config.lob_depth, max(remaining, 0))
        entries = self._run_ahead(leader, predictor, record, run_ahead_budget)
        if not entries:
            # Degenerate transition: the leader could not predict even one
            # cycle.  The state store was wasted overhead (paper footnote 6).
            leader.discard_checkpoint()
            record.outcome = TransitionOutcome.DEGENERATE
            return record

        # Synchronisation: flush the LOB to every lagger as one burst access
        # per sync channel.
        flush_words = self._flush_lob(leader, laggers, entries, record)
        record.flush_words = flush_words

        # Follow-Up step: the laggers replay the buffered cycles in lock
        # step, checking each prediction.
        failure_index, failure_reason, injected, actual_drive, actual_response = (
            self._follow_up(laggers, predictor, entries)
        )

        if failure_index is None:
            self._finish_success(leader, laggers, record, entries)
        else:
            self._finish_misprediction(
                leader,
                laggers,
                record,
                entries,
                failure_index,
                failure_reason,
                injected,
                actual_drive,
                actual_response,
            )
        return record

    # -- RA step ------------------------------------------------------------------------------
    def _run_ahead(
        self,
        leader: DomainHost,
        predictor,
        record: TransitionRecord,
        budget: int,
    ) -> List[LobEntry]:
        ra_cycles = 0
        while ra_cycles < budget:
            needed = leader.needed_fields()
            if not predictor.can_predict(needed):
                predictor.record_unpredictable()
                break
            cycle = leader.current_cycle
            prediction = predictor.predict(cycle, needed)
            remote_drive, remote_response = prediction.as_boundary_values(cycle)
            local_drive, local_response, _ = leader.execute_cycle(remote_drive, remote_response)
            # Chain the prediction state: subsequent predictions extrapolate
            # from what was just predicted.
            predictor.observe(remote_drive, remote_response)
            self.lob.push(
                LobEntry(
                    cycle=cycle,
                    leader_drive=local_drive,
                    leader_response=local_response.response,
                    prediction=prediction,
                )
            )
            self.trace.record(leader.domain, cycle, CwPath.PREDICTION)
            ra_cycles += 1
            if self.lob.full:
                break
        record.run_ahead_cycles = ra_cycles
        return self.lob.flush() if ra_cycles else []

    # -- flush (S-path, leader side) ---------------------------------------------------------------
    def _flush_lob(
        self,
        leader: DomainHost,
        laggers: List[DomainHost],
        entries: List[LobEntry],
        record: TransitionRecord,
    ) -> int:
        # The flush is charged from the exact word counts the packetizer
        # would produce; the burst itself is never materialised (the laggers
        # consume the LOB entries in-process).  Each lagger receives its own
        # burst over its sync channel with the leader.
        packetizer = self.packetizer
        n_words = 0
        for entry in entries:
            n_words += packetizer.drive_word_count(entry.leader_drive)
            if entry.leader_response is not None:
                n_words += packetizer.response_word_count(entry.leader_response)
            if entry.prediction is not None:
                n_words += packetizer.cycle_word_count(
                    address_phase=entry.prediction.address_phase,
                    hwdata=entry.prediction.hwdata,
                    response=entry.prediction.response,
                )
        self.trace.record(leader.domain, leader.current_cycle, CwPath.SYNCHRONIZATION)
        for lagger in laggers:
            self._charge_channel(leader, lagger, n_words, purpose="lob_flush", cycle=entries[0].cycle)
        return n_words

    # -- FU step (L-path / R-path, lagger side) ---------------------------------------------------------
    def _follow_up(self, laggers: List[DomainHost], predictor, entries: List[LobEntry]):
        if not laggers:
            # Single-domain topology: nothing external was predicted, so the
            # whole run-ahead window commits unchecked.
            return None, "", False, None, None
        if len(laggers) == 1:
            return self._follow_up_single(laggers[0], predictor, entries)
        return self._follow_up_group(laggers, predictor, entries)

    def _follow_up_single(self, lagger: DomainHost, predictor, entries: List[LobEntry]):
        failure_index: Optional[int] = None
        failure_reason = ""
        injected = False
        actual_drive = None
        actual_response = None
        for index, entry in enumerate(entries):
            cycle = lagger.current_cycle
            lag_drive, lag_response, _ = lagger.execute_cycle(
                entry.leader_drive, entry.leader_response
            )
            self.trace.record(lagger.domain, cycle, CwPath.LAGGER)
            if entry.prediction is None:
                continue
            matched, reason = entry.prediction.check(lag_drive, lag_response.response)
            predictor.record_check(matched, entry.prediction.forced_failure)
            if not matched:
                failure_index = index
                failure_reason = reason
                injected = entry.prediction.forced_failure
                actual_drive = lag_drive
                actual_response = lag_response.response
                break
        return failure_index, failure_reason, injected, actual_drive, actual_response

    def _follow_up_group(self, laggers: List[DomainHost], predictor, entries: List[LobEntry]):
        """Multi-lagger follow-up: the laggers replay the buffered cycles in
        lock step among themselves, exchanging their own boundary values
        pairwise (conservatively) while the leader's contribution comes from
        the LOB.  The leader's prediction is checked against the *merged*
        lagger values -- exactly what the leader consumed during run-ahead."""
        failure_index: Optional[int] = None
        failure_reason = ""
        injected = False
        actual_drive = None
        actual_response = None
        packetizer = self.packetizer
        for index, entry in enumerate(entries):
            cycle = laggers[0].current_cycle
            drives = {lagger.domain: lagger.drive() for lagger in laggers}
            for src in laggers:
                words = packetizer.drive_word_count(drives[src.domain])
                for dst in laggers:
                    if dst is not src:
                        self._charge_channel(
                            src, dst, words, purpose="followup_exchange", cycle=cycle
                        )
            merged = {}
            lagger_response = None
            for lagger in laggers:
                remotes = [entry.leader_drive] + [
                    drives[peer.domain] for peer in laggers if peer is not lagger
                ]
                merged[lagger.domain] = lagger.hbm.merge_drives(drives[lagger.domain], remotes)
                local = lagger.respond(merged[lagger.domain]).response
                if lagger_response is None and local is not None:
                    lagger_response = local
            commit_response = lagger_response or entry.leader_response or DataPhaseResult.okay()
            for lagger in laggers:
                lagger.commit(merged[lagger.domain], commit_response)
                self.trace.record(lagger.domain, cycle, CwPath.LAGGER)
            if entry.prediction is None:
                continue
            merged_drive = merge_boundary_drives([drives[lagger.domain] for lagger in laggers])
            matched, reason = entry.prediction.check(merged_drive, lagger_response)
            predictor.record_check(matched, entry.prediction.forced_failure)
            if not matched:
                failure_index = index
                failure_reason = reason
                injected = entry.prediction.forced_failure
                actual_drive = merged_drive
                actual_response = lagger_response
                break
        return failure_index, failure_reason, injected, actual_drive, actual_response

    # -- transition epilogue -----------------------------------------------------------------------------
    def _finish_success(
        self,
        leader: DomainHost,
        laggers: List[DomainHost],
        record: TransitionRecord,
        entries: List[LobEntry],
    ) -> None:
        # R-path: each lagger reports success (one channel access per sync
        # channel).  The reply carries the lagger's current boundary outputs,
        # mirroring the conventional read the leader skipped on its final
        # run-ahead cycle.
        report_words = self.packetizer.cycle_word_count()
        for lagger in laggers:
            self.trace.record(lagger.domain, lagger.current_cycle, CwPath.REPORT)
            self._charge_channel(
                lagger, leader, report_words, purpose="followup_success", cycle=lagger.current_cycle
            )
        leader.discard_checkpoint()
        committed = len(entries)
        self.ledger.commit_cycles(committed)
        record.committed_cycles = committed
        record.outcome = TransitionOutcome.SUCCESS

    def _finish_misprediction(
        self,
        leader: DomainHost,
        laggers: List[DomainHost],
        record: TransitionRecord,
        entries: List[LobEntry],
        failure_index: int,
        failure_reason: str,
        injected: bool,
        actual_drive,
        actual_response,
    ) -> None:
        predictor = leader.predictor
        assert predictor is not None
        # L-5 / L-6: each lagger reports the prediction failure together with
        # the actual values for the failed cycle (one channel access per sync
        # channel; with several laggers the merged report is a conservative
        # upper bound on each link's payload).
        report_words = self.packetizer.drive_word_count(actual_drive)
        report_words += self.packetizer.response_word_count(actual_response)
        for lagger in laggers:
            self._charge_channel(
                lagger, leader, report_words, purpose="followup_failure", cycle=lagger.current_cycle
            )
        # S-5 / S-6 then RB step: leader stores the reported response and
        # rolls back to the checkpoint taken at the start of the transition.
        self.trace.record(leader.domain, leader.current_cycle, CwPath.SYNCHRONIZATION)
        leader.restore_checkpoint()
        # RF step (F-path): the leader re-executes the cycles the lagger has
        # already committed.  For the validated prefix the (correct)
        # predictions are re-used; the failed cycle uses the actual values
        # reported by the lagger.
        for index in range(failure_index + 1):
            entry = entries[index]
            if index < failure_index:
                remote_drive, remote_response = entry.prediction.as_boundary_values(entry.cycle)
            else:
                remote_drive, remote_response = actual_drive, actual_response
            leader.execute_cycle(remote_drive, remote_response)
            predictor.observe(remote_drive, remote_response)
            self.trace.record(leader.domain, entry.cycle, CwPath.ROLL_FORTH)
        committed = failure_index + 1
        self.ledger.commit_cycles(committed)
        record.committed_cycles = committed
        record.roll_forth_cycles = committed
        record.outcome = TransitionOutcome.MISPREDICTION
        record.failure_position = failure_index
        record.failure_reason = failure_reason
        record.forced_failure = injected

    # -- reporting ------------------------------------------------------------------------------------------
    def _combined_prediction_stats(self) -> PredictionStats:
        combined = PredictionStats()
        for host in self._host_list:
            if host.predictor is None:
                continue
            stats = host.predictor.stats
            combined.predictions_made += stats.predictions_made
            combined.predictions_checked += stats.predictions_checked
            combined.predictions_correct += stats.predictions_correct
            combined.real_failures += stats.real_failures
            combined.injected_failures += stats.injected_failures
            combined.unpredictable_cycles += stats.unpredictable_cycles
        return combined
