"""Domain hosts: one verification domain of the co-emulated system.

A :class:`DomainHost` bundles everything one side of the channel owns:

* the half bus model with its local masters and slaves,
* the domain's execution-speed cost model (charging Tsim. or Tacc.),
* the checkpoint manager used for rollback when the domain is the leader,
* optionally the predictor used to guess the other domain's values,
* a per-domain target-cycle clock (the two clocks drift apart while the
  leader runs ahead and re-converge after follow-up / roll-forth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ahb.half_bus import BoundaryDrive, BoundaryResponse, HalfBusModel, NeededFields
from ..ahb.signals import BusCycleRecord, DataPhaseResult
from ..sim.checkpoint import Checkpoint, CheckpointManager, StateCostModel
from ..sim.clock import Clock
from ..sim.component import Domain
from ..sim.time_model import DomainSpeed, ExecutionCostModel, WallClockLedger
from .prediction import LaggerPredictor


class DomainHostError(RuntimeError):
    """Raised on inconsistent domain-host usage."""


@dataclass
class DomainHostConfig:
    """Static configuration of one domain host.

    ``ledger_category`` defaults to the domain id itself, which for the
    canonical pair reproduces the paper's ``simulator`` / ``accelerator``
    Table 2 columns; additional domains get one execution bucket each.
    """

    domain: Domain
    speed: DomainSpeed
    state_costs: StateCostModel
    rollback_variable_budget: Optional[int] = None
    ledger_category: Optional[str] = None


class DomainHost:
    """One verification domain (simulator or accelerator) of the split system."""

    def __init__(
        self,
        config: DomainHostConfig,
        hbm: HalfBusModel,
        ledger: WallClockLedger,
        predictor: Optional[LaggerPredictor] = None,
    ) -> None:
        self.domain = config.domain
        self.hbm = hbm
        self.ledger = ledger
        self.predictor = predictor
        self.clock = Clock(config.domain.value)
        category = config.ledger_category or config.domain.value
        ledger.ensure_category(category)
        self.execution = ExecutionCostModel(
            ledger=ledger,
            category=category,
            speed=config.speed,
        )
        checkpoint_components = [hbm]
        if predictor is not None:
            checkpoint_components.append(predictor)
        self.checkpoints = CheckpointManager(
            components=checkpoint_components,
            cost_model=config.state_costs,
            rollback_variable_budget=config.rollback_variable_budget,
        )

    # -- cycle execution -------------------------------------------------------
    @property
    def current_cycle(self) -> int:
        return self.clock.cycle

    def needed_fields(self) -> NeededFields:
        return self.hbm.needed_fields()

    def drive(self) -> BoundaryDrive:
        """Run the drive step of the current cycle (local components tick here)."""
        return self.hbm.drive_phase(self.clock.cycle)

    def respond(self, merged_drive) -> BoundaryResponse:
        return self.hbm.response_phase(self.clock.cycle, merged_drive)

    def commit(self, merged_drive, response: DataPhaseResult) -> BusCycleRecord:
        """Finish the current cycle: notify masters, advance state and clock,
        and charge the domain's execution time."""
        record = self.hbm.commit_phase(self.clock.cycle, merged_drive, response)
        self.clock.advance(1)
        self.execution.charge_cycles(1)
        return record

    def execute_cycle(
        self,
        remote_drive: BoundaryDrive,
        remote_response: Optional[DataPhaseResult],
    ) -> tuple[BoundaryDrive, Optional[DataPhaseResult], BusCycleRecord]:
        """Run one full cycle given the remote domain's (or predicted) values.

        Returns the local drive contribution, the local data-phase response
        (``None`` when the active slave is remote or the bus is idle) and the
        committed cycle record.  Speculative hot path: the clock advance is
        inlined (no validation needed for the constant +1 step).
        """
        clock = self.clock
        local_drive, local_response, record = self.hbm.run_local_cycle(
            clock.cycle, remote_drive, remote_response
        )
        clock.cycle += 1
        clock.total_executed += 1
        self.execution.charge_cycles(1)
        return local_drive, local_response, record

    # -- checkpointing ----------------------------------------------------------
    def store_checkpoint(self, label: str = "") -> Checkpoint:
        """Store leader state (``rb_store``); charges Tstore to the ledger."""
        store_time = self.checkpoints.last_store_time()
        self.ledger.charge("state_store", store_time)
        self.clock.mark()
        return self.checkpoints.store(self.clock.cycle, label=label)

    def restore_checkpoint(self) -> Checkpoint:
        """Restore leader state (``rb_restore``); charges Trestore and rewinds
        the domain clock to the checkpointed cycle."""
        restore_time = self.checkpoints.last_restore_time()
        self.ledger.charge("state_restore", restore_time)
        checkpoint = self.checkpoints.restore()
        self.clock.rollback_to(checkpoint.cycle)
        self.clock.pop_mark()
        return checkpoint

    def discard_checkpoint(self) -> Checkpoint:
        """Drop the outstanding checkpoint after a fully successful transition."""
        self.clock.pop_mark()
        return self.checkpoints.discard()

    # -- bookkeeping --------------------------------------------------------------
    @property
    def wasted_cycles(self) -> int:
        """Cycles executed by this domain that were later rolled back."""
        return self.clock.wasted_cycles

    def rollback_variable_count(self) -> int:
        return self.checkpoints.variable_count()

    def local_slave_ids(self) -> set:
        return set(self.hbm.local_slaves.keys())

    def local_master_ids(self) -> set:
        return set(self.hbm.local_masters.keys())

    def reset(self) -> None:
        self.clock.reset()
        self.hbm.reset()
        self.checkpoints.clear()
        if self.predictor is not None:
            self.predictor.reset()


def assert_cores_in_sync(sim_host: DomainHost, acc_host: DomainHost) -> None:
    """Verify the two half bus models agree on the shared registered state.

    Called by tests and (optionally) by the engines after synchronisation
    points; disagreement indicates a bug in the exchange/prediction logic.
    """
    sim_core = sim_host.hbm.core
    acc_core = acc_host.hbm.core
    assert sim_core is not None and acc_core is not None
    problems = []
    if sim_core.granted_master != acc_core.granted_master:
        problems.append(
            f"granted master differs: sim={sim_core.granted_master} acc={acc_core.granted_master}"
        )
    sim_phase = sim_core.data_phase
    acc_phase = acc_core.data_phase
    if (sim_phase is None) != (acc_phase is None):
        problems.append("one core has an active data phase and the other does not")
    elif sim_phase is not None and acc_phase is not None:
        if (
            sim_phase.haddr != acc_phase.haddr
            or sim_phase.htrans != acc_phase.htrans
            or sim_phase.hwrite != acc_phase.hwrite
            or sim_phase.master_id != acc_phase.master_id
        ):
            problems.append(
                f"data phase differs: sim={sim_phase.haddr:#x} acc={acc_phase.haddr:#x}"
            )
    if sim_host.current_cycle != acc_host.current_cycle:
        problems.append(
            f"clocks differ: sim={sim_host.current_cycle} acc={acc_host.current_cycle}"
        )
    if problems:
        raise DomainHostError("half bus models out of sync: " + "; ".join(problems))
