"""Batch-stepped engine variants: vectorised multi-cycle advancement.

The scalar engines pay one full Python dispatch round per target cycle even
when the modelled system is provably quiescent (every master parked, no data
phase in flight, predictions at their all-idle fixed point).  The two engines
here -- ``conventional_batch`` and ``als_batch`` -- detect such stretches and
advance them as one batched step:

* the *quiescence detector* (:meth:`HalfBusModel.idle_stationary` plus the
  per-master :meth:`~repro.ahb.master.AhbMaster.next_activity_cycle` horizon)
  proves that ``k`` upcoming cycles are identical all-idle fixed-point
  cycles;
* the *fast-forward* applies exactly the state transitions the ``k`` scalar
  cycles would have applied -- same cycle records, same channel accesses in
  the same order, same float-accumulation sequences (via
  :mod:`repro.sim.batchmath`), same RNG draw order -- without re-entering
  per-cycle dispatch.

Both engines are bit-identical to their scalar counterparts on every modelled
quantity; the golden regression digests and the batch-vs-scalar equivalence
suites enforce this.  They are registered without modes and selected either
explicitly (``engine="als_batch"``) or through
:attr:`~repro.core.coemulation.CoEmulationConfig.batch_stepping`.
"""

from __future__ import annotations

from typing import List, Optional

from ..ahb.half_bus import _NO_INTERRUPTS, BoundaryDrive
from ..ahb.signals import AddressPhase, BusCycleRecord, DataPhaseResult
from ..sim.batchmath import repeat_add
from .conventional import ConventionalCoEmulation
from .coemulation import CoEmulationResult
from .domain import DomainHost
from .engine import register_engine
from .lob import LobEntry
from .modes import OperatingMode
from .optimistic import OptimisticCoEmulation
from .prediction import PredictionRecord, PredictionStats


@register_engine(
    "conventional_batch",
    modes=(),
    description="batch-stepped lock-step baseline (quiescence fast-forwarding)",
)
class ConventionalBatchCoEmulation(ConventionalCoEmulation):
    """Lock-step synchronisation advancing quiescent stretches per dispatch.

    Identical to :class:`ConventionalCoEmulation` on every modelled quantity:
    when the upcoming cycles are provably all-idle fixed-point cycles (see
    :meth:`~repro.core.coemulation.CoEmulationEngineBase._idle_run_length`)
    the whole stretch is committed by one
    :meth:`~repro.core.coemulation.CoEmulationEngineBase._fast_forward_idle_cycles`
    call; everything else runs the scalar cycle.
    """

    def run(self) -> CoEmulationResult:
        """Run ``config.total_cycles`` target cycles in (batched) lock step."""
        total = self.config.total_cycles
        stop = self.config.stop_when_workload_done
        ledger = self.ledger
        while ledger.committed_cycles < total:
            self._safe_point()
            # The workload-done check comes *first*: the scalar loop always
            # runs one more cycle after the workload drains, then stops --
            # fast-forwarding here would commit the whole idle remainder
            # instead of that single cycle.  Done-ness cannot change inside a
            # quiescent stretch (no transaction completes while every master
            # is parked), so checking once per stretch is exact.
            if not (stop and self._workload_done()):
                run = self._idle_run_length(total - ledger.committed_cycles)
                if run > 1:
                    self._fast_forward_idle_cycles(run)
                    continue
            self.run_conservative_cycle()
            if stop and self._workload_done():
                break
        return self._build_result(
            OperatingMode.CONSERVATIVE, prediction=PredictionStats(), lob={}
        )


@register_engine(
    "als_batch",
    modes=(),
    description="batch-stepped prediction-and-rollback engine (fused run-ahead / follow-up)",
)
class OptimisticBatchCoEmulation(OptimisticCoEmulation):
    """Prediction-and-rollback engine with fused multi-cycle inner loops.

    The transition structure (mode decisions, checkpoints, LOB flushes,
    reports, rollback / roll-forth) is inherited unchanged from
    :class:`OptimisticCoEmulation`; only the two per-cycle inner loops are
    batched:

    * **Run-Ahead**: when the leader bus is at its structural idle fixed
      point and the predictor at its all-idle fixed point, ``k`` predicted
      cycles (up to the local-activity horizon and the LOB budget) are
      committed as one segment -- shared value-identical prediction records
      and drive objects, per-cycle forced-failure RNG draws in scalar order,
      one batched record adoption and one bit-exact batched time charge.
    * **Follow-Up** (single lagger): a run of all-idle LOB entries against an
      idle-stationary lagger replays as one segment with the per-entry
      prediction checks folded into closed-form counter updates (every check
      in such a run provably matches).

    Path-trace-enabled runs fall back to the scalar loops entirely (the trace
    is inherently per-cycle).
    """

    # -- RA step (batched) -------------------------------------------------------
    def _run_ahead(
        self,
        leader: DomainHost,
        predictor,
        record,
        budget: int,
    ) -> List[LobEntry]:
        if self.trace.enabled:
            return super()._run_ahead(leader, predictor, record, budget)
        lob = self.lob
        entries: List[LobEntry] = []
        entries_append = entries.append
        depth = lob.depth
        hbm = leader.hbm
        needed_fields = hbm.needed_fields
        can_predict = predictor.can_predict
        predict = predictor.predict
        observe = predictor.observe
        run_cycle = hbm.run_local_cycle
        clock = leader.clock
        execution = leader.execution
        buckets = self.ledger.buckets
        category = execution.category
        seconds_per_cycle = execution._seconds_per_cycle
        idle_stationary = hbm.idle_stationary
        is_idle_fixed_point = predictor.is_idle_fixed_point
        cycle = clock.cycle
        bucket_acc = buckets[category]
        ra_cycles = 0
        # The scalar loop runs while ``ra_cycles < budget`` with a secondary
        # ``>= depth`` break; ``budget <= depth`` always holds (the caller
        # clamps to the LOB depth), so one combined bound is exact.
        limit = budget if budget < depth else depth
        while ra_cycles < limit:
            needed = needed_fields()
            if not can_predict(needed):
                predictor.record_unpredictable()
                break
            if idle_stationary() and is_idle_fixed_point(needed):
                k = limit - ra_cycles
                horizon = hbm.next_local_activity(cycle)
                if horizon - cycle < k:
                    k = int(horizon - cycle)
                if k > 1 and self._run_ahead_idle_segment(
                    leader, predictor, needed, cycle, k, entries_append
                ):
                    # One batched charge replicating k sequential += adds.
                    bucket_acc = repeat_add(bucket_acc, seconds_per_cycle, k)
                    cycle += k
                    ra_cycles += k
                    continue
            prediction = predict(cycle, needed)
            remote_drive, remote_response = prediction.as_boundary_values(cycle)
            local_drive, local_response, _ = run_cycle(cycle, remote_drive, remote_response)
            bucket_acc += seconds_per_cycle
            observe(remote_drive, remote_response)
            entries_append(
                LobEntry(
                    cycle=cycle,
                    leader_drive=local_drive,
                    leader_response=local_response,
                    prediction=prediction,
                )
            )
            cycle += 1
            ra_cycles += 1
        clock.cycle = cycle
        clock.total_executed += ra_cycles
        buckets[category] = bucket_acc
        execution.cycles_charged += ra_cycles
        record.run_ahead_cycles = ra_cycles
        if not ra_cycles:
            return []
        lob.adopt(entries)
        return lob.flush()

    def _run_ahead_idle_segment(
        self,
        leader: DomainHost,
        predictor,
        needed,
        cycle: int,
        count: int,
        entries_append,
    ) -> bool:
        """Commit ``count`` all-idle run-ahead cycles as one batched segment.

        Preconditions (established by the caller): the leader bus is
        :meth:`~repro.ahb.half_bus.HalfBusModel.idle_stationary`, the
        predictor is at its all-idle fixed point for ``needed``, and every
        local master stays inactive for ``count`` cycles.  Under those
        conditions each scalar iteration produces value-identical objects --
        an all-idle prediction (``predict`` returns the remembered inactive
        remote phase itself, cycle after cycle), an all-idle local drive (the
        parked granted master returns its interned idle phase without side
        effects) and an idle commit whose ``observe`` call is a state no-op
        -- so the segment shares one prediction record and one drive object
        across its LOB entries, draws the forced-failure RNG per cycle in
        scalar order, and adopts the committed records in one step.

        Returns ``False`` (leaving no state modified) when a structural
        sanity guard fails; the caller then runs the scalar cycle.
        """
        hbm = leader.hbm
        core = hbm.core
        granted = core.arbiter.current_grant
        local_requests = {mid: drive_req(cycle) for mid, drive_req in hbm._request_drivers}
        if any(local_requests.values()):
            return False
        granted_master = hbm.local_masters.get(granted)
        local_phase = (
            granted_master.drive_address_phase(cycle, granted=True)
            if granted_master is not None
            else None
        )
        if local_phase is not None and local_phase.is_active:
            return False
        pred_requests = dict(predictor._last_requests) if needed.needs_remote_requests else None
        pred_phase = (
            predictor._last_remote_phase if needed.needs_remote_address_phase else None
        )
        shared_prediction = PredictionRecord(
            cycle=cycle, requests=pred_requests, address_phase=pred_phase
        )
        shared_drive = BoundaryDrive(
            cycle=cycle,
            requests=local_requests,
            address_phase=local_phase,
            hwdata=None,
            interrupts=_NO_INTERRUPTS,
        )
        # The merged commit values every scalar iteration would build:
        # template + local + predicted requests (all False), the local idle
        # phase (or the predicted inactive remote phase), the interned OKAY.
        merged_requests = hbm._request_template.copy()
        merged_requests.update(local_requests)
        if pred_requests:
            merged_requests.update(pred_requests)
        merged_phase = local_phase if local_phase is not None else pred_phase
        if merged_phase is None:
            merged_phase = AddressPhase.idle_phase(granted)
        okay = DataPhaseResult.okay()
        records = [
            BusCycleRecord(
                cycle=cycle + offset,
                granted_master=granted,
                address_phase=merged_phase,
                data_phase=None,
                hwdata=None,
                response=okay,
                requests=merged_requests,
            )
            for offset in range(count)
        ]
        forced = predictor.forced_accuracy
        if forced is not None and forced.accuracy < 1.0:
            # One RNG draw per prediction, in scalar order; an injected
            # failure gets its own record (the follow-up must see the flag).
            should_fail = forced.should_fail
            for offset in range(count):
                prediction = shared_prediction
                if should_fail():
                    prediction = PredictionRecord(
                        cycle=cycle + offset,
                        requests=pred_requests,
                        address_phase=pred_phase,
                        forced_failure=True,
                    )
                entries_append(
                    LobEntry(
                        cycle=cycle + offset,
                        leader_drive=shared_drive,
                        leader_response=None,
                        prediction=prediction,
                    )
                )
        else:
            for offset in range(count):
                entries_append(
                    LobEntry(
                        cycle=cycle + offset,
                        leader_drive=shared_drive,
                        leader_response=None,
                        prediction=shared_prediction,
                    )
                )
        predictor.stats.predictions_made += count
        hbm.adopt_idle_records(records, merged_requests)
        return True

    # -- FU step (batched, single lagger) -----------------------------------------
    def _follow_up_single(self, lagger: DomainHost, predictor, entries: List[LobEntry]):
        if self.trace.enabled:
            return super()._follow_up_single(lagger, predictor, entries)
        failure_index: Optional[int] = None
        failure_reason = ""
        injected = False
        actual_drive = None
        actual_response = None
        execute_cycle = lagger.execute_cycle
        n = len(entries)
        index = 0
        while index < n:
            run = self._idle_followup_run(lagger, entries, index)
            if run > 1 and self._replay_followup_idle(lagger, predictor, entries, index, run):
                index += run
                continue
            entry = entries[index]
            lag_drive, lag_response, _ = execute_cycle(
                entry.leader_drive, entry.leader_response
            )
            prediction = entry.prediction
            if prediction is not None:
                matched, reason = prediction.check(lag_drive, lag_response)
                predictor.record_check(matched, prediction.forced_failure)
                if not matched:
                    failure_index = index
                    failure_reason = reason
                    injected = prediction.forced_failure
                    actual_drive = lag_drive
                    actual_response = lag_response
                    break
            index += 1
        return failure_index, failure_reason, injected, actual_drive, actual_response

    @staticmethod
    def _entry_is_idle(entry: LobEntry) -> bool:
        """Cheap per-entry test: does this LOB entry carry only idle values?

        A qualifying entry has a non-forced prediction whose populated fields
        are all at their idle values (so its check against the lagger's idle
        actuals provably matches) and a leader contribution that commits as
        an idle cycle on the lagger's replicated core.
        """
        prediction = entry.prediction
        if prediction is None or prediction.forced_failure:
            return False
        if prediction.response is not None or prediction.hwdata is not None:
            return False
        if prediction.interrupts is not None:
            return False
        requests = prediction.requests
        if requests is not None and any(requests.values()):
            return False
        phase = prediction.address_phase
        if phase is not None and phase.is_active:
            return False
        drive = entry.leader_drive
        if (
            entry.leader_response is not None
            or drive.hwdata is not None
            or drive.interrupts
        ):
            return False
        if any(drive.requests.values()):
            return False
        drive_phase = drive.address_phase
        if drive_phase is not None and drive_phase.is_active:
            return False
        return True

    def _idle_followup_run(self, lagger: DomainHost, entries: List[LobEntry], index: int) -> int:
        """Length of the all-idle replay run starting at ``entries[index]``.

        A run qualifies when every entry passes :meth:`_entry_is_idle` and
        the lagger bus is idle-stationary with every local master inactive
        for the run's whole span.  The per-entry field tests come first so a
        busy entry -- the common case in dense traffic -- costs a few
        attribute reads, not a bus-state probe.
        """
        entry_is_idle = self._entry_is_idle
        if not entry_is_idle(entries[index]):
            return 0
        hbm = lagger.hbm
        if not hbm.idle_stationary():
            return 0
        cycle = lagger.clock.cycle
        horizon = hbm.next_local_activity(cycle)
        if horizon <= cycle:
            return 0
        limit = len(entries) - index
        span = horizon - cycle
        if span < limit:
            limit = int(span)
        run = 0
        for entry in entries[index : index + limit]:
            if not entry_is_idle(entry):
                break
            run += 1
        return run if run > 1 else 0

    def _replay_followup_idle(
        self,
        lagger: DomainHost,
        predictor,
        entries: List[LobEntry],
        index: int,
        count: int,
    ) -> bool:
        """Replay ``count`` all-idle LOB entries on the lagger in one step.

        Applies exactly what ``count`` scalar follow-up iterations would:
        idle commits on the lagger core (same per-cycle records, same merged
        phase selection), the per-cycle clock / execution-time bookkeeping
        (bit-exact batched float adds) and the closed-form outcome of the
        per-entry prediction checks (every check in a qualifying run
        matches).  Returns ``False``, leaving no state modified, when a
        structural sanity guard fails.
        """
        hbm = lagger.hbm
        core = hbm.core
        clock = lagger.clock
        cycle = clock.cycle
        granted = core.arbiter.current_grant
        local_requests = {mid: drive_req(cycle) for mid, drive_req in hbm._request_drivers}
        if any(local_requests.values()):
            return False
        granted_master = hbm.local_masters.get(granted)
        local_phase = (
            granted_master.drive_address_phase(cycle, granted=True)
            if granted_master is not None
            else None
        )
        if local_phase is not None and local_phase.is_active:
            return False
        shared_requests = hbm._request_template.copy()
        okay = DataPhaseResult.okay()
        records = []
        for offset, entry in enumerate(entries[index : index + count]):
            merged_phase = local_phase
            if merged_phase is None:
                merged_phase = entry.leader_drive.address_phase
                if merged_phase is None:
                    merged_phase = AddressPhase.idle_phase(granted)
            records.append(
                BusCycleRecord(
                    cycle=cycle + offset,
                    granted_master=granted,
                    address_phase=merged_phase,
                    data_phase=None,
                    hwdata=None,
                    response=okay,
                    requests=shared_requests,
                )
            )
        hbm.adopt_idle_records(records, shared_requests)
        clock.cycle += count
        clock.total_executed += count
        execution = lagger.execution
        buckets = self.ledger.buckets
        buckets[execution.category] = repeat_add(
            buckets[execution.category], execution._seconds_per_cycle, count
        )
        execution.cycles_charged += count
        stats = predictor.stats
        stats.predictions_checked += count
        stats.predictions_correct += count
        return True
