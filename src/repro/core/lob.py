"""The Leader Output Buffer (LOB).

During the Run-Ahead step the leader does not send its outputs to the lagger
cycle by cycle; instead each cycle's outputs -- together with the prediction
made for the lagger's values that cycle -- are appended to the Leader Output
Buffer.  When the leader can no longer predict (or the buffer is full) the
whole buffer is flushed to the lagger as a single burst channel access, which
is what amortises the channel startup overhead.

The LOB depth is a key experimental parameter: the paper evaluates depths of
8 and 64 (Figure 4). A deeper buffer allows longer run-ahead (more startup
overhead amortised per flush) but wastes more leader work when a prediction
near the start of the buffer fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ahb.half_bus import BoundaryDrive
from ..ahb.signals import DataPhaseResult
from .prediction import PredictionRecord


class LobError(RuntimeError):
    """Raised on invalid buffer operations (overflow, popping an empty LOB)."""


@dataclass(slots=True)
class LobEntry:
    """One run-ahead cycle recorded by the leader.

    Attributes:
        cycle: the leader's target cycle index for this entry.
        leader_drive: the leader domain's drive contribution that cycle
            (bus requests of leader-side masters, address phase / write data
            if the active master was leader-side).
        leader_response: the data-phase response if the active slave was
            leader-side, else None.
        prediction: the prediction made for the lagger's values that cycle.
            The final entry of a flush may carry no prediction -- the paper
            notes the last leader-to-lagger datum contains none, which is how
            the lagger recognises the end of the burst.
    """

    cycle: int
    leader_drive: BoundaryDrive
    leader_response: Optional[DataPhaseResult]
    prediction: Optional[PredictionRecord]

    @property
    def has_prediction(self) -> bool:
        return self.prediction is not None


@dataclass
class LobStats:
    """Occupancy and flush statistics for the Leader Output Buffer."""

    entries_pushed: int = 0
    flushes: int = 0
    entries_flushed: int = 0
    entries_invalidated: int = 0
    max_occupancy_seen: int = 0
    occupancy_at_flush: List[int] = field(default_factory=list)

    def mean_flush_occupancy(self) -> float:
        if not self.occupancy_at_flush:
            return 0.0
        return sum(self.occupancy_at_flush) / len(self.occupancy_at_flush)

    def as_dict(self) -> dict:
        return {
            "entries_pushed": self.entries_pushed,
            "flushes": self.flushes,
            "entries_flushed": self.entries_flushed,
            "entries_invalidated": self.entries_invalidated,
            "max_occupancy_seen": self.max_occupancy_seen,
            "mean_flush_occupancy": self.mean_flush_occupancy(),
        }


class LeaderOutputBuffer:
    """Bounded buffer of leader outputs awaiting a flush to the lagger."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise LobError(f"LOB depth must be at least 1, got {depth}")
        self.depth = depth
        self._entries: List[LobEntry] = []
        self.stats = LobStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def entries(self) -> List[LobEntry]:
        return list(self._entries)

    def adopt(self, entries: List[LobEntry]) -> None:
        """Take ownership of a run-ahead window built externally.

        Equivalent (including statistics) to pushing every entry in order
        onto an empty buffer; the engine's run-ahead loop builds a plain
        local list and hands it over in one call, which keeps per-cycle LOB
        bookkeeping out of the hot loop.  The buffer must be empty.
        """
        if self._entries:
            raise LobError("adopt() requires an empty LOB")
        if len(entries) > self.depth:
            raise LobError(f"LOB overflow: depth {self.depth} exceeded")
        self._entries = entries
        stats = self.stats
        stats.entries_pushed += len(entries)
        if len(entries) > stats.max_occupancy_seen:
            stats.max_occupancy_seen = len(entries)

    def push(self, entry: LobEntry) -> None:
        """Append one run-ahead cycle; raises :class:`LobError` when full."""
        entries = self._entries
        if len(entries) >= self.depth:
            raise LobError(f"LOB overflow: depth {self.depth} exceeded")
        entries.append(entry)
        stats = self.stats
        stats.entries_pushed += 1
        occupancy = len(entries)
        if occupancy > stats.max_occupancy_seen:
            stats.max_occupancy_seen = occupancy

    def flush(self) -> List[LobEntry]:
        """Remove and return all entries (the burst sent to the lagger)."""
        entries = self._entries
        self._entries = []
        self.stats.flushes += 1
        self.stats.entries_flushed += len(entries)
        self.stats.occupancy_at_flush.append(len(entries))
        return entries

    def invalidate(self) -> int:
        """Drop all entries without flushing (used after a rollback).

        Returns the number of entries dropped.
        """
        dropped = len(self._entries)
        self._entries = []
        self.stats.entries_invalidated += dropped
        return dropped

    def clear(self) -> None:
        self._entries = []

    def reset(self) -> None:
        self._entries = []
        self.stats = LobStats()
