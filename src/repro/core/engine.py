"""Engine registry: the paper's family of synchronisation schemes as plugins.

The paper's contribution is not one engine but a *family* of them --
conservative lock-step, the two optimistic leaders (SLA / ALS), a dynamic
policy choosing among them, and the closed-form analytical model used for the
published numbers.  This module turns that family into a registry so callers
never branch on :class:`~repro.core.modes.OperatingMode` themselves:

* :class:`Engine` -- the protocol every engine implements (construct from two
  half bus models and a :class:`~repro.core.coemulation.CoEmulationConfig`,
  then ``run()``).
* :func:`register_engine` -- class decorator through which engines register
  themselves, optionally claiming the operating modes they implement.
* :func:`create_engine` -- the single factory replacing all mode if/else
  dispatch in the CLI, sweeps, benchmarks and examples.

Engines register themselves when their module is imported;
:func:`create_engine` imports the built-in engine modules lazily so the
registry is always populated without creating import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import get_close_matches
from typing import Callable, Dict, Mapping, Optional, Protocol, Tuple, runtime_checkable

from ..ahb.half_bus import HalfBusModel
from ..sim.component import Domain
from .coemulation import CoEmulationConfig, CoEmulationResult
from .modes import OperatingMode


@runtime_checkable
class Engine(Protocol):
    """A co-emulation engine: built over a partitioned system, run to a result."""

    config: CoEmulationConfig

    def run(self) -> CoEmulationResult:
        """Execute the run described by ``config`` and package the result."""
        ...


#: An engine constructor: ``factory(partition, config)``.  ``partition`` maps
#: domain ids to half bus models and may be ``None`` for pseudo-engines
#: (e.g. the analytical model) that never touch the mechanism.
EngineFactory = Callable[
    [Optional[Mapping[Domain, HalfBusModel]], CoEmulationConfig], Engine
]


@dataclass(frozen=True)
class EngineInfo:
    """One registry entry."""

    name: str
    factory: EngineFactory
    modes: Tuple[OperatingMode, ...]
    description: str
    requires_split: bool = True


_REGISTRY: Dict[str, EngineInfo] = {}
_MODE_INDEX: Dict[OperatingMode, str] = {}
#: Mode-resolved engine name -> its batch-stepping variant.  Consulted when
#: ``config.batch_stepping`` is set and no explicit ``engine=`` was given.
_BATCH_VARIANTS: Dict[str, str] = {
    "conventional": "conventional_batch",
    "optimistic": "als_batch",
}
#: Mode-resolved engine name -> its trace-replay variant.  Consulted when
#: ``config.trace_replay`` is set and no explicit ``engine=`` was given;
#: wins over the batch variant (the trace engines extend the batch ones).
_TRACE_VARIANTS: Dict[str, str] = {
    "conventional": "conventional_trace",
    "optimistic": "als_trace",
    "conventional_batch": "conventional_trace",
    "als_batch": "als_trace",
}
_BUILTINS_LOADED = False


class EngineRegistryError(LookupError):
    """Unknown engine name / mode, or conflicting registration."""


def _first_docstring_line(obj) -> str:
    lines = (getattr(obj, "__doc__", None) or "").strip().splitlines()
    return lines[0] if lines else ""


def register_engine(
    name: str,
    *,
    modes: Tuple[OperatingMode, ...] = (),
    description: str = "",
    requires_split: bool = True,
):
    """Class decorator registering an engine under ``name``.

    ``modes`` lists the operating modes this engine is the default
    implementation for; :func:`create_engine` resolves ``config.mode``
    through that index.  Engines registered with no modes (pseudo-engines)
    are only reachable via the explicit ``engine=`` override.
    """

    def decorate(cls):
        if name in _REGISTRY:
            raise EngineRegistryError(f"engine {name!r} is already registered")
        for mode in modes:
            if mode in _MODE_INDEX:
                raise EngineRegistryError(
                    f"mode {mode.value!r} already handled by engine "
                    f"{_MODE_INDEX[mode]!r}"
                )
        _REGISTRY[name] = EngineInfo(
            name=name,
            factory=cls,
            modes=tuple(modes),
            description=description or _first_docstring_line(cls),
            requires_split=requires_split,
        )
        for mode in modes:
            _MODE_INDEX[mode] = name
        return cls

    return decorate


def _ensure_builtin_engines() -> None:
    """Import the modules whose engines self-register (idempotent)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    from . import analytical_engine, batch, conventional, optimistic, trace  # noqa: F401

    _BUILTINS_LOADED = True


def available_engines() -> Dict[str, EngineInfo]:
    """Name -> info for every registered engine."""
    _ensure_builtin_engines()
    return dict(_REGISTRY)


def _registry_summary() -> str:
    """One-line rendering of every registration and the modes it claims."""
    parts = []
    for name in sorted(_REGISTRY):
        info = _REGISTRY[name]
        modes = ", ".join(mode.value for mode in info.modes) or "no modes; engine= only"
        parts.append(f"{name} ({modes})")
    return "; ".join(parts)


def _unknown_mode_error(mode: OperatingMode) -> "EngineRegistryError":
    close = get_close_matches(mode.value, _REGISTRY, n=3, cutoff=0.6)
    hint = f" (did you mean engine {', '.join(repr(c) for c in close)}?)" if close else ""
    return EngineRegistryError(
        f"no engine registered for operating mode {mode.value!r};{hint} "
        f"registered engines: {_registry_summary()}"
    )


def engine_for_mode(mode: OperatingMode) -> str:
    """The name of the engine that implements ``mode``."""
    _ensure_builtin_engines()
    try:
        return _MODE_INDEX[mode]
    except KeyError:
        raise _unknown_mode_error(mode) from None


def resolve_engine_name(config, engine: Optional[str] = None) -> str:
    """The engine name a ``create_engine`` call would actually instantiate.

    An explicit ``engine=`` wins outright; otherwise the mode's default
    engine is promoted to its batch variant when ``config.batch_stepping``
    is set, then to its trace variant when ``config.trace_replay`` is set
    (the trace engines extend the batch run loop, so trace wins).
    """
    _ensure_builtin_engines()
    if engine is not None:
        return engine
    name = _MODE_INDEX.get(config.mode)
    if name is None:
        raise _unknown_mode_error(config.mode)
    if getattr(config, "batch_stepping", False):
        name = _BATCH_VARIANTS.get(name, name)
    if getattr(config, "trace_replay", False):
        name = _TRACE_VARIANTS.get(name, name)
    return name


def get_engine_info(name: str) -> EngineInfo:
    """The registration for ``name``; raises the canonical unknown-engine error."""
    _ensure_builtin_engines()
    try:
        return _REGISTRY[name]
    except KeyError:
        close = get_close_matches(name, _REGISTRY, n=3, cutoff=0.6)
        hint = f" (did you mean {', '.join(repr(c) for c in close)}?)" if close else ""
        raise EngineRegistryError(
            f"unknown engine {name!r};{hint} "
            f"available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def create_engine(
    config: CoEmulationConfig,
    sim_hbm: Optional[HalfBusModel] = None,
    acc_hbm: Optional[HalfBusModel] = None,
    *,
    partition: Optional[Mapping[Domain, HalfBusModel]] = None,
    engine: Optional[str] = None,
) -> Engine:
    """Build the engine for ``config`` over a partitioned system.

    The partition is a ``{DomainId: HalfBusModel}`` mapping matching
    ``config``'s topology (build it with ``SocSpec.build_partition``); the
    legacy ``(sim_hbm, acc_hbm)`` positional pair is still accepted for the
    canonical two-domain topology.  Selection is by ``config.mode`` through
    the registry; pass ``engine=`` to force a specific registration (e.g.
    ``"analytical"`` for the closed-form pseudo-engine, which ignores the
    partition).
    """
    name = resolve_engine_name(config, engine)
    info = get_engine_info(name)
    if partition is None and (sim_hbm is not None or acc_hbm is not None):
        partition = {Domain.SIMULATOR: sim_hbm, Domain.ACCELERATOR: acc_hbm}
    if info.requires_split and not partition:
        raise EngineRegistryError(
            f"engine {info.name!r} needs the half bus models of every topology "
            "domain; build them with SocSpec.build_partition()"
        )
    return info.factory(partition, config)
