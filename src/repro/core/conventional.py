"""The conventional (conservative) co-emulation baseline.

With a conventional simulation accelerator the progress of the simulator and
accelerator is synchronised at every valid simulation time: each target cycle
requires one simulator-to-accelerator transfer and one accelerator-to-
simulator transfer, each paying the channel's static startup overhead.  The
paper reports 38.9 kcycles/s for this scheme with a 1,000 kcycles/s simulator
and 28.8 kcycles/s with a 100 kcycles/s simulator; the analytical and
mechanism-level models here reproduce those numbers.
"""

from __future__ import annotations

from typing import Optional

from .coemulation import CoEmulationConfig, CoEmulationEngineBase, CoEmulationResult
from .engine import register_engine
from .modes import OperatingMode
from .prediction import PredictionStats


@register_engine(
    "conventional",
    modes=(OperatingMode.CONSERVATIVE,),
    description="lock-step cycle-by-cycle synchronisation (the paper's baseline)",
)
class ConventionalCoEmulation(CoEmulationEngineBase):
    """Lock-step, cycle-by-cycle synchronisation of all topology domains."""

    # No predictions are ever made, so conservative cycles skip the predictor
    # training bookkeeping entirely (host-side only; results are unchanged).
    observe_during_conservative = False

    def __init__(
        self,
        partition,
        acc_hbm=None,
        config: Optional[CoEmulationConfig] = None,
    ) -> None:
        super().__init__(partition, acc_hbm, config)

    def run(self) -> CoEmulationResult:
        """Run ``config.total_cycles`` target cycles in lock step.

        The loop counts *committed* cycles rather than iterations (each
        scalar conservative cycle commits exactly one), so a restored
        snapshot resumes with the remainder instead of re-running the total.
        """
        total = self.config.total_cycles
        stop = self.config.stop_when_workload_done
        ledger = self.ledger
        while ledger.committed_cycles < total:
            self._safe_point()
            self.run_conservative_cycle()
            if stop and self._workload_done():
                break
        return self._build_result(
            OperatingMode.CONSERVATIVE, prediction=PredictionStats(), lob={}
        )
