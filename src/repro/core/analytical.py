"""Closed-form analytical performance model.

The paper's evaluation (Table 2, Figure 4 and the SLA numbers quoted in the
text) is an analytical estimate, not a wall-clock measurement: it combines
the measured channel constants with the simulator/accelerator speeds, the
LOB depth, the number of rollback variables and a *prediction accuracy*
parameter.  This module reconstructs that model.

Transition model
----------------

One transition consists of a state store, a run-ahead of ``R`` cycles
(``R`` = LOB depth -- the leader fills the buffer), one flush access, the
lagger's follow-up and one report access.  With per-cycle prediction accuracy
``p``:

* the transition succeeds entirely with probability ``p**R``;
* otherwise the first misprediction is at position ``J`` (geometric), the
  leader restores its checkpoint and rolls forth ``J`` cycles.

Expected committed cycles per transition::

    L(p, R) = E[min(J, R)] = (1 - p**R) / (1 - p)          (L = R when p = 1)

Expected leader-executed cycles per transition::

    A(p, R) = R + (L - R * p**R)        # run-ahead + roll-forth

The lagger executes each committed cycle exactly once.  Dividing each cost by
``L`` yields the per-committed-cycle averages Tsim., Tacc., Tstore, Trest.
and Tch. reported by the paper, and performance is the reciprocal of their
sum.

The conventional baseline exchanges two channel accesses per cycle carrying
two words each way, which reproduces the paper's 38.9 kcycles/s
(1,000 kcycles/s simulator) and 28.8 kcycles/s (100 kcycles/s simulator).

Known deviation: the paper does not publish its derivation; this model
matches Table 2 closely at high accuracy and is within ~15-20 % at the lowest
accuracies (the paper's implied run-ahead waste is smaller than ``R`` per
failed transition).  See EXPERIMENTS.md for the side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from ..channel.phy import ChannelDirection, ChannelTimingParams
from ..sim.checkpoint import (
    ACCELERATOR_STATE_COSTS,
    SIMULATOR_STATE_COSTS,
    StateCostModel,
)
from ..sim.component import Domain
from .modes import OperatingMode


#: Words per direction per cycle assumed for the conventional scheme.  The
#: paper notes the per-cycle exchange "does not exceed five words"; two words
#: each way reproduces its 38.9 k / 28.8 kcycles/s baselines exactly.
CONVENTIONAL_WORDS_PER_DIRECTION = 2

#: Words per buffered run-ahead cycle in a LOB flush.  One word per cycle is
#: what the paper's Tch. column implies.
WORDS_PER_LOB_ENTRY = 1

#: Words in the lagger's follow-up report.
REPORT_WORDS = 1


@dataclass(frozen=True)
class AnalyticalConfig:
    """Inputs of the analytical model (paper Table 2 defaults)."""

    mode: OperatingMode = OperatingMode.ALS
    prediction_accuracy: float = 1.0
    simulator_cycles_per_second: float = 1_000_000.0
    accelerator_cycles_per_second: float = 10_000_000.0
    lob_depth: int = 64
    rollback_variables: int = 1000
    channel: ChannelTimingParams = field(default_factory=ChannelTimingParams)
    simulator_state_costs: StateCostModel = SIMULATOR_STATE_COSTS
    accelerator_state_costs: StateCostModel = ACCELERATOR_STATE_COSTS
    words_per_lob_entry: int = WORDS_PER_LOB_ENTRY
    report_words: int = REPORT_WORDS
    conventional_words_per_direction: int = CONVENTIONAL_WORDS_PER_DIRECTION

    def __post_init__(self) -> None:
        if not 0.0 < self.prediction_accuracy <= 1.0:
            raise ValueError("prediction accuracy must be in (0, 1]")
        if self.lob_depth < 1:
            raise ValueError("LOB depth must be at least 1")
        if self.mode is OperatingMode.CONSERVATIVE:
            raise ValueError("use conventional_performance() for the conservative scheme")

    @property
    def t_sim(self) -> float:
        return 1.0 / self.simulator_cycles_per_second

    @property
    def t_acc(self) -> float:
        return 1.0 / self.accelerator_cycles_per_second

    @property
    def leader_domain(self) -> Domain:
        if self.mode is OperatingMode.SLA:
            return Domain.SIMULATOR
        return Domain.ACCELERATOR

    def with_accuracy(self, accuracy: float) -> "AnalyticalConfig":
        return replace(self, prediction_accuracy=accuracy)


@dataclass(frozen=True)
class PerformanceEstimate:
    """Per-cycle cost breakdown and the resulting performance estimate.

    The field names follow the rows of the paper's Table 2.
    """

    prediction_accuracy: float
    t_sim: float
    t_acc: float
    t_store: float
    t_restore: float
    t_channel: float
    committed_per_transition: float
    leader_cycles_per_transition: float
    performance: float
    conventional_performance: float

    @property
    def total_per_cycle(self) -> float:
        return self.t_sim + self.t_acc + self.t_store + self.t_restore + self.t_channel

    @property
    def ratio(self) -> float:
        """Speed-up over the conventional scheme (the paper's "Ratio" row)."""
        if self.conventional_performance == 0:
            return float("inf")
        return self.performance / self.conventional_performance

    def as_dict(self) -> Dict[str, float]:
        return {
            "accuracy": self.prediction_accuracy,
            "Tsim": self.t_sim,
            "Tacc": self.t_acc,
            "Tstore": self.t_store,
            "Trestore": self.t_restore,
            "Tch": self.t_channel,
            "performance": self.performance,
            "ratio": self.ratio,
        }


def expected_committed_per_transition(accuracy: float, lob_depth: int) -> float:
    """E[min(J, R)]: expected committed cycles per transition."""
    if accuracy >= 1.0:
        return float(lob_depth)
    return (1.0 - accuracy**lob_depth) / (1.0 - accuracy)


def expected_rollforth_per_transition(accuracy: float, lob_depth: int) -> float:
    """Expected roll-forth cycles per transition (zero when p = 1)."""
    committed = expected_committed_per_transition(accuracy, lob_depth)
    return committed - lob_depth * accuracy**lob_depth


def failure_probability(accuracy: float, lob_depth: int) -> float:
    """Probability that at least one prediction in a transition fails."""
    return 1.0 - accuracy**lob_depth


def conventional_performance(config: Optional[AnalyticalConfig] = None) -> float:
    """Performance of the conventional lock-step scheme in cycles/second."""
    cfg = config or AnalyticalConfig()
    words = cfg.conventional_words_per_direction
    channel_time = cfg.channel.access_time(
        ChannelDirection.SIM_TO_ACC, words
    ) + cfg.channel.access_time(ChannelDirection.ACC_TO_SIM, words)
    total = cfg.t_sim + cfg.t_acc + channel_time
    return 1.0 / total


def estimate_performance(config: AnalyticalConfig) -> PerformanceEstimate:
    """Evaluate the analytical model for one configuration."""
    p = config.prediction_accuracy
    depth = config.lob_depth

    committed = expected_committed_per_transition(p, depth)
    rollforth = expected_rollforth_per_transition(p, depth)
    leader_cycles = depth + rollforth
    p_fail = failure_probability(p, depth)

    leader_is_simulator = config.leader_domain is Domain.SIMULATOR
    # Execution time per committed cycle for each engine.
    if leader_is_simulator:
        t_sim = config.t_sim * leader_cycles / committed
        t_acc = config.t_acc  # the lagger executes each committed cycle once
        state_costs = config.simulator_state_costs
        flush_direction = ChannelDirection.SIM_TO_ACC
    else:
        t_sim = config.t_sim
        t_acc = config.t_acc * leader_cycles / committed
        state_costs = config.accelerator_state_costs
        flush_direction = ChannelDirection.ACC_TO_SIM

    store_cost = state_costs.store_time(config.rollback_variables)
    restore_cost = state_costs.restore_time(config.rollback_variables)
    t_store = store_cost / committed
    t_restore = restore_cost * p_fail / committed

    flush_time = config.channel.access_time(
        flush_direction, depth * config.words_per_lob_entry
    )
    report_time = config.channel.access_time(flush_direction.other, config.report_words)
    t_channel = (flush_time + report_time) / committed

    total = t_sim + t_acc + t_store + t_restore + t_channel
    return PerformanceEstimate(
        prediction_accuracy=p,
        t_sim=t_sim,
        t_acc=t_acc,
        t_store=t_store,
        t_restore=t_restore,
        t_channel=t_channel,
        committed_per_transition=committed,
        leader_cycles_per_transition=leader_cycles,
        performance=1.0 / total,
        conventional_performance=conventional_performance(config),
    )


def accuracy_sweep(
    config: AnalyticalConfig, accuracies: Iterable[float]
) -> List[PerformanceEstimate]:
    """Evaluate the model over a list of prediction accuracies."""
    return [estimate_performance(config.with_accuracy(p)) for p in accuracies]


def breakeven_accuracy(
    config: AnalyticalConfig, tolerance: float = 1e-4
) -> float:
    """Prediction accuracy at which the optimistic scheme matches the
    conventional one (bisection over the accuracy axis).

    Returns 0 if the optimistic scheme wins at every accuracy in (0, 1].
    """
    conventional = conventional_performance(config)
    low, high = 1e-6, 1.0
    if estimate_performance(config.with_accuracy(low)).performance >= conventional:
        return 0.0
    if estimate_performance(config.with_accuracy(high)).performance <= conventional:
        return 1.0
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if estimate_performance(config.with_accuracy(mid)).performance >= conventional:
            high = mid
        else:
            low = mid
    return (low + high) / 2.0


#: The accuracy points of the paper's Table 2.
TABLE2_ACCURACIES = (1.000, 0.990, 0.960, 0.900, 0.800, 0.600, 0.300, 0.100)

#: The accuracy points of the paper's Figure 4.
FIGURE4_ACCURACIES = (1.0, 0.995, 0.99, 0.96, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1)

#: The paper's Table 2 values, used for paper-vs-reproduction comparisons.
PAPER_TABLE2 = {
    1.000: {"Tacc": 1.0e-7, "Tstore": 4.69e-10, "Trestore": 0.0, "Tch": 4.3e-7, "performance": 652e3, "ratio": 16.75},
    0.990: {"Tacc": 1.6e-7, "Tstore": 7.6e-10, "Trestore": 2.9e-10, "Tch": 6.8e-7, "performance": 543e3, "ratio": 13.97},
    0.960: {"Tacc": 2.9e-7, "Tstore": 1.6e-9, "Trestore": 1.2e-9, "Tch": 1.5e-6, "performance": 363e3, "ratio": 9.33},
    0.900: {"Tacc": 4.9e-7, "Tstore": 3.3e-9, "Trestore": 2.9e-9, "Tch": 2.9e-6, "performance": 226e3, "ratio": 5.80},
    0.800: {"Tacc": 8.1e-7, "Tstore": 6.2e-9, "Trestore": 5.7e-9, "Tch": 5.4e-6, "performance": 138e3, "ratio": 3.56},
    0.600: {"Tacc": 1.5e-6, "Tstore": 1.2e-8, "Trestore": 1.2e-8, "Tch": 1.1e-5, "performance": 76.7e3, "ratio": 1.91},
    0.300: {"Tacc": 2.4e-6, "Tstore": 2.1e-8, "Trestore": 2.0e-8, "Tch": 1.8e-5, "performance": 46.1e3, "ratio": 1.19},
    0.100: {"Tacc": 3.0e-6, "Tstore": 2.7e-8, "Trestore": 2.6e-8, "Tch": 2.3e-5, "performance": 36.7e3, "ratio": 0.94},
}

#: Headline numbers quoted in the paper's text.
PAPER_CONVENTIONAL_1000K = 38.9e3
PAPER_CONVENTIONAL_100K = 28.8e3
PAPER_SLA_MAX_GAIN_1000K = 15.34
PAPER_SLA_MAX_GAIN_100K = 3.25
PAPER_SLA_BREAKEVEN_1000K = 0.70
PAPER_SLA_BREAKEVEN_100K = 0.98
PAPER_ALS_MAX_GAIN_1000K = 16.75


def table2(config: Optional[AnalyticalConfig] = None) -> List[PerformanceEstimate]:
    """Reproduce the paper's Table 2 (ALS, simulator at 1,000 kcycles/s)."""
    cfg = config or AnalyticalConfig(mode=OperatingMode.ALS)
    return accuracy_sweep(cfg, TABLE2_ACCURACIES)


def figure4(
    simulator_speeds: Iterable[float] = (100_000.0, 1_000_000.0),
    lob_depths: Iterable[int] = (64, 8),
    accuracies: Iterable[float] = FIGURE4_ACCURACIES,
) -> Dict[str, List[PerformanceEstimate]]:
    """Reproduce the paper's Figure 4 (ALS performance curves).

    Returns a mapping from a series label (e.g. ``"Sim=1000k, LOBdepth=64"``)
    to the list of estimates along the accuracy axis.
    """
    series: Dict[str, List[PerformanceEstimate]] = {}
    for sim_speed in simulator_speeds:
        for depth in lob_depths:
            config = AnalyticalConfig(
                mode=OperatingMode.ALS,
                simulator_cycles_per_second=sim_speed,
                lob_depth=depth,
            )
            label = f"Sim={int(sim_speed / 1000)}k, LOBdepth={depth}"
            series[label] = accuracy_sweep(config, accuracies)
    return series


def sla_summary(
    simulator_speeds: Iterable[float] = (100_000.0, 1_000_000.0),
) -> Dict[float, dict]:
    """Reproduce the SLA results quoted in the paper's text.

    For each simulator speed, reports the maximum gain (accuracy = 1) and the
    break-even accuracy versus the conventional scheme.
    """
    summary: Dict[float, dict] = {}
    for sim_speed in simulator_speeds:
        config = AnalyticalConfig(
            mode=OperatingMode.SLA, simulator_cycles_per_second=sim_speed
        )
        best = estimate_performance(config.with_accuracy(1.0))
        summary[sim_speed] = {
            "max_gain": best.ratio,
            "max_performance": best.performance,
            "breakeven_accuracy": breakeven_accuracy(config),
            "conventional_performance": conventional_performance(config),
        }
    return summary
