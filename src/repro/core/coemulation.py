"""Co-emulation configuration, result containers and the common engine base.

The two synchronisation engines (:class:`~repro.core.conventional.
ConventionalCoEmulation` and :class:`~repro.core.optimistic.
OptimisticCoEmulation`) share the split-system plumbing implemented here:
building the domain hosts from two half bus models, routing boundary values
through the channel, charging modelled time to the shared ledger and
packaging results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ahb.half_bus import BoundaryDrive, HalfBusModel
from ..ahb.signals import DataPhaseResult
from ..channel.driver import SimulatorAcceleratorChannel
from ..channel.packet import BoundaryPacketizer
from ..channel.phy import ChannelDirection, ChannelTimingParams
from ..sim.checkpoint import (
    ACCELERATOR_STATE_COSTS,
    SIMULATOR_STATE_COSTS,
    StateCostModel,
)
from ..sim.component import Domain
from ..sim.time_model import (
    DEFAULT_ACCELERATOR_SPEED,
    DEFAULT_SIMULATOR_SPEED,
    DomainSpeed,
    WallClockLedger,
)
from .domain import DomainHost, DomainHostConfig
from .modes import OperatingMode
from .prediction import ForcedAccuracyModel, LaggerPredictor, PredictionStats
from .transition import TransitionLog


#: Paper default: the evaluation assumes 1,000 rollback variables.
DEFAULT_ROLLBACK_VARIABLES = 1000

#: Paper default LOB depth (Table 2); Figure 4 also evaluates 8.
DEFAULT_LOB_DEPTH = 64


@dataclass
class CoEmulationConfig:
    """All knobs of a co-emulation run.

    Defaults reproduce the paper's Table 2 environment: simulator at
    1,000 kcycles/s, accelerator at 10 Mcycles/s, LOB depth 64, 1,000
    rollback variables and the measured iPROVE PCI channel constants.
    """

    mode: OperatingMode = OperatingMode.ALS
    total_cycles: int = 10_000
    lob_depth: int = DEFAULT_LOB_DEPTH
    simulator_speed: DomainSpeed = DEFAULT_SIMULATOR_SPEED
    accelerator_speed: DomainSpeed = DEFAULT_ACCELERATOR_SPEED
    simulator_state_costs: StateCostModel = SIMULATOR_STATE_COSTS
    accelerator_state_costs: StateCostModel = ACCELERATOR_STATE_COSTS
    rollback_variables: Optional[int] = DEFAULT_ROLLBACK_VARIABLES
    channel_params: ChannelTimingParams = field(default_factory=ChannelTimingParams)
    forced_accuracy: Optional[float] = None
    forced_accuracy_seed: int = 2005
    predict_new_remote_bursts: bool = True
    interrupt_names: List[str] = field(default_factory=list)
    keep_channel_log: bool = False
    stop_when_workload_done: bool = False

    def __post_init__(self) -> None:
        if self.total_cycles <= 0:
            raise ValueError("total_cycles must be positive")
        if self.lob_depth < 1:
            raise ValueError("lob_depth must be at least 1")
        if self.forced_accuracy is not None and not 0.0 <= self.forced_accuracy <= 1.0:
            raise ValueError("forced_accuracy must be within [0, 1]")


@dataclass
class CoEmulationResult:
    """Outcome of one co-emulation run."""

    mode: OperatingMode
    committed_cycles: int
    per_cycle_times: Dict[str, float]
    total_modelled_time: float
    performance_cycles_per_second: float
    channel: dict
    transitions: dict
    prediction: dict
    lob: dict
    sim_beat_keys: List[tuple]
    acc_beat_keys: List[tuple]
    monitors_ok: bool
    wasted_leader_cycles: int
    ledger: WallClockLedger

    @property
    def tsim(self) -> float:
        """Average simulator time per committed target cycle (Tsim.)."""
        return self.per_cycle_times["simulator"]

    @property
    def tacc(self) -> float:
        """Average accelerator time per committed target cycle (Tacc.)."""
        return self.per_cycle_times["accelerator"]

    @property
    def tstore(self) -> float:
        return self.per_cycle_times["state_store"]

    @property
    def trestore(self) -> float:
        return self.per_cycle_times["state_restore"]

    @property
    def tchannel(self) -> float:
        return self.per_cycle_times["channel"]

    def speedup_over(self, baseline: "CoEmulationResult") -> float:
        """Performance ratio of this run over ``baseline``."""
        if baseline.performance_cycles_per_second == 0:
            return float("inf")
        return self.performance_cycles_per_second / baseline.performance_cycles_per_second

    def summary_row(self) -> dict:
        """A flat dict convenient for tabular reports."""
        return {
            "mode": self.mode.value,
            "cycles": self.committed_cycles,
            "Tsim": self.tsim,
            "Tacc": self.tacc,
            "Tstore": self.tstore,
            "Trestore": self.trestore,
            "Tch": self.tchannel,
            "performance": self.performance_cycles_per_second,
            "channel_accesses": self.channel.get("accesses", 0),
            "prediction_accuracy": self.prediction.get("accuracy", 1.0),
            "rollbacks": self.transitions.get("rollbacks", 0),
        }


class CoEmulationEngineBase:
    """Shared plumbing of the conventional and optimistic engines."""

    def __init__(
        self,
        sim_hbm: HalfBusModel,
        acc_hbm: HalfBusModel,
        config: CoEmulationConfig,
    ) -> None:
        if sim_hbm.domain is not Domain.SIMULATOR or acc_hbm.domain is not Domain.ACCELERATOR:
            raise ValueError(
                "sim_hbm must be the simulator-domain half bus and acc_hbm the "
                "accelerator-domain half bus"
            )
        sim_hbm.finalize()
        acc_hbm.finalize()
        self.config = config
        self.ledger = WallClockLedger()
        self.channel = SimulatorAcceleratorChannel(
            params=config.channel_params, keep_log=config.keep_channel_log
        )
        all_master_ids = sorted(
            set(sim_hbm.local_masters) | set(acc_hbm.local_masters)
        )
        self.packetizer = BoundaryPacketizer(all_master_ids, config.interrupt_names)

        forced = (
            None
            if config.forced_accuracy is None
            else ForcedAccuracyModel(config.forced_accuracy, seed=config.forced_accuracy_seed)
        )
        sim_predictor = LaggerPredictor(
            "sim_side_predictor",
            remote_master_ids=sorted(acc_hbm.local_masters),
            forced_accuracy=forced,
            predict_new_remote_bursts=config.predict_new_remote_bursts,
        )
        acc_predictor = LaggerPredictor(
            "acc_side_predictor",
            remote_master_ids=sorted(sim_hbm.local_masters),
            forced_accuracy=forced,
            predict_new_remote_bursts=config.predict_new_remote_bursts,
        )
        self.sim_host = DomainHost(
            DomainHostConfig(
                domain=Domain.SIMULATOR,
                speed=config.simulator_speed,
                state_costs=config.simulator_state_costs,
                rollback_variable_budget=config.rollback_variables,
            ),
            hbm=sim_hbm,
            ledger=self.ledger,
            predictor=sim_predictor,
        )
        self.acc_host = DomainHost(
            DomainHostConfig(
                domain=Domain.ACCELERATOR,
                speed=config.accelerator_speed,
                state_costs=config.accelerator_state_costs,
                rollback_variable_budget=config.rollback_variables,
            ),
            hbm=acc_hbm,
            ledger=self.ledger,
            predictor=acc_predictor,
        )
        self.transitions = TransitionLog()

    # -- host helpers -----------------------------------------------------------
    def host_for(self, domain: Domain) -> DomainHost:
        return self.sim_host if domain is Domain.SIMULATOR else self.acc_host

    def other_host(self, host: DomainHost) -> DomainHost:
        return self.acc_host if host is self.sim_host else self.sim_host

    def _direction(self, source: DomainHost) -> ChannelDirection:
        return (
            ChannelDirection.SIM_TO_ACC
            if source.domain is Domain.SIMULATOR
            else ChannelDirection.ACC_TO_SIM
        )

    def _charge_channel(
        self, source: DomainHost, n_words: int, purpose: str, cycle: int
    ) -> float:
        """Account one channel access of ``n_words`` words and charge its time.

        The boundary values themselves are handed across in-process; only the
        modelled access cost matters, so no message is materialised or
        retained (constant memory regardless of run length).
        """
        access_time = self.channel.charge(
            self._direction(source), n_words, purpose=purpose, target_cycle=cycle
        )
        self.ledger.charge("channel", access_time)
        return access_time

    # -- conservative (lock-step) cycle ---------------------------------------------
    def _slave_side_host(self) -> DomainHost:
        """The domain hosting the data-phase slave (simulator when idle/tied)."""
        info = self.sim_host.hbm.core.data_phase_info()  # both cores agree
        if info.active and info.slave_id in self.acc_host.local_slave_ids() and (
            info.slave_id not in self.sim_host.local_slave_ids()
        ):
            return self.acc_host
        return self.sim_host

    def run_conservative_cycle(self) -> None:
        """One conventionally synchronised target cycle (two channel accesses).

        The domain that does *not* host the active data-phase slave runs its
        drive step first and ships its contribution across the channel; the
        slave-side domain then completes the cycle and ships back its own
        contribution plus the response.
        """
        second = self._slave_side_host()
        first = self.other_host(second)
        cycle = first.current_cycle

        first_drive = first.drive()
        self._charge_channel(
            first,
            self.packetizer.drive_word_count(first_drive),
            purpose="conservative_drive",
            cycle=cycle,
        )
        second_drive = second.drive()
        merged_second = second.hbm.merge_drive(second_drive, first_drive)
        response = second.respond(merged_second).response or DataPhaseResult.okay()
        second.commit(merged_second, response)

        reply_words = self.packetizer.drive_word_count(second_drive)
        reply_words += self.packetizer.response_word_count(response)
        self._charge_channel(second, reply_words, purpose="conservative_reply", cycle=cycle)

        merged_first = first.hbm.merge_drive(first_drive, second_drive)
        first.commit(merged_first, response)

        self._observe_actuals(first, second_drive, response)
        self._observe_actuals(second, first_drive, response)
        self.ledger.commit_cycles(1)
        self.transitions.record_conservative_cycle()

    def _observe_actuals(
        self,
        observer: DomainHost,
        remote_drive: BoundaryDrive,
        response: Optional[DataPhaseResult],
    ) -> None:
        """Let a domain's predictor learn from actual remote values."""
        if observer.predictor is None:
            return
        info = observer.hbm.core.data_phase_info()
        remote_slave = (
            info.slave_id
            if info.active and info.slave_id not in observer.local_slave_ids()
            else None
        )
        observer.predictor.observe(
            remote_drive,
            response if remote_slave is not None else None,
            slave_id=remote_slave,
        )

    # -- result packaging ------------------------------------------------------------
    def _workload_done(self) -> bool:
        return (
            self.sim_host.hbm.all_local_masters_done()
            and self.acc_host.hbm.all_local_masters_done()
        )

    def _build_result(self, mode: OperatingMode, prediction: PredictionStats, lob: dict) -> CoEmulationResult:
        monitors_ok = True
        for hbm in (self.sim_host.hbm, self.acc_host.hbm):
            if hbm.monitor is not None and not hbm.monitor.ok:
                monitors_ok = False
        return CoEmulationResult(
            mode=mode,
            committed_cycles=self.ledger.committed_cycles,
            per_cycle_times=self.ledger.per_cycle_breakdown(),
            total_modelled_time=self.ledger.total_seconds,
            performance_cycles_per_second=self.ledger.performance_cycles_per_second,
            channel=self.channel.stats.as_dict(),
            transitions=self.transitions.as_dict(),
            prediction=prediction.as_dict(),
            lob=lob,
            sim_beat_keys=self.sim_host.hbm.recorder.beat_keys(),
            acc_beat_keys=self.acc_host.hbm.recorder.beat_keys(),
            monitors_ok=monitors_ok,
            wasted_leader_cycles=self.sim_host.wasted_cycles + self.acc_host.wasted_cycles,
            ledger=self.ledger,
        )
