"""Co-emulation configuration, result containers and the common engine base.

The two synchronisation engines (:class:`~repro.core.conventional.
ConventionalCoEmulation` and :class:`~repro.core.optimistic.
OptimisticCoEmulation`) share the partitioned-system plumbing implemented
here: building one domain host per topology domain from a partition of half
bus models, routing boundary values through the per-pair sync channels,
charging modelled time to the shared ledger and packaging results.

Engines consume a *partition mapping* (``{DomainId: HalfBusModel}``) plus a
:class:`~repro.core.topology.Topology`; the legacy two-positional
``(sim_hbm, acc_hbm, config)`` constructor form is still accepted and is
interpreted as the canonical simulator/accelerator pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..ahb.half_bus import (
    BoundaryDrive,
    HalfBusModel,
    drives_functionally_equal,
    merge_boundary_drives,
)
from ..ahb.bus import DriveValues
from ..ahb.signals import AddressPhase, BusCycleRecord, DataPhaseResult, HTrans
from ..ahb.transaction import CompletedBeat
from ..channel.driver import SimulatorAcceleratorChannel
from ..channel.faults import ChannelFaultConfig, ChannelFaultInjector
from ..channel.packet import BoundaryPacketizer
from ..channel.phy import ChannelDirection, ChannelTimingParams
from ..channel.reliability import SelectiveRepeatLink
from ..channel.stats import ChannelStats, FaultStats
from ..sim.batchmath import repeat_add, repeat_add_pattern
from ..sim.checkpoint import (
    ACCELERATOR_STATE_COSTS,
    SIMULATOR_STATE_COSTS,
    StateCostModel,
)
from ..sim.component import Domain
from ..sim.time_model import (
    DEFAULT_ACCELERATOR_SPEED,
    DEFAULT_SIMULATOR_SPEED,
    DomainSpeed,
    WallClockLedger,
)
from .domain import DomainHost, DomainHostConfig
from .modes import OperatingMode
from .prediction import ForcedAccuracyModel, LaggerPredictor, PredictionStats
from .topology import DomainKind, DomainSpec, Topology, TopologyError
from .transition import TransitionLog


#: Paper default: the evaluation assumes 1,000 rollback variables.
DEFAULT_ROLLBACK_VARIABLES = 1000

#: Shared empty interrupt map (read-only by convention) for remote views.
_NO_INTERRUPTS: Dict[str, bool] = {}

_INF = float("inf")


def _remote_interrupt_union(drives: List[BoundaryDrive], self_index: int) -> Dict[str, bool]:
    """Union of every peer's interrupt lines (rarely non-empty)."""
    union: Optional[Dict[str, bool]] = None
    for index, drive in enumerate(drives):
        if index != self_index and drive.interrupts:
            if union is None:
                union = {}
            union.update(drive.interrupts)
    return union if union is not None else _NO_INTERRUPTS

#: Paper default LOB depth (Table 2); Figure 4 also evaluates 8.
DEFAULT_LOB_DEPTH = 64


@dataclass
class CoEmulationConfig:
    """All knobs of a co-emulation run.

    Defaults reproduce the paper's Table 2 environment: simulator at
    1,000 kcycles/s, accelerator at 10 Mcycles/s, LOB depth 64, 1,000
    rollback variables and the measured iPROVE PCI channel constants.
    """

    mode: OperatingMode = OperatingMode.ALS
    total_cycles: int = 10_000
    lob_depth: int = DEFAULT_LOB_DEPTH
    simulator_speed: DomainSpeed = DEFAULT_SIMULATOR_SPEED
    accelerator_speed: DomainSpeed = DEFAULT_ACCELERATOR_SPEED
    simulator_state_costs: StateCostModel = SIMULATOR_STATE_COSTS
    accelerator_state_costs: StateCostModel = ACCELERATOR_STATE_COSTS
    rollback_variables: Optional[int] = DEFAULT_ROLLBACK_VARIABLES
    channel_params: ChannelTimingParams = field(default_factory=ChannelTimingParams)
    forced_accuracy: Optional[float] = None
    forced_accuracy_seed: int = 2005
    predict_new_remote_bursts: bool = True
    interrupt_names: List[str] = field(default_factory=list)
    keep_channel_log: bool = False
    stop_when_workload_done: bool = False
    #: Batch-stepped engine selection: when True (and no explicit engine name
    #: is requested) the registry resolves the operating mode to its
    #: batch-stepping variant (``conventional_batch`` / ``als_batch``), which
    #: advances provably quiescent stretches of cycles per Python-level
    #: dispatch instead of one cycle at a time.  The batch engines are
    #: bit-identical to the scalar ones on every modelled quantity (the
    #: equivalence suites enforce digest equality); the scalar engines ignore
    #: the flag.
    batch_stepping: bool = False
    #: Periodic steady-state trace replay (see :mod:`repro.core.trace`): when
    #: True (and no explicit engine name is requested) the registry resolves
    #: the operating mode to its trace variant (``conventional_trace`` /
    #: ``als_trace``), which detects recurring per-cycle state signatures,
    #: verifies one full period against a second scalar execution and then
    #: replays further periods from the verified template.  Bit-identical to
    #: the scalar engines on every modelled quantity; replay hit/verify/
    #: bailout counters land on ``CoEmulationResult.trace_replay``.
    trace_replay: bool = False
    #: Activity-gated multi-domain synchronisation (Chandy-Misra-Bryant style
    #: null-message reduction).  With three or more domains, a domain whose
    #: boundary drive is unchanged since it was last shipped exchanges
    #: nothing; instead it advertises a *lookahead promise* ("nothing from me
    #: before cycle T") whenever its quiet horizon expires, and the
    #: multi-lagger follow-up batches its pairwise exchange into one access
    #: per channel per transition.  Functional behaviour is identical with
    #: the gate on or off (boundary values travel in-process either way) --
    #: only the modelled channel traffic and the host-side bookkeeping
    #: change.  The paper's two-domain topologies are unaffected either way.
    sync_gating: bool = True
    #: Multi-domain layout; ``None`` means the paper's canonical
    #: simulator/accelerator pair built from the per-kind fields above.
    topology: Optional[Topology] = None
    #: Imperfect-channel axis: when set (and not ideal), every sync-channel
    #: access runs through the seeded fault injector plus the selective-repeat
    #: reliability layer of :mod:`repro.channel.reliability`.  Boundary values
    #: still travel in-process, so the committed bus behaviour (and the beat
    #: digests derived from it) is identical to the ideal channel for any
    #: seed -- only the modelled times and the per-channel
    #: :class:`~repro.channel.stats.FaultStats` change.  ``None`` (or an
    #: all-zero config) keeps the ideal hot path byte-untouched.
    channel_faults: Optional[ChannelFaultConfig] = None

    def __post_init__(self) -> None:
        if self.total_cycles <= 0:
            raise ValueError("total_cycles must be positive")
        if self.lob_depth < 1:
            raise ValueError("lob_depth must be at least 1")
        if self.forced_accuracy is not None and not 0.0 <= self.forced_accuracy <= 1.0:
            raise ValueError("forced_accuracy must be within [0, 1]")

    # -- topology resolution ------------------------------------------------
    def resolve_topology(self) -> Topology:
        return self.topology if self.topology is not None else Topology.canonical_pair()

    def domain_speed(self, spec: DomainSpec) -> DomainSpeed:
        """Per-domain execution speed, falling back to the per-kind default."""
        if spec.speed is not None:
            return spec.speed
        if spec.kind is DomainKind.SIMULATOR:
            return self.simulator_speed
        return self.accelerator_speed

    def domain_state_costs(self, spec: DomainSpec) -> StateCostModel:
        """Per-domain checkpoint cost policy, falling back to the kind default."""
        if spec.state_costs is not None:
            return spec.state_costs
        if spec.kind is DomainKind.SIMULATOR:
            return self.simulator_state_costs
        return self.accelerator_state_costs


@dataclass
class CoEmulationResult:
    """Outcome of one co-emulation run."""

    mode: OperatingMode
    committed_cycles: int
    per_cycle_times: Dict[str, float]
    total_modelled_time: float
    performance_cycles_per_second: float
    channel: dict
    transitions: dict
    prediction: dict
    lob: dict
    sim_beat_keys: List[tuple]
    acc_beat_keys: List[tuple]
    monitors_ok: bool
    wasted_leader_cycles: int
    ledger: WallClockLedger
    #: Committed beat streams per domain id (covers every topology domain;
    #: ``sim_beat_keys`` / ``acc_beat_keys`` remain the canonical-pair views).
    domain_beat_keys: Dict[str, List[tuple]] = field(default_factory=dict)
    #: Periodic trace-replay counters (``{}`` for engines without the trace
    #: controller): enabled flag, replayed_cycles, verified_periods,
    #: replay_hits and a per-reason bailout histogram.  Host-side
    #: observability only -- never part of the modelled result.
    trace_replay: Dict[str, object] = field(default_factory=dict)

    @property
    def tsim(self) -> float:
        """Average simulator time per committed target cycle (Tsim.)."""
        return self.per_cycle_times.get("simulator", 0.0)

    @property
    def tacc(self) -> float:
        """Average accelerator time per committed target cycle (Tacc.)."""
        return self.per_cycle_times.get("accelerator", 0.0)

    @property
    def tstore(self) -> float:
        return self.per_cycle_times["state_store"]

    @property
    def trestore(self) -> float:
        return self.per_cycle_times["state_restore"]

    @property
    def tchannel(self) -> float:
        return self.per_cycle_times["channel"]

    def speedup_over(self, baseline: "CoEmulationResult") -> float:
        """Performance ratio of this run over ``baseline``."""
        if baseline.performance_cycles_per_second == 0:
            return float("inf")
        return self.performance_cycles_per_second / baseline.performance_cycles_per_second

    def summary_row(self) -> dict:
        """A flat dict convenient for tabular reports."""
        return {
            "mode": self.mode.value,
            "cycles": self.committed_cycles,
            "Tsim": self.tsim,
            "Tacc": self.tacc,
            "Tstore": self.tstore,
            "Trestore": self.trestore,
            "Tch": self.tchannel,
            "performance": self.performance_cycles_per_second,
            "channel_accesses": self.channel.get("accesses", 0),
            "prediction_accuracy": self.prediction.get("accuracy", 1.0),
            "rollbacks": self.transitions.get("rollbacks", 0),
        }


def resolve_engine_args(
    arg1,
    arg2=None,
    config: Optional[CoEmulationConfig] = None,
) -> Tuple[Optional[Mapping[Domain, HalfBusModel]], CoEmulationConfig]:
    """Normalise the two accepted engine constructor forms.

    * New form: ``Engine(partition, config)`` where ``partition`` maps domain
      ids to half bus models (``None`` for pseudo-engines).
    * Legacy form: ``Engine(sim_hbm, acc_hbm, config)`` -- interpreted as the
      canonical simulator/accelerator pair.
    """
    if isinstance(arg2, CoEmulationConfig):
        return arg1, arg2
    if config is None:
        raise TypeError("engine constructors need a CoEmulationConfig")
    if isinstance(arg1, HalfBusModel) or isinstance(arg2, HalfBusModel):
        return {Domain.SIMULATOR: arg1, Domain.ACCELERATOR: arg2}, config
    return arg1, config


class CoEmulationEngineBase:
    """Shared plumbing of the conventional and optimistic engines."""

    #: Whether conservative cycles feed the per-domain predictors.  The
    #: optimistic engine needs the training (mode decisions and run-ahead
    #: quality depend on it); the purely conventional engine never predicts,
    #: so it skips the bookkeeping (host-side only -- no modelled quantity
    #: reads predictor state in a conservative run).
    observe_during_conservative = True

    def __init__(
        self,
        partition,
        acc_hbm=None,
        config: Optional[CoEmulationConfig] = None,
    ) -> None:
        partition, config = resolve_engine_args(partition, acc_hbm, config)
        if not partition:
            raise ValueError("co-emulation engines need a non-empty domain partition")
        partition = {Domain(domain): hbm for domain, hbm in partition.items()}
        self.topology = config.resolve_topology()
        if set(partition) != set(self.topology.domain_ids):
            raise ValueError(
                f"partition domains {sorted(d.value for d in partition)} do not match "
                f"the topology's domains {sorted(d.value for d in self.topology.domain_ids)}"
            )
        for domain, hbm in partition.items():
            if hbm is None or hbm.domain != domain:
                raise ValueError(
                    "sim_hbm must be the simulator-domain half bus and acc_hbm the "
                    "accelerator-domain half bus"
                    if self.topology.is_canonical_pair
                    else f"partition entry {domain.value!r} holds a half bus built for "
                    f"domain {getattr(hbm, 'domain', None)!r}"
                )
        self.config = config
        self.ledger = WallClockLedger()

        # Per-pair sync channels (one SimulatorAcceleratorChannel each).  The
        # ordered (source, dest) index resolves both the channel object and
        # the direction to charge; orientation follows topology domain order,
        # so the canonical pair keeps sim->acc == SIM_TO_ACC.
        self._channels: Dict[Tuple[Domain, Domain], Tuple[SimulatorAcceleratorChannel, ChannelDirection]] = {}
        self._channel_list: List[SimulatorAcceleratorChannel] = []
        for sync in self.topology.channels:
            channel = SimulatorAcceleratorChannel(
                params=sync.params or config.channel_params,
                keep_log=config.keep_channel_log,
            )
            first, second = self.topology.oriented_pair(sync)
            self._channels[(first, second)] = (channel, ChannelDirection.SIM_TO_ACC)
            self._channels[(second, first)] = (channel, ChannelDirection.ACC_TO_SIM)
            self._channel_list.append(channel)
        # Domain pairs without a direct sync channel (e.g. leaf-to-leaf in a
        # Topology.star farm) relay through the first domain connected to
        # both endpoints, paying one access per hop.
        self._relay_routes: Dict[Tuple[Domain, Domain], Tuple[Tuple[Domain, Domain], ...]] = {}
        ids = self.topology.domain_ids
        for src in ids:
            for dst in ids:
                if src == dst or (src, dst) in self._channels:
                    continue
                for via in ids:
                    if (src, via) in self._channels and (via, dst) in self._channels:
                        self._relay_routes[(src, dst)] = ((src, via), (via, dst))
                        break
        #: Legacy single-channel view (the canonical pair's only channel).
        self.channel = self._channel_list[0] if len(self._channel_list) == 1 else None

        # Imperfect-channel wiring: one modelled selective-repeat link per
        # ordered (source, dest) pair, each drawing from its own seeded
        # stream (derived from the fault seed plus the link coordinates, so
        # one link's schedule never depends on how many others exist).  Both
        # directions of a channel share that channel's FaultStats.  The
        # ideal hot path is untouched: ``_charge_channel`` is only shadowed
        # when a non-ideal fault config is present.
        self._fault_links: Dict[Tuple[Domain, Domain], SelectiveRepeatLink] = {}
        faults = config.channel_faults
        if faults is not None and not faults.is_ideal:
            for sync in self.topology.channels:
                first, second = self.topology.oriented_pair(sync)
                channel, _ = self._channels[(first, second)]
                channel.stats.faults = FaultStats()
                for src, dst in ((first, second), (second, first)):
                    _, direction = self._channels[(src, dst)]
                    injector = ChannelFaultInjector(
                        faults,
                        faults.derive_rng(src.value, dst.value, direction.value),
                        stats=channel.stats.faults,
                    )
                    self._fault_links[(src, dst)] = SelectiveRepeatLink(
                        channel, direction, faults, injector
                    )
            self._charge_channel = self._charge_channel_faulty  # type: ignore[method-assign]

        all_master_ids = sorted(
            {mid for hbm in partition.values() for mid in hbm.local_masters}
        )
        self.packetizer = BoundaryPacketizer(all_master_ids, config.interrupt_names)

        forced = (
            None
            if config.forced_accuracy is None
            else ForcedAccuracyModel(config.forced_accuracy, seed=config.forced_accuracy_seed)
        )
        self.hosts: Dict[Domain, DomainHost] = {}
        for spec in self.topology.domains:
            hbm = partition[spec.domain]
            hbm.finalize()
            remote_ids = sorted(set(all_master_ids) - set(hbm.local_masters))
            predictor = LaggerPredictor(
                _predictor_name(spec.domain),
                remote_master_ids=remote_ids,
                forced_accuracy=forced,
                predict_new_remote_bursts=config.predict_new_remote_bursts,
            )
            self.hosts[spec.domain] = DomainHost(
                DomainHostConfig(
                    domain=spec.domain,
                    speed=config.domain_speed(spec),
                    state_costs=config.domain_state_costs(spec),
                    rollback_variable_budget=config.rollback_variables,
                ),
                hbm=hbm,
                ledger=self.ledger,
                predictor=predictor,
            )
        self._host_list: List[DomainHost] = list(self.hosts.values())
        #: Canonical-pair aliases (``None`` when the topology lacks that id).
        self.sim_host = self.hosts.get(Domain.SIMULATOR)
        self.acc_host = self.hosts.get(Domain.ACCELERATOR)
        self.transitions = TransitionLog()
        # Activity-gate state (N>2 domains only): per source domain, the last
        # boundary drive actually shipped on its channels and the cycle until
        # which it has promised to stay quiet (-1 = no outstanding promise).
        # The gate models the channels' memory, so it lives on the engine and
        # is *not* rolled back -- values already shipped stay shipped.
        self._sync_gating = config.sync_gating and len(self._host_list) > 2
        self._last_broadcast: Dict[Domain, BoundaryDrive] = {}
        self._quiet_until: Dict[Domain, float] = {}
        # Per-domain local-slave id sets (rebuilt per cycle before this was
        # hoisted) and per-host execution bookkeeping for the inlined
        # lock-step commit loop.
        self._slave_ids_of: Dict[Domain, frozenset] = {
            host.domain: frozenset(host.hbm.local_slaves) for host in self._host_list
        }
        self._master_home: Dict[int, DomainHost] = {
            mid: host for host in self._host_list for mid in host.hbm.local_masters
        }
        #: Grant value after the last committed lock-step cycle (quiet-domain
        #: drive reuse is only valid while arbitration is stable).
        self._last_grant: Optional[int] = None
        #: Optional per-safe-point callable ``hook(engine)``, invoked by the
        #: run loops between committed transitions (never mid-transition).
        #: This is where durable snapshots, watchdog heartbeats, chaos
        #: injection and graceful-drain aborts attach; ``None`` (the default)
        #: costs one attribute read per safe point.  Hooks are host-local
        #: plumbing, never modelled state: they are stripped before a
        #: snapshot is taken and stay ``None`` on a restored engine.
        self.run_hook = None

    # -- durable snapshots -------------------------------------------------------
    def _safe_point(self) -> None:
        """Invoke the run hook, if any.  Run loops call this exactly at the
        points where the engine state is self-consistent and snapshottable:
        the committed prefix is fully charged, no transition is in flight and
        no rollback checkpoint is outstanding."""
        hook = self.run_hook
        if hook is not None:
            hook(self)

    @classmethod
    def restore(cls, path) -> "CoEmulationEngineBase":
        """Load a durable snapshot and return the resumable engine.

        The returned engine continues from its snapshotted safe point:
        calling :meth:`run` commits the remaining cycles and produces a
        result bit-identical to an uninterrupted run.
        """
        from .snapshot import SnapshotError, load_engine

        engine = load_engine(path)
        if not isinstance(engine, cls):
            raise SnapshotError(
                f"snapshot at {path} holds a {type(engine).__name__}, "
                f"not a {cls.__name__}"
            )
        return engine

    # -- host helpers -----------------------------------------------------------
    def host_for(self, domain: Domain) -> DomainHost:
        return self.hosts[Domain(domain)]

    def other_host(self, host: DomainHost) -> DomainHost:
        """The single peer of ``host`` (two-domain topologies only)."""
        others = [h for h in self._host_list if h is not host]
        if len(others) != 1:
            raise TopologyError(
                "other_host() is only defined for two-domain topologies; "
                "enumerate engine.hosts instead"
            )
        return others[0]

    def peer_hosts(self, host: DomainHost) -> List[DomainHost]:
        """Every other host, in topology order."""
        return [h for h in self._host_list if h is not host]

    def _charge_channel(
        self, source: DomainHost, dest: DomainHost, n_words: int, purpose: str, cycle: int
    ) -> float:
        """Account one access of ``n_words`` words on the (source, dest) link.

        The boundary values themselves are handed across in-process; only the
        modelled access cost matters, so no message is materialised or
        retained (constant memory regardless of run length).  Pairs without a
        direct channel (restricted topologies such as hub-and-spoke stars)
        relay through an intermediate domain, paying one access per hop.
        """
        entry = self._channels.get((source.domain, dest.domain))
        if entry is None:
            return self._charge_relayed(source, dest, n_words, purpose, cycle)
        channel, direction = entry
        access_time = channel.stats.record_access(
            direction, n_words, purpose=purpose, target_cycle=cycle
        )
        layers = channel.layers
        layer_times = channel.layer_times
        layer_times.api += layers.api_overhead
        layer_times.driver += layers.driver_overhead
        layer_times.physical += layers.physical_overhead
        # Direct bucket update ("channel" is a canonical category and
        # access_time is non-negative by construction).
        self.ledger.buckets["channel"] += access_time
        return access_time

    def _charge_relayed(
        self, source: DomainHost, dest: DomainHost, n_words: int, purpose: str, cycle: int
    ) -> float:
        route = self._relay_routes.get((source.domain, dest.domain))
        if route is None:
            raise TopologyError(
                f"topology has no sync channel (or relay route) between "
                f"{source.domain.value!r} and {dest.domain.value!r}"
            )
        total = 0.0
        for hop_src, hop_dst in route:
            channel, direction = self._channels[(hop_src, hop_dst)]
            total += channel.charge(direction, n_words, purpose=purpose, target_cycle=cycle)
        self.ledger.charge("channel", total)
        return total

    def _charge_channel_faulty(
        self, source: DomainHost, dest: DomainHost, n_words: int, purpose: str, cycle: int
    ) -> float:
        """Fault-injected variant of :meth:`_charge_channel`.

        Installed (as an instance attribute shadowing the ideal method) only
        when ``config.channel_faults`` is active.  Each logical exchange runs
        the modelled selective-repeat delivery: the wire may drop, corrupt,
        duplicate, reorder or jitter the frame, retransmissions pay real
        modelled time with exponential-backoff RTO waits, and the SACK
        feedback frame pays the reverse direction.  Values still travel
        in-process, so nothing functional can diverge; a link degraded past
        the give-up threshold raises
        :class:`~repro.channel.faults.ChannelDegradedError`.
        """
        link = self._fault_links.get((source.domain, dest.domain))
        if link is None:
            route = self._relay_routes.get((source.domain, dest.domain))
            if route is None:
                raise TopologyError(
                    f"topology has no sync channel (or relay route) between "
                    f"{source.domain.value!r} and {dest.domain.value!r}"
                )
            total = 0.0
            for hop in route:
                total += self._fault_links[hop].deliver(n_words, purpose, cycle)
            self.ledger.charge("channel", total)
            return total
        total = link.deliver(n_words, purpose, cycle)
        self.ledger.buckets["channel"] += total
        return total

    # -- conservative (lock-step) cycle ---------------------------------------------
    def _slave_side_host(self) -> DomainHost:
        """The domain hosting the data-phase slave (first domain when idle/tied)."""
        info = self._host_list[0].hbm.core.data_phase_info()  # all cores agree
        if info.active:
            slave_ids_of = self._slave_ids_of
            for host in self._host_list:
                if info.slave_id in slave_ids_of[host.domain]:
                    return host
        return self._host_list[0]

    def run_conservative_cycle(self) -> None:
        """One conventionally synchronised target cycle.

        Every domain that does *not* host the active data-phase slave runs
        its drive step first and ships its contribution to each peer; the
        slave-side domain then completes the cycle and ships back its own
        contribution plus the response.  With two domains this is the
        paper's two-accesses-per-cycle exchange; with N domains each ordered
        pair pays one access per cycle; with one domain no channel is
        touched at all.
        """
        if len(self._host_list) == 2:
            # Hot path: the canonical pair keeps the straight-line exchange
            # (no per-cycle container churn), byte-identical to the general
            # loop below for two domains.
            second = self._slave_side_host()
            first = self.other_host(second)
            cycle = first.current_cycle

            first_drive = first.drive()
            self._charge_channel(
                first,
                second,
                self.packetizer.drive_word_count(first_drive),
                purpose="conservative_drive",
                cycle=cycle,
            )
            second_drive = second.drive()
            merged_second = second.hbm.merge_drive(second_drive, first_drive)
            response = second.respond(merged_second).response or DataPhaseResult.okay()
            second.commit(merged_second, response)

            reply_words = self.packetizer.drive_word_count(second_drive)
            reply_words += self.packetizer.response_word_count(response)
            self._charge_channel(
                second, first, reply_words, purpose="conservative_reply", cycle=cycle
            )

            merged_first = first.hbm.merge_drive(first_drive, second_drive)
            first.commit(merged_first, response)

            if self.observe_during_conservative:
                self._observe_actuals(first, second_drive, response)
                self._observe_actuals(second, first_drive, response)
            self.ledger.commit_cycles(1)
            self.transitions.record_conservative_cycle()
            return

        if self._sync_gating:
            self._run_conservative_cycle_gated()
            return

        responder = self._slave_side_host()
        others = [host for host in self._host_list if host is not responder]
        cycle = self._host_list[0].current_cycle

        drives: Dict[Domain, BoundaryDrive] = {}
        for host in others:
            drive = host.drive()
            drives[host.domain] = drive
            drive_words = self.packetizer.drive_word_count(drive)
            for dest in self._host_list:
                if dest is not host:
                    self._charge_channel(
                        host, dest, drive_words, purpose="conservative_drive", cycle=cycle
                    )

        responder_drive = responder.drive()
        drives[responder.domain] = responder_drive
        merged_responder = responder.hbm.merge_drives(
            responder_drive, [drives[host.domain] for host in others]
        ) if others else responder.hbm.merge_drive(
            responder_drive, BoundaryDrive(cycle=cycle)
        )
        response = responder.respond(merged_responder).response or DataPhaseResult.okay()
        responder.commit(merged_responder, response)

        reply_words = self.packetizer.drive_word_count(responder_drive)
        reply_words += self.packetizer.response_word_count(response)
        for dest in others:
            self._charge_channel(
                responder, dest, reply_words, purpose="conservative_reply", cycle=cycle
            )

        for host in others:
            merged = host.hbm.merge_drives(
                drives[host.domain],
                [drives[peer.domain] for peer in self._host_list if peer is not host],
            )
            host.commit(merged, response)

        if self.observe_during_conservative:
            for host in self._host_list:
                remote = [drives[peer.domain] for peer in self._host_list if peer is not host]
                if remote:
                    self._observe_actuals(host, merge_boundary_drives(remote), response)
        self.ledger.commit_cycles(1)
        self.transitions.record_conservative_cycle()

    def _run_conservative_cycle_gated(self) -> None:
        """One N-domain lock-step cycle with activity-gated channel traffic.

        Functionally identical to the ungated loop (every domain still drives,
        merges all peers' contributions and commits the same values -- the
        gating on/off equivalence tests enforce this); only the modelled
        channel accounting changes:

        * a domain ships its boundary drive to its peers only when the drive
          *changed* since it was last shipped (an unchanged drive carries no
          information -- the receivers keep the last value);
        * a quiet domain instead advertises a one-word *lookahead promise*
          ("nothing from me before cycle T", with T from
          :meth:`~repro.ahb.half_bus.HalfBusModel.influence_lookahead`)
          whenever its previous promise expires, the Chandy-Misra-Bryant
          null-message reduction -- a drained domain promises once and then
          stays silent;
        * the data-phase response is shipped by the responder only while a
          data phase is actually active (the idle OKAY is a constant).

        The per-cycle cost therefore scales with the number of *active*
        ordered pairs instead of all D*(D-1) pairs.
        """
        hosts = self._host_list
        responder = self._slave_side_host()
        cycle = hosts[0].current_cycle
        info = responder.hbm.core.data_phase_info()
        info_active = info.active
        packetizer = self.packetizer
        last_broadcast = self._last_broadcast
        quiet_until = self._quiet_until
        # Quiet-domain drive reuse: while arbitration is stable, a domain
        # holding an *infinite* lookahead promise (all local masters drained
        # or provably waiting), with no per-cycle components and not owning
        # the active data phase, must re-drive exactly the values it last
        # shipped -- its drive step is skipped and the shipped object reused.
        effective_grant = hosts[0].hbm.core.arbiter.current_grant
        grant_stable = effective_grant == self._last_grant
        # Record the grant *in effect this cycle*: the next cycle compares
        # its own effective grant against it, so a re-arbitration at this
        # cycle's commit is seen as unstable next cycle.
        self._last_grant = effective_grant
        owner_host = (
            self._master_home.get(info.owner_master_id) if info_active else None
        )

        drives: List[BoundaryDrive] = []
        for host in hosts:
            domain = host.domain
            if (
                grant_stable
                and host is not owner_host
                and quiet_until.get(domain, -1.0) == _INF
                and not host.hbm._tick_active
            ):
                drives.append(last_broadcast[domain])
                continue
            drive = host.hbm.drive_phase(cycle)
            drives.append(drive)
            last = last_broadcast.get(domain)
            if last is None or not drives_functionally_equal(drive, last):
                words = packetizer.drive_word_count(drive)
                for dest in hosts:
                    if dest is not host:
                        self._charge_channel(
                            host, dest, words, purpose="conservative_drive", cycle=cycle
                        )
                last_broadcast[domain] = drive
                quiet_until[domain] = -1.0
            elif quiet_until.get(domain, -1.0) <= cycle:
                # Quiet horizon expired: renew the lookahead promise (one
                # header word per channel).
                horizon = host.hbm.influence_lookahead(cycle)
                for dest in hosts:
                    if dest is not host:
                        self._charge_channel(
                            host, dest, 1, purpose="sync_promise", cycle=cycle
                        )
                quiet_until[domain] = horizon

        # In lock step every replicated core commits the *same* merged bus
        # values: master ownership is disjoint across domains and at most one
        # domain drives an address phase or write data, so the union of all
        # contributions -- built once -- is exactly what each host's
        # local-plus-peers merge would produce.  One shared DriveValues
        # object serves every commit (nothing mutates committed drive
        # values; the request dict is aliased by every core's latched
        # register, which is read-only after commit).
        global_drive = merge_boundary_drives(drives)
        global_phase = global_drive.address_phase
        global_hwdata = global_drive.hwdata
        merged = DriveValues(
            requests=global_drive.requests,
            address_phase=(
                global_phase
                if global_phase is not None
                else AddressPhase.idle_phase(hosts[0].hbm.core.arbiter.current_grant)
            ),
            hwdata=global_hwdata,
            interrupts=global_drive.interrupts,
        )
        response = (
            responder.hbm.response_phase(cycle, merged).response or DataPhaseResult.okay()
        )

        if info.active:
            reply_words = packetizer.response_word_count(response)
            for dest in hosts:
                if dest is not responder:
                    self._charge_channel(
                        responder, dest, reply_words, purpose="conservative_reply", cycle=cycle
                    )

        # Shared commit objects: every replicated core produces the same
        # cycle record (and completed beat) in lock step, so they are built
        # once and adopted by reference.
        first_core = hosts[0].hbm.core
        record = BusCycleRecord(
            cycle=cycle,
            granted_master=first_core.arbiter.current_grant,
            address_phase=merged.address_phase,
            data_phase=first_core.data_phase,
            hwdata=merged.hwdata,
            response=response,
            requests=merged.requests,
        )
        beat = None
        if info.active and response.hready:
            phase = info.address_phase
            beat = CompletedBeat(
                cycle=cycle,
                master_id=phase.master_id,
                address=phase.haddr,
                write=phase.hwrite,
                data=merged.hwdata if phase.hwrite else response.hrdata,
                hresp=response.hresp,
                hburst=phase.hburst,
                hsize=phase.hsize,
                first_beat=phase.htrans is HTrans.NONSEQ,
            )
        for host in hosts:
            host.hbm.commit_lockstep(cycle, merged, response, record, beat)

        # Batched per-host clock/execution bookkeeping (identical float
        # additions per category as the per-host commit wrapper).
        buckets = self.ledger.buckets
        for host in hosts:
            clock = host.clock
            clock.cycle += 1
            clock.total_executed += 1
            execution = host.execution
            buckets[execution.category] += execution._seconds_per_cycle
            execution.cycles_charged += 1

        if self.observe_during_conservative:
            # Per-host remote view derived from the global union (observe
            # only reads remote master ids from the request map, so handing
            # it the global map is equivalent to the peers-only union).
            phase_owner = phase_index = None
            for index, drive in enumerate(drives):
                if drive.address_phase is not None:
                    phase_index = index
                if drive.hwdata is not None:
                    phase_owner = index
            has_interrupts = bool(global_drive.interrupts)
            global_requests = global_drive.requests
            for index, host in enumerate(hosts):
                remote_view = BoundaryDrive(
                    cycle=cycle,
                    requests=global_requests,
                    address_phase=global_phase if phase_index != index else None,
                    hwdata=global_hwdata if phase_owner != index else None,
                    interrupts=(
                        _remote_interrupt_union(drives, index)
                        if has_interrupts
                        else _NO_INTERRUPTS
                    ),
                )
                self._observe_actuals(host, remote_view, response)
        self.ledger.commit_cycles(1)
        self.transitions.record_conservative_cycle()

    def _observe_actuals(
        self,
        observer: DomainHost,
        remote_drive: BoundaryDrive,
        response: Optional[DataPhaseResult],
    ) -> None:
        """Let a domain's predictor learn from actual remote values."""
        predictor = observer.predictor
        if predictor is None:
            return
        info = observer.hbm.core.data_phase_info()
        remote_slave = (
            info.slave_id
            if info.active and info.slave_id not in self._slave_ids_of[observer.domain]
            else None
        )
        predictor.observe(
            remote_drive,
            response if remote_slave is not None else None,
            slave_id=remote_slave,
        )

    # -- batch stepping: quiescence fast-forward ----------------------------------
    def next_event_cycle(self) -> float:
        """Earliest future cycle at which any domain may initiate bus activity.

        The batch-stepping horizon exposed by every engine: derived from the
        per-master workload queues (burst in flight / next issue cycle) and,
        under activity gating, from the outstanding lookahead-promise
        renewals.  Returns the current cycle when anything may be active right
        now and ``inf`` when every workload is drained.
        """
        hosts = self._host_list
        cycle = hosts[0].current_cycle
        horizon = _INF
        for host in hosts:
            candidate = host.hbm.next_local_activity(cycle)
            if candidate < horizon:
                horizon = candidate
                if horizon <= cycle:
                    return horizon
        if self._sync_gating:
            for quiet in self._quiet_until.values():
                if quiet != _INF and cycle < quiet < horizon:
                    horizon = quiet
        return horizon

    def _idle_run_length(self, limit: int) -> int:
        """Longest ``k <= limit`` such that the next ``k`` lock-step cycles
        are provably identical all-idle fixed-point cycles.

        Returns 0 when no batchable run exists (anything active, quiescence
        horizon too close, a gating promise due for renewal, ...); a result
        ``k > 1`` may be handed to :meth:`_fast_forward_idle_cycles`.
        Engines that train predictors during conservative cycles are
        excluded: the per-cycle ``observe`` calls are part of their scalar
        behaviour.
        """
        if limit <= 1 or self.observe_during_conservative:
            return 0
        hosts = self._host_list
        cycle = hosts[0].current_cycle
        horizon = float(cycle + limit)
        for host in hosts:
            hbm = host.hbm
            if not hbm.idle_stationary():
                return 0
            activity = hbm.next_local_activity(cycle)
            if activity <= cycle:
                return 0
            if activity < horizon:
                horizon = activity
        if self._sync_gating:
            # The gated lock-step cycle adds three per-domain conditions: the
            # grant must have been stable since the last committed cycle, a
            # quiet domain's promise must outlast the whole stretch (a
            # renewal cycle runs scalar), and a domain outside the
            # infinite-promise reuse branch must re-drive exactly what it
            # last shipped (otherwise the scalar path ships the change).
            if hosts[0].hbm.core.arbiter.current_grant != self._last_grant:
                return 0
            quiet_until = self._quiet_until
            last_broadcast = self._last_broadcast
            for host in hosts:
                domain = host.domain
                last = last_broadcast.get(domain)
                if last is None:
                    return 0
                quiet = quiet_until.get(domain, -1.0)
                if quiet == _INF:
                    continue  # reuse branch: no drive step, no traffic
                if quiet <= cycle:
                    return 0  # promise renewal due this cycle
                if quiet < horizon:
                    horizon = quiet
                # Sampling the drive is side-effect-free at the idle fixed
                # point (no per-cycle ticks; parked masters return interned
                # idle phases without starting transactions).
                if not drives_functionally_equal(host.hbm.drive_phase(cycle), last):
                    return 0
        run = int(horizon - cycle)
        return run if run > 1 else 0

    def _fast_forward_idle_cycles(self, count: int) -> None:
        """Commit ``count`` all-idle lock-step cycles in one batched step.

        Preconditions are established by :meth:`_idle_run_length`; this
        method applies exactly the state transitions ``count`` scalar
        :meth:`run_conservative_cycle` calls would have applied -- same cycle
        records, same channel accesses in the same order, same float
        accumulation sequences -- without re-entering per-cycle dispatch.
        """
        hosts = self._host_list
        cycle = hosts[0].current_cycle
        grant = hosts[0].hbm.core.arbiter.current_grant
        gated = self._sync_gating
        okay = DataPhaseResult.okay()

        if gated:
            # Effective per-domain drives: reuse the last shipped values for
            # infinite-promise domains (as the scalar gated cycle does),
            # sample the rest once -- their outputs are constant over the
            # stretch.  No charges: nothing ships while every drive repeats
            # its last broadcast and every promise outlasts the stretch.
            drives = [
                self._last_broadcast[host.domain]
                if self._quiet_until.get(host.domain, -1.0) == _INF
                else host.hbm.drive_phase(cycle)
                for host in hosts
            ]
            global_drive = merge_boundary_drives(drives)
            shared_requests = global_drive.requests
            merged_phase = global_drive.address_phase
            if merged_phase is None:
                merged_phase = AddressPhase.idle_phase(grant)
            plan: List[tuple] = []
        else:
            # Ungated lock-step: the drive/reply exchange happens every cycle
            # with constant word counts, so the per-cycle charge plan is
            # built once and replayed ``count`` times.  With the bus idle the
            # responder is always the first topology domain.
            drives = [host.hbm.drive_phase(cycle) for host in hosts]
            shared_requests = hosts[0].hbm._request_template.copy()
            merged_phase = None
            for drive in drives:
                if drive.address_phase is not None:
                    merged_phase = drive.address_phase
                    break
            if merged_phase is None:
                merged_phase = AddressPhase.idle_phase(grant)
            plan = []
            packetizer = self.packetizer
            responder = hosts[0]
            others = hosts[1:]
            for index, host in enumerate(hosts[1:], start=1):
                drive_words = packetizer.drive_word_count(drives[index])
                for dest in hosts:
                    if dest is not host:
                        plan.append((host, dest, drive_words, "conservative_drive"))
            if others:
                reply_words = packetizer.drive_word_count(drives[0])
                reply_words += packetizer.response_word_count(okay)
                for dest in others:
                    plan.append((responder, dest, reply_words, "conservative_reply"))

        records = [
            BusCycleRecord(
                cycle=cycle + offset,
                granted_master=grant,
                address_phase=merged_phase,
                data_phase=None,
                hwdata=None,
                response=okay,
                requests=shared_requests,
            )
            for offset in range(count)
        ]
        if not self._apply_charge_plan(plan, count):
            for offset in range(count):
                for src, dst, words, purpose in plan:
                    self._charge_channel(src, dst, words, purpose, cycle + offset)
        for host in hosts:
            host.hbm.adopt_idle_records(records, shared_requests)
        buckets = self.ledger.buckets
        for host in hosts:
            clock = host.clock
            clock.cycle += count
            clock.total_executed += count
            execution = host.execution
            buckets[execution.category] = repeat_add(
                buckets[execution.category], execution._seconds_per_cycle, count
            )
            execution.cycles_charged += count
        if gated:
            self._last_grant = grant
        self.ledger.commit_cycles(count)
        self.transitions.record_conservative_cycle(count)

    def _apply_charge_plan(self, plan: List[tuple], count: int) -> bool:
        """Apply ``count`` repetitions of a per-cycle channel charge plan in
        closed form.

        Returns ``False`` (without charging anything) when a leg cannot be
        reproduced exactly by the closed form -- fault injection active
        (per-access RNG draws), a relayed pair, or a channel keeping an
        access log (per-access records with cycle stamps); the caller then
        falls back to per-cycle charging.  Float accumulators advance through
        the bit-exact sequential helpers; integer counters use the closed
        form directly.
        """
        if not plan or count <= 0:
            return True
        if self._fault_links:
            return False
        legs = []
        for src, dst, words, purpose in plan:
            entry = self._channels.get((src.domain, dst.domain))
            if entry is None:
                return False
            channel, direction = entry
            if channel.stats.keep_log:
                return False
            legs.append((channel, direction, words, purpose))
        pattern: List[float] = []
        per_channel: Dict[int, list] = {}
        channel_order: List[int] = []
        for channel, direction, words, purpose in legs:
            access_time = channel.params.access_time(direction, words)
            pattern.append(access_time)
            info = per_channel.get(id(channel))
            if info is None:
                info = per_channel[id(channel)] = [channel, [], 0, 0, {}, {}, {}]
                channel_order.append(id(channel))
            info[1].append(access_time)
            info[2] += 1
            info[3] += words
            info[4][direction] = info[4].get(direction, 0) + 1
            info[5][direction] = info[5].get(direction, 0) + words
            info[6][purpose] = info[6].get(purpose, 0) + 1
        buckets = self.ledger.buckets
        buckets["channel"] = repeat_add_pattern(buckets["channel"], pattern, count)
        for key in channel_order:
            channel, times, n_legs, n_words, dir_accesses, dir_words, purposes = per_channel[key]
            stats = channel.stats
            stats.accesses += n_legs * count
            stats.words += n_words * count
            stats.total_time = repeat_add_pattern(stats.total_time, times, count)
            for direction, n in dir_accesses.items():
                stats.per_direction_accesses[direction] += n * count
            for direction, w in dir_words.items():
                stats.per_direction_words[direction] += w * count
            per_purpose = stats.per_purpose_accesses
            for purpose, n in purposes.items():
                per_purpose[purpose] = per_purpose.get(purpose, 0) + n * count
            layers = channel.layers
            layer_times = channel.layer_times
            n_adds = n_legs * count
            layer_times.api = repeat_add(layer_times.api, layers.api_overhead, n_adds)
            layer_times.driver = repeat_add(layer_times.driver, layers.driver_overhead, n_adds)
            layer_times.physical = repeat_add(
                layer_times.physical, layers.physical_overhead, n_adds
            )
        return True

    # -- result packaging ------------------------------------------------------------
    def _workload_done(self) -> bool:
        return all(host.hbm.all_local_masters_done() for host in self._host_list)

    def _channel_stats_dict(self) -> dict:
        """Channel traffic totals: single-channel dict, or a mesh aggregate."""
        if len(self._channel_list) == 1:
            return self._channel_list[0].stats.as_dict()
        if not self._channel_list:
            return ChannelStats(params=self.config.channel_params, keep_log=False).as_dict()
        aggregate = {
            "accesses": 0,
            "words": 0,
            "total_time": 0.0,
            "startup_time": 0.0,
            "payload_time": 0.0,
            "per_purpose": {},
            "per_channel": {},
        }
        per_purpose: Dict[str, int] = aggregate["per_purpose"]
        for sync in self.topology.channels:
            first, second = self.topology.oriented_pair(sync)
            channel, _ = self._channels[(first, second)]
            stats = channel.stats.as_dict()
            aggregate["accesses"] += stats["accesses"]
            aggregate["words"] += stats["words"]
            aggregate["total_time"] += stats["total_time"]
            aggregate["startup_time"] += stats["startup_time"]
            aggregate["payload_time"] += stats["payload_time"]
            for purpose, count in stats["per_purpose"].items():
                per_purpose[purpose] = per_purpose.get(purpose, 0) + count
            aggregate["per_channel"][f"{first.value}<->{second.value}"] = {
                "accesses": stats["accesses"],
                "words": stats["words"],
                "total_time": stats["total_time"],
            }
        aggregate["words_per_access"] = (
            aggregate["words"] / aggregate["accesses"] if aggregate["accesses"] else 0.0
        )
        fault_totals: Optional[FaultStats] = None
        for channel in self._channel_list:
            if channel.stats.faults is not None:
                if fault_totals is None:
                    fault_totals = FaultStats()
                fault_totals.merge(channel.stats.faults)
        if fault_totals is not None:
            aggregate["faults"] = fault_totals.as_dict()
        return aggregate

    def _build_result(self, mode: OperatingMode, prediction: PredictionStats, lob: dict) -> CoEmulationResult:
        monitors_ok = True
        for host in self._host_list:
            if host.hbm.monitor is not None and not host.hbm.monitor.ok:
                monitors_ok = False
        domain_beat_keys = {
            host.domain.value: host.hbm.recorder.beat_keys() for host in self._host_list
        }
        return CoEmulationResult(
            mode=mode,
            committed_cycles=self.ledger.committed_cycles,
            per_cycle_times=self.ledger.per_cycle_breakdown(),
            total_modelled_time=self.ledger.total_seconds,
            performance_cycles_per_second=self.ledger.performance_cycles_per_second,
            channel=self._channel_stats_dict(),
            transitions=self.transitions.as_dict(),
            prediction=prediction.as_dict(),
            lob=lob,
            sim_beat_keys=domain_beat_keys.get(Domain.SIMULATOR.value, []),
            acc_beat_keys=domain_beat_keys.get(Domain.ACCELERATOR.value, []),
            monitors_ok=monitors_ok,
            wasted_leader_cycles=sum(host.wasted_cycles for host in self._host_list),
            ledger=self.ledger,
            domain_beat_keys=domain_beat_keys,
            trace_replay=(
                replay.stats.as_dict()
                if (replay := getattr(self, "replay", None)) is not None
                else {}
            ),
        )


def _predictor_name(domain: Domain) -> str:
    if domain is Domain.SIMULATOR:
        return "sim_side_predictor"
    if domain is Domain.ACCELERATOR:
        return "acc_side_predictor"
    return f"{domain.value}_side_predictor"
