"""The prediction packetizing scheme (the paper's contribution).

Public entry points:

* :class:`ConventionalCoEmulation` -- the lock-step baseline.
* :class:`OptimisticCoEmulation` -- the prediction-and-rollback engine with
  SLA / ALS / AUTO operating modes.
* :class:`CoEmulationConfig` / :class:`CoEmulationResult` -- run configuration
  and result containers shared by both engines.
* :mod:`repro.core.analytical` -- the closed-form performance model that
  regenerates the paper's Table 2, Figure 4 and SLA numbers.
"""

from .analytical import (
    AnalyticalConfig,
    FIGURE4_ACCURACIES,
    PAPER_ALS_MAX_GAIN_1000K,
    PAPER_CONVENTIONAL_100K,
    PAPER_CONVENTIONAL_1000K,
    PAPER_SLA_BREAKEVEN_100K,
    PAPER_SLA_BREAKEVEN_1000K,
    PAPER_SLA_MAX_GAIN_100K,
    PAPER_SLA_MAX_GAIN_1000K,
    PAPER_TABLE2,
    PerformanceEstimate,
    TABLE2_ACCURACIES,
    accuracy_sweep,
    breakeven_accuracy,
    conventional_performance,
    estimate_performance,
    expected_committed_per_transition,
    expected_rollforth_per_transition,
    failure_probability,
    figure4,
    sla_summary,
    table2,
)
from .coemulation import (
    CoEmulationConfig,
    CoEmulationEngineBase,
    CoEmulationResult,
    DEFAULT_LOB_DEPTH,
    DEFAULT_ROLLBACK_VARIABLES,
)
from .analytical_engine import AnalyticalPseudoEngine
from .conventional import ConventionalCoEmulation
from .domain import DomainHost, DomainHostConfig, DomainHostError, assert_cores_in_sync
from .engine import (
    Engine,
    EngineInfo,
    EngineRegistryError,
    available_engines,
    create_engine,
    engine_for_mode,
    register_engine,
    resolve_engine_name,
)
from .lob import LeaderOutputBuffer, LobEntry, LobError, LobStats
from .modes import (
    AutoModePolicy,
    ConservativePolicy,
    ModeDecision,
    ModePolicy,
    OperatingMode,
    StaticLeaderPolicy,
    policy_for_mode,
)
from .optimistic import CwPath, OptimisticCoEmulation, OptimisticRunTrace, PathTraceEntry
from .snapshot import (
    AbortRun,
    SNAPSHOT_VERSION,
    SnapshotError,
    SnapshotMeta,
    load_engine,
    read_snapshot,
    write_snapshot,
)
from .topology import (
    DomainId,
    DomainKind,
    DomainSpec,
    SyncChannel,
    Topology,
    TopologyError,
)
from .prediction import (
    ForcedAccuracyModel,
    LaggerPredictor,
    PredictionRecord,
    PredictionStats,
)
from .transition import (
    TransitionLog,
    TransitionOutcome,
    TransitionRecord,
    TransitionStep,
)

__all__ = [
    "AbortRun",
    "AnalyticalConfig",
    "AnalyticalPseudoEngine",
    "AutoModePolicy",
    "CoEmulationConfig",
    "CoEmulationEngineBase",
    "CoEmulationResult",
    "ConservativePolicy",
    "ConventionalCoEmulation",
    "CwPath",
    "DEFAULT_LOB_DEPTH",
    "DEFAULT_ROLLBACK_VARIABLES",
    "DomainHost",
    "DomainHostConfig",
    "DomainHostError",
    "DomainId",
    "DomainKind",
    "DomainSpec",
    "Engine",
    "EngineInfo",
    "EngineRegistryError",
    "FIGURE4_ACCURACIES",
    "ForcedAccuracyModel",
    "LaggerPredictor",
    "LeaderOutputBuffer",
    "LobEntry",
    "LobError",
    "LobStats",
    "ModeDecision",
    "ModePolicy",
    "OperatingMode",
    "OptimisticCoEmulation",
    "OptimisticRunTrace",
    "PAPER_ALS_MAX_GAIN_1000K",
    "PAPER_CONVENTIONAL_100K",
    "PAPER_CONVENTIONAL_1000K",
    "PAPER_SLA_BREAKEVEN_100K",
    "PAPER_SLA_BREAKEVEN_1000K",
    "PAPER_SLA_MAX_GAIN_100K",
    "PAPER_SLA_MAX_GAIN_1000K",
    "PAPER_TABLE2",
    "PathTraceEntry",
    "PerformanceEstimate",
    "PredictionRecord",
    "PredictionStats",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "SnapshotMeta",
    "StaticLeaderPolicy",
    "SyncChannel",
    "TABLE2_ACCURACIES",
    "Topology",
    "TopologyError",
    "TransitionLog",
    "TransitionOutcome",
    "TransitionRecord",
    "TransitionStep",
    "accuracy_sweep",
    "assert_cores_in_sync",
    "available_engines",
    "breakeven_accuracy",
    "conventional_performance",
    "create_engine",
    "engine_for_mode",
    "estimate_performance",
    "expected_committed_per_transition",
    "expected_rollforth_per_transition",
    "failure_probability",
    "figure4",
    "load_engine",
    "policy_for_mode",
    "read_snapshot",
    "write_snapshot",
    "register_engine",
    "resolve_engine_name",
    "sla_summary",
    "table2",
]
