"""Operating modes of the co-emulation synchronisation scheme.

The paper defines two optimistic operating modes named after which domain
leads the other, plus the conventional conservative mode:

* **SLA** -- Simulator Leading Accelerator: the software simulator runs ahead
  and predicts the accelerator's responses.
* **ALS** -- Accelerator Leading Simulator: the accelerator runs ahead and
  predicts the simulator's responses.
* **Conservative** -- the conventional cycle-by-cycle synchronisation.

The fourth problem the paper lists (Section 3) is the *dynamic decision*
among SLA, ALS and conservative operation; :class:`ModePolicy` captures that
decision.  The static policies reproduce the paper's experiments (which fix
the mode); the :class:`AutoModePolicy` chooses, cycle by cycle, a leader that
does not require any non-predictable remote value, mirroring the paper's rule
of placing the data-flow source in the leader domain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..ahb.half_bus import NeededFields
from ..sim.component import Domain


class OperatingMode(str, Enum):
    """Synchronisation scheme selector."""

    CONSERVATIVE = "conservative"
    SLA = "sla"
    ALS = "als"
    AUTO = "auto"

    @property
    def leader_domain(self) -> Optional[Domain]:
        """The statically configured leader domain, if any."""
        if self is OperatingMode.SLA:
            return Domain.SIMULATOR
        if self is OperatingMode.ALS:
            return Domain.ACCELERATOR
        return None

    @property
    def is_optimistic(self) -> bool:
        return self is not OperatingMode.CONSERVATIVE


@dataclass(frozen=True)
class ModeDecision:
    """The outcome of a per-transition mode decision."""

    optimistic: bool
    leader: Optional[Domain] = None
    reason: str = ""


class ModePolicy(ABC):
    """Decides, before each transition, whether/who should lead."""

    @abstractmethod
    def decide(
        self,
        sim_needed: NeededFields,
        acc_needed: NeededFields,
        sim_can_predict: bool,
        acc_can_predict: bool,
    ) -> ModeDecision:
        """Choose the operating mode for the next transition attempt.

        Args:
            sim_needed: remote fields the simulator domain would need if it led.
            acc_needed: remote fields the accelerator domain would need if it led.
            sim_can_predict: whether the simulator-side predictor can predict
                everything in ``sim_needed``.
            acc_can_predict: same for the accelerator-side predictor.
        """


class ConservativePolicy(ModePolicy):
    """Never go optimistic (the conventional baseline)."""

    def decide(self, sim_needed, acc_needed, sim_can_predict, acc_can_predict) -> ModeDecision:
        return ModeDecision(optimistic=False, reason="conservative mode configured")


class StaticLeaderPolicy(ModePolicy):
    """Always attempt to lead with a fixed domain (SLA or ALS)."""

    def __init__(self, leader: Domain) -> None:
        self.leader = leader

    def decide(self, sim_needed, acc_needed, sim_can_predict, acc_can_predict) -> ModeDecision:
        can_predict = sim_can_predict if self.leader is Domain.SIMULATOR else acc_can_predict
        if can_predict:
            return ModeDecision(optimistic=True, leader=self.leader, reason="static leader")
        return ModeDecision(
            optimistic=False,
            leader=self.leader,
            reason="static leader cannot predict the lagger this cycle",
        )


class AutoModePolicy(ModePolicy):
    """Pick whichever domain can currently predict its lagger.

    Preference order: the preferred domain (accelerator by default, since it
    is the faster engine and therefore the cheaper one to burn on wasted
    run-ahead work), then the other domain, then conservative.
    """

    def __init__(self, prefer: Domain = Domain.ACCELERATOR) -> None:
        self.prefer = prefer

    def decide(self, sim_needed, acc_needed, sim_can_predict, acc_can_predict) -> ModeDecision:
        ordered = (
            (self.prefer, acc_can_predict if self.prefer is Domain.ACCELERATOR else sim_can_predict),
            (self.prefer.other, sim_can_predict if self.prefer is Domain.ACCELERATOR else acc_can_predict),
        )
        for domain, can_predict in ordered:
            if can_predict:
                return ModeDecision(
                    optimistic=True, leader=domain, reason=f"auto: {domain.value} can predict"
                )
        return ModeDecision(optimistic=False, reason="auto: neither domain can predict")


def policy_for_mode(mode: OperatingMode, prefer: Domain = Domain.ACCELERATOR) -> ModePolicy:
    """Build the :class:`ModePolicy` implementing ``mode``."""
    if mode is OperatingMode.CONSERVATIVE:
        return ConservativePolicy()
    if mode is OperatingMode.SLA:
        return StaticLeaderPolicy(Domain.SIMULATOR)
    if mode is OperatingMode.ALS:
        return StaticLeaderPolicy(Domain.ACCELERATOR)
    if mode is OperatingMode.AUTO:
        return AutoModePolicy(prefer=prefer)
    raise ValueError(f"unknown operating mode {mode!r}")
