"""Operating modes of the co-emulation synchronisation scheme.

The paper defines two optimistic operating modes named after which domain
leads the other, plus the conventional conservative mode:

* **SLA** -- Simulator Leading Accelerator: the software simulator runs ahead
  and predicts the accelerator's responses.
* **ALS** -- Accelerator Leading Simulator: the accelerator runs ahead and
  predicts the simulator's responses.
* **Conservative** -- the conventional cycle-by-cycle synchronisation.

The fourth problem the paper lists (Section 3) is the *dynamic decision*
among SLA, ALS and conservative operation; :class:`ModePolicy` captures that
decision.  The static policies reproduce the paper's experiments (which fix
the mode); the :class:`AutoModePolicy` chooses, cycle by cycle, a leader that
does not require any non-predictable remote value, mirroring the paper's rule
of placing the data-flow source in the leader domain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Optional

from ..sim.component import Domain
from .topology import DomainKind, Topology


class OperatingMode(str, Enum):
    """Synchronisation scheme selector."""

    CONSERVATIVE = "conservative"
    SLA = "sla"
    ALS = "als"
    AUTO = "auto"

    @property
    def leader_domain(self) -> Optional[Domain]:
        """The statically configured leader domain, if any."""
        if self is OperatingMode.SLA:
            return Domain.SIMULATOR
        if self is OperatingMode.ALS:
            return Domain.ACCELERATOR
        return None

    @property
    def is_optimistic(self) -> bool:
        return self is not OperatingMode.CONSERVATIVE


@dataclass(frozen=True)
class ModeDecision:
    """The outcome of a per-transition mode decision."""

    optimistic: bool
    leader: Optional[Domain] = None
    reason: str = ""


class ModePolicy(ABC):
    """Decides, before each transition, whether/who should lead.

    ``candidates`` maps every topology domain (in topology order) to whether
    its predictor can currently predict *all* of its remote values -- the
    generalisation of the old ``(sim_can_predict, acc_can_predict)`` pair to
    N-domain topologies.
    """

    @abstractmethod
    def decide(self, candidates: Mapping[Domain, bool]) -> ModeDecision:
        """Choose the operating mode for the next transition attempt."""


class ConservativePolicy(ModePolicy):
    """Never go optimistic (the conventional baseline)."""

    def decide(self, candidates: Mapping[Domain, bool]) -> ModeDecision:
        return ModeDecision(optimistic=False, reason="conservative mode configured")


class StaticLeaderPolicy(ModePolicy):
    """Always attempt to lead with a fixed domain (SLA or ALS).

    When the configured leader is not part of the running topology (e.g. ALS
    on a simulator-only partition) the policy degrades to conservative
    operation rather than electing an arbitrary stand-in.
    """

    def __init__(self, leader: Domain) -> None:
        self.leader = Domain(leader)

    def decide(self, candidates: Mapping[Domain, bool]) -> ModeDecision:
        if self.leader not in candidates:
            return ModeDecision(
                optimistic=False,
                leader=self.leader,
                reason="static leader domain is not part of this topology",
            )
        if candidates[self.leader]:
            return ModeDecision(optimistic=True, leader=self.leader, reason="static leader")
        return ModeDecision(
            optimistic=False,
            leader=self.leader,
            reason="static leader cannot predict the lagger this cycle",
        )


class AutoModePolicy(ModePolicy):
    """Pick a domain that can currently predict all of its laggers.

    Preference order: the preferred domain (accelerator by default, since it
    is the faster engine and therefore the cheaper one to burn on wasted
    run-ahead work), then the remaining domains in topology order, then
    conservative.
    """

    def __init__(self, prefer: Domain = Domain.ACCELERATOR) -> None:
        self.prefer = Domain(prefer)

    def decide(self, candidates: Mapping[Domain, bool]) -> ModeDecision:
        ordered = [self.prefer] if self.prefer in candidates else []
        ordered.extend(domain for domain in candidates if domain not in ordered)
        for domain in ordered:
            if candidates[domain]:
                return ModeDecision(
                    optimistic=True, leader=domain, reason=f"auto: {domain.value} can predict"
                )
        return ModeDecision(optimistic=False, reason="auto: neither domain can predict")


def policy_for_mode(
    mode: OperatingMode,
    prefer: Optional[Domain] = None,
    topology: Optional[Topology] = None,
) -> ModePolicy:
    """Build the :class:`ModePolicy` implementing ``mode``.

    With a topology, the SLA / ALS leader resolves to the first domain of
    the matching *kind* (so ``als`` on a multi-accelerator farm leads with
    the first accelerator); without one, the canonical pair is assumed.
    """
    if mode is OperatingMode.CONSERVATIVE:
        return ConservativePolicy()
    if mode is OperatingMode.SLA:
        leader = topology.first_of_kind(DomainKind.SIMULATOR) if topology else None
        return StaticLeaderPolicy(leader if leader is not None else Domain.SIMULATOR)
    if mode is OperatingMode.ALS:
        leader = topology.first_of_kind(DomainKind.ACCELERATOR) if topology else None
        return StaticLeaderPolicy(leader if leader is not None else Domain.ACCELERATOR)
    if mode is OperatingMode.AUTO:
        if prefer is None:
            prefer = (
                topology.first_of_kind(DomainKind.ACCELERATOR) if topology else None
            ) or Domain.ACCELERATOR
        return AutoModePolicy(prefer=prefer)
    raise ValueError(f"unknown operating mode {mode!r}")
