"""Co-emulation topologies: which domains exist and how they are wired.

The paper's Figure 2 hard-wires one software simulator against one hardware
accelerator.  Real verification farms are richer: several accelerators or
emulators attach to one simulation host, partitions may be simulator-only,
and traffic can flow accelerator-to-accelerator.  This module makes that
structure declarative:

* :class:`DomainSpec` describes one verification domain -- its id, its
  *kind* (``simulator`` or ``accelerator``), and optionally a per-domain
  execution speed and checkpoint cost policy (``None`` falls back to the
  engine configuration's per-kind defaults);
* :class:`SyncChannel` is one pairwise synchronisation link with its own
  timing parameters (``None`` falls back to the configured channel);
* :class:`Topology` is the validated set of domains plus the channels
  between them (a full mesh by default).

The canonical two-domain topology (:meth:`Topology.canonical_pair`)
reproduces the paper's setup exactly; engines built over it are
byte-identical to the pre-topology code, which the golden regression suite
enforces.  Topologies serialise to plain JSON (:meth:`Topology.as_dict` /
:meth:`Topology.from_dict`) so run requests can carry them across process
boundaries and the CLI can accept them from files.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..channel.phy import ChannelTimingParams
from ..sim.checkpoint import StateCostModel
from ..sim.component import Domain
from ..sim.time_model import DomainSpeed

#: A domain identifier.  Interned strings; see :class:`repro.sim.component.Domain`.
DomainId = Domain

#: Ledger category names a domain id may not shadow (the per-domain execution
#: buckets share the ledger with these bookkeeping categories).
RESERVED_DOMAIN_IDS = frozenset({"state_store", "state_restore", "channel", "other"})


class TopologyError(ValueError):
    """Raised for structurally invalid topologies."""


class DomainKind(str, Enum):
    """What kind of execution engine hosts a domain."""

    SIMULATOR = "simulator"
    ACCELERATOR = "accelerator"


@dataclass(frozen=True)
class DomainSpec:
    """Static description of one verification domain.

    ``speed`` and ``state_costs`` may be left ``None``, in which case the
    engine resolves them from its :class:`~repro.core.coemulation.
    CoEmulationConfig` by kind (the paper's simulator/accelerator defaults).
    """

    domain: DomainId
    kind: DomainKind
    speed: Optional[DomainSpeed] = None
    state_costs: Optional[StateCostModel] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "domain", Domain(self.domain))
        object.__setattr__(self, "kind", DomainKind(self.kind))
        if self.domain in RESERVED_DOMAIN_IDS:
            raise TopologyError(
                f"domain id {self.domain.value!r} collides with a reserved "
                f"ledger category ({sorted(RESERVED_DOMAIN_IDS)})"
            )

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"domain": self.domain.value, "kind": self.kind.value}
        if self.speed is not None:
            payload["cycles_per_second"] = self.speed.cycles_per_second
        if self.state_costs is not None:
            payload["state_costs"] = {
                "store_time_per_variable": self.state_costs.store_time_per_variable,
                "restore_time_per_variable": self.state_costs.restore_time_per_variable,
                "fixed_store_overhead": self.state_costs.fixed_store_overhead,
                "fixed_restore_overhead": self.state_costs.fixed_restore_overhead,
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DomainSpec":
        speed = payload.get("cycles_per_second")
        costs = payload.get("state_costs")
        return cls(
            domain=Domain(payload["domain"]),
            kind=DomainKind(payload["kind"]),
            speed=None if speed is None else DomainSpeed(float(speed)),
            state_costs=None if costs is None else StateCostModel(**dict(costs)),
        )


@dataclass(frozen=True)
class SyncChannel:
    """One pairwise synchronisation link between two domains.

    The orientation is normalised by the owning topology (the endpoint that
    comes first in domain order plays the channel's "simulator side" for
    direction-dependent word timings).  ``params=None`` uses the engine
    configuration's channel parameters.
    """

    a: DomainId
    b: DomainId
    params: Optional[ChannelTimingParams] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "a", Domain(self.a))
        object.__setattr__(self, "b", Domain(self.b))
        if self.a == self.b:
            raise TopologyError(f"sync channel endpoints must differ (got {self.a.value!r})")

    @property
    def pair(self) -> frozenset:
        return frozenset((self.a, self.b))

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"a": self.a.value, "b": self.b.value}
        if self.params is not None:
            payload["params"] = {
                "startup_overhead": self.params.startup_overhead,
                "sim_to_acc_word_time": self.params.sim_to_acc_word_time,
                "acc_to_sim_word_time": self.params.acc_to_sim_word_time,
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SyncChannel":
        params = payload.get("params")
        return cls(
            a=Domain(payload["a"]),
            b=Domain(payload["b"]),
            params=None if params is None else ChannelTimingParams(**dict(params)),
        )


@dataclass(frozen=True)
class Topology:
    """A validated set of domains plus their pairwise sync channels.

    ``channels=()`` (the default) derives a full mesh: one channel per
    unordered domain pair, in domain order.  Explicit channel lists may
    restrict connectivity or attach per-link timing parameters; engines
    raise when they need a pair that has no channel.
    """

    domains: Tuple[DomainSpec, ...]
    channels: Tuple[SyncChannel, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "domains", tuple(self.domains))
        if not self.domains:
            raise TopologyError("a topology needs at least one domain")
        ids = [spec.domain for spec in self.domains]
        if len(set(ids)) != len(ids):
            raise TopologyError(f"duplicate domain ids in topology: {ids}")
        channels = tuple(self.channels)
        if not channels:
            channels = tuple(
                SyncChannel(a=ids[i], b=ids[j])
                for i in range(len(ids))
                for j in range(i + 1, len(ids))
            )
        known = set(ids)
        seen_pairs = set()
        for channel in channels:
            if channel.a not in known or channel.b not in known:
                raise TopologyError(
                    f"sync channel {channel.a.value!r}<->{channel.b.value!r} references "
                    f"a domain not in the topology ({sorted(d.value for d in known)})"
                )
            if channel.pair in seen_pairs:
                raise TopologyError(
                    f"duplicate sync channel between {channel.a.value!r} and {channel.b.value!r}"
                )
            seen_pairs.add(channel.pair)
        object.__setattr__(self, "channels", channels)

    # -- lookups ---------------------------------------------------------------
    @property
    def domain_ids(self) -> Tuple[DomainId, ...]:
        return tuple(spec.domain for spec in self.domains)

    @property
    def n_domains(self) -> int:
        return len(self.domains)

    def spec_for(self, domain: DomainId) -> DomainSpec:
        domain = Domain(domain)
        for spec in self.domains:
            if spec.domain == domain:
                return spec
        raise TopologyError(f"domain {domain.value!r} is not part of this topology")

    def index_of(self, domain: DomainId) -> int:
        domain = Domain(domain)
        for index, spec in enumerate(self.domains):
            if spec.domain == domain:
                return index
        raise TopologyError(f"domain {domain.value!r} is not part of this topology")

    def domains_of_kind(self, kind: DomainKind) -> List[DomainSpec]:
        kind = DomainKind(kind)
        return [spec for spec in self.domains if spec.kind is kind]

    def first_of_kind(self, kind: DomainKind) -> Optional[DomainId]:
        for spec in self.domains:
            if spec.kind is DomainKind(kind):
                return spec.domain
        return None

    def channel_between(self, a: DomainId, b: DomainId) -> SyncChannel:
        pair = frozenset((Domain(a), Domain(b)))
        for channel in self.channels:
            if channel.pair == pair:
                return channel
        raise TopologyError(
            f"no sync channel between {Domain(a).value!r} and {Domain(b).value!r} "
            "in this topology"
        )

    def oriented_pair(self, channel: SyncChannel) -> Tuple[DomainId, DomainId]:
        """The channel endpoints in domain order (first endpoint = "sim side")."""
        if self.index_of(channel.a) <= self.index_of(channel.b):
            return channel.a, channel.b
        return channel.b, channel.a

    @property
    def is_canonical_pair(self) -> bool:
        """True for the paper's simulator+accelerator two-domain layout."""
        return self.domain_ids == (Domain.SIMULATOR, Domain.ACCELERATOR) and (
            self.domains[0].kind is DomainKind.SIMULATOR
            and self.domains[1].kind is DomainKind.ACCELERATOR
        )

    def describe(self) -> str:
        """Compact one-line rendering, e.g. ``simulator+acc0+acc1``."""
        return "+".join(spec.domain.value for spec in self.domains)

    # -- construction ----------------------------------------------------------
    @classmethod
    def canonical_pair(cls) -> "Topology":
        """The paper's hard-wired simulator/accelerator split as a topology."""
        return cls(
            domains=(
                DomainSpec(domain=Domain.SIMULATOR, kind=DomainKind.SIMULATOR),
                DomainSpec(domain=Domain.ACCELERATOR, kind=DomainKind.ACCELERATOR),
            )
        )

    @classmethod
    def star(
        cls,
        hub: DomainSpec,
        leaves: Sequence[DomainSpec],
        params: Optional[ChannelTimingParams] = None,
    ) -> "Topology":
        """A hub-and-spoke topology: every leaf syncs only with the hub.

        Models the common farm layout where accelerators attach to one
        simulation host and never talk to each other directly.
        """
        channels = tuple(SyncChannel(a=hub.domain, b=leaf.domain, params=params) for leaf in leaves)
        return cls(domains=(hub, *leaves), channels=channels)

    # -- serialisation ---------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"domains": [spec.as_dict() for spec in self.domains]}
        # A derived full mesh round-trips as the default (empty) channel list.
        mesh = Topology(domains=self.domains)
        if self.channels != mesh.channels:
            payload["channels"] = [channel.as_dict() for channel in self.channels]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Topology":
        domains = tuple(DomainSpec.from_dict(d) for d in payload["domains"])
        channels = tuple(SyncChannel.from_dict(c) for c in payload.get("channels", ()))
        return cls(domains=domains, channels=channels)
