"""Transition bookkeeping.

The paper calls the span of one SLA or ALS phase a *transition*, composed of
four steps:

* **RA** (Run-Ahead): the leader executes ahead, predicting lagger responses
  and storing its outputs in the Leader Output Buffer.
* **FU** (Follow-Up): the lagger catches up, checking each prediction.
* **RB** (RollBack, optional): on a misprediction the leader's state is
  restored from the checkpoint taken at the start of the transition.
* **RF** (Roll-Forth, optional): the leader re-executes up to the lagger's
  progress point.

:class:`TransitionRecord` captures what happened in one transition;
:class:`TransitionLog` aggregates statistics across a run (rollback counts,
average run-ahead length, committed cycles per transition, ...), which feed
the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..sim.component import Domain


class TransitionStep(str, Enum):
    """The four steps of a transition (Table 1 of the paper)."""

    RUN_AHEAD = "run_ahead"
    FOLLOW_UP = "follow_up"
    ROLLBACK = "rollback"
    ROLL_FORTH = "roll_forth"


class TransitionOutcome(str, Enum):
    """How a transition ended."""

    SUCCESS = "success"  # every prediction was correct
    MISPREDICTION = "misprediction"  # rollback + roll-forth happened
    DEGENERATE = "degenerate"  # leader could not predict even one cycle


@dataclass
class TransitionRecord:
    """Bookkeeping for a single transition."""

    index: int
    leader: Domain
    start_cycle: int
    run_ahead_cycles: int = 0
    committed_cycles: int = 0
    outcome: TransitionOutcome = TransitionOutcome.SUCCESS
    failure_position: Optional[int] = None
    failure_reason: str = ""
    forced_failure: bool = False
    roll_forth_cycles: int = 0
    flush_words: int = 0
    conservative_lead_in: bool = True

    @property
    def wasted_leader_cycles(self) -> int:
        """Leader cycles executed but discarded by the rollback."""
        if self.outcome is not TransitionOutcome.MISPREDICTION:
            return 0
        return max(0, self.run_ahead_cycles - self.committed_cycles)


@dataclass
class TransitionLog:
    """Aggregated statistics over all transitions of a run."""

    records: List[TransitionRecord] = field(default_factory=list)
    conservative_cycles: int = 0

    def new_record(self, leader: Domain, start_cycle: int) -> TransitionRecord:
        record = TransitionRecord(index=len(self.records), leader=leader, start_cycle=start_cycle)
        self.records.append(record)
        return record

    def record_conservative_cycle(self, count: int = 1) -> None:
        self.conservative_cycles += count

    # -- aggregate metrics ---------------------------------------------------------
    @property
    def transitions(self) -> int:
        return len(self.records)

    @property
    def successful_transitions(self) -> int:
        return sum(1 for r in self.records if r.outcome is TransitionOutcome.SUCCESS)

    @property
    def rollbacks(self) -> int:
        return sum(1 for r in self.records if r.outcome is TransitionOutcome.MISPREDICTION)

    @property
    def degenerate_transitions(self) -> int:
        return sum(1 for r in self.records if r.outcome is TransitionOutcome.DEGENERATE)

    @property
    def total_run_ahead_cycles(self) -> int:
        return sum(r.run_ahead_cycles for r in self.records)

    @property
    def total_committed_by_transitions(self) -> int:
        return sum(r.committed_cycles for r in self.records)

    @property
    def total_roll_forth_cycles(self) -> int:
        return sum(r.roll_forth_cycles for r in self.records)

    @property
    def total_wasted_leader_cycles(self) -> int:
        return sum(r.wasted_leader_cycles for r in self.records)

    def mean_run_ahead_length(self) -> float:
        if not self.records:
            return 0.0
        return self.total_run_ahead_cycles / len(self.records)

    def mean_committed_per_transition(self) -> float:
        if not self.records:
            return 0.0
        return self.total_committed_by_transitions / len(self.records)

    def leaders_used(self) -> dict:
        counts: dict = {}
        for record in self.records:
            counts[record.leader.value] = counts.get(record.leader.value, 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {
            "transitions": self.transitions,
            "successful_transitions": self.successful_transitions,
            "rollbacks": self.rollbacks,
            "degenerate_transitions": self.degenerate_transitions,
            "conservative_cycles": self.conservative_cycles,
            "total_run_ahead_cycles": self.total_run_ahead_cycles,
            "total_roll_forth_cycles": self.total_roll_forth_cycles,
            "total_wasted_leader_cycles": self.total_wasted_leader_cycles,
            "mean_run_ahead_length": self.mean_run_ahead_length(),
            "mean_committed_per_transition": self.mean_committed_per_transition(),
            "leaders_used": self.leaders_used(),
        }
