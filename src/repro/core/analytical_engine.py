"""The closed-form performance model packaged as a registry engine.

The paper's published numbers (Table 2, Figure 4, the SLA summary) come from
an analytical estimate, not from running the mechanism.  Registering that
estimate as a pseudo-engine lets sweeps, benchmarks and the batch
orchestrator treat "evaluate the formula" and "run the protocol" uniformly:
the same :class:`~repro.core.coemulation.CoEmulationConfig` goes in, the same
:class:`~repro.core.coemulation.CoEmulationResult` shape comes out.

Select it explicitly -- it claims no operating mode::

    engine = create_engine(config, engine="analytical")
    result = engine.run()

The result carries the model's per-cycle cost breakdown and performance for
``config.total_cycles`` committed cycles; mechanism-only observables (beat
keys, channel access counts, LOB statistics) are empty.
"""

from __future__ import annotations

from typing import Optional

from ..sim.time_model import WallClockLedger
from .analytical import AnalyticalConfig, conventional_performance, estimate_performance
from .coemulation import (
    CoEmulationConfig,
    CoEmulationResult,
    DEFAULT_ROLLBACK_VARIABLES,
    resolve_engine_args,
)
from .engine import register_engine
from .modes import OperatingMode


@register_engine(
    "analytical",
    modes=(),
    description="closed-form performance model (the paper's own methodology)",
    requires_split=False,
)
class AnalyticalPseudoEngine:
    """Evaluate the analytical model as if it were a co-emulation run."""

    def __init__(
        self,
        partition=None,
        acc_hbm=None,
        config: Optional[CoEmulationConfig] = None,
    ) -> None:
        # The partition (or legacy half-bus pair) is accepted for factory
        # uniformity but never touched: the analytical model only sees
        # speeds, costs and depths.
        _, self.config = resolve_engine_args(partition, acc_hbm, config)

    def _analytical_config(self, mode: Optional[OperatingMode] = None) -> AnalyticalConfig:
        config = self.config
        accuracy = 1.0 if config.forced_accuracy is None else config.forced_accuracy
        # rollback_variables=None means "no budget limit" in the mechanism
        # (the checkpoint manager counts actual variables); the closed-form
        # model needs a count, so fall back to the paper's default.
        rollback_variables = (
            DEFAULT_ROLLBACK_VARIABLES
            if config.rollback_variables is None
            else config.rollback_variables
        )
        return AnalyticalConfig(
            mode=mode or config.mode,
            prediction_accuracy=max(accuracy, 1e-9),
            simulator_cycles_per_second=config.simulator_speed.cycles_per_second,
            accelerator_cycles_per_second=config.accelerator_speed.cycles_per_second,
            lob_depth=config.lob_depth,
            rollback_variables=rollback_variables,
            channel=config.channel_params,
            simulator_state_costs=config.simulator_state_costs,
            accelerator_state_costs=config.accelerator_state_costs,
        )

    def run(self) -> CoEmulationResult:
        config = self.config
        cycles = config.total_cycles
        if config.mode is OperatingMode.CONSERVATIVE:
            # AnalyticalConfig rejects CONSERVATIVE (it models the optimistic
            # transition); conventional_performance() only reads speeds and
            # the channel, so evaluate it under a stand-in optimistic mode.
            performance = conventional_performance(
                self._analytical_config(mode=OperatingMode.ALS)
            )
            channel_per_cycle = (1.0 / performance) - (
                1.0 / config.simulator_speed.cycles_per_second
                + 1.0 / config.accelerator_speed.cycles_per_second
            )
            per_cycle = {
                "simulator": 1.0 / config.simulator_speed.cycles_per_second,
                "accelerator": 1.0 / config.accelerator_speed.cycles_per_second,
                "state_store": 0.0,
                "state_restore": 0.0,
                "channel": channel_per_cycle,
                "other": 0.0,
            }
            prediction = {}
        else:
            estimate = estimate_performance(self._analytical_config())
            performance = estimate.performance
            per_cycle = {
                "simulator": estimate.t_sim,
                "accelerator": estimate.t_acc,
                "state_store": estimate.t_store,
                "state_restore": estimate.t_restore,
                "channel": estimate.t_channel,
                "other": 0.0,
            }
            prediction = {"accuracy": estimate.prediction_accuracy}

        ledger = WallClockLedger()
        ledger.commit_cycles(cycles)
        for category, seconds in per_cycle.items():
            ledger.charge(category, seconds * cycles)
        return CoEmulationResult(
            mode=config.mode,
            committed_cycles=cycles,
            per_cycle_times=per_cycle,
            total_modelled_time=ledger.total_seconds,
            performance_cycles_per_second=performance,
            channel={},
            transitions={},
            prediction=prediction,
            lob={},
            sim_beat_keys=[],
            acc_beat_keys=[],
            monitors_ok=True,
            wasted_leader_cycles=0,
            ledger=ledger,
        )
