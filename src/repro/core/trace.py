"""Periodic steady-state trace replay: a cycle-pattern cache for busy loops.

The batch-stepping engines (:mod:`repro.core.batch`) fast-forward only the
degenerate steady state -- full quiescence.  Dense streaming workloads never
quiesce: they run the scalar lock-step exchange cycle by cycle even though the
bus activity is perfectly periodic (streaming bursts are periodic by
construction).  This module adds the busy-loop analogue of quiescence
fast-forwarding:

1. **Search.**  After every scalar cycle the controller digests the
   architectural state that determines future *control* decisions -- arbiter
   grant, burst progress, data-phase shape, latched requests, each master's
   queue position and in-flight beats, each slave's wait countdown -- into a
   structural signature (:meth:`HalfBusModel.trace_signature`).  Data values
   (addresses, payload words) are deliberately excluded.
2. **Verify.**  When a signature recurs at a fixed period ``p``, the
   controller *re-executes the next period scalar* and accepts the candidate
   only if the end-of-period signature matches again and the two periods'
   committed bus-cycle records are structurally identical.  The verified
   period becomes a template: one per-cycle schedule (who is granted, which
   phase shape, which slave responds, the full request vector) plus a
   closed-form channel charge plan and per-master workload guards.
3. **Replay.**  Each further period first re-checks the signature and the
   guards (upcoming transactions must match the template's shapes, issue
   offsets and slave routes), then executes the period through the *real*
   component calls -- masters drive phases, slaves service data phases,
   both cores commit via :meth:`HalfBusModel.commit_lockstep` -- but skips
   everything the schedule already fixes: request collection, boundary-drive
   construction and merging, slave-side-host resolution, packet sizing, and
   per-cycle ledger/channel bookkeeping (charged per period through the
   bit-exact :func:`repro.sim.batchmath.repeat_add` helpers instead).

Because every value still flows through the real calls, replay is
bit-identical to the scalar engine on every modelled quantity -- beat
streams, ledger floats (accumulation order preserved), channel statistics,
monitor verdicts.  The equivalence suites enforce digest equality.

Any structural surprise mid-period falls back to scalar execution at a point
where the committed prefix is exact: the per-cycle checks only run against
idempotent or not-yet-mutating calls, and partially replayed cycles receive
exactly the charges the scalar path would have booked.  Every refusal and
bailout is counted by reason on :class:`TraceReplayStats`, surfaced as
``CoEmulationResult.trace_replay`` and in the CLI tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ahb.master import TrafficMaster
from ..ahb.signals import BusCycleRecord, DataPhaseResult, HBurst, HTrans
from ..ahb.slave import MemorySlave
from ..ahb.transaction import CompletedBeat
from ..sim.batchmath import repeat_add, repeat_add_pattern
from .batch import ConventionalBatchCoEmulation, OptimisticBatchCoEmulation
from .coemulation import CoEmulationResult
from .engine import register_engine
from .modes import OperatingMode
from .prediction import PredictionStats

#: Longest period the cache will consider.  Streaming bursts repeat every few
#: tens of cycles; anything longer is unlikely to recur often enough to pay
#: for verification, and the signature clamps issue deltas to this horizon.
PERIOD_CAP = 256

#: Shortest useful period (a 1-cycle "period" is the idle fixed point, which
#: the quiescence fast-forward already handles better).
MIN_PERIOD = 2

#: Bound on the signature->cycle search table (cleared, not evicted, when
#: full: periodic workloads re-populate it within one period).
_SEEN_LIMIT = 4096

#: Failed verifications before the controller gives up searching (aperiodic
#: workloads whose signatures collide occasionally).
_MAX_VERIFY_FAILURES = 8

#: Consecutive guard failures before an armed template is dropped and the
#: controller returns to searching.
_MAX_GUARD_FAILURES = 4

_OKAY_RESPONSE = DataPhaseResult.okay()


class TraceReplayError(RuntimeError):
    """A replayed cycle diverged at a point with no clean scalar fallback.

    Raised only on conditions the period guards prove impossible; reaching
    this is a bug in the guard set, not a workload property.
    """


class TraceReplayStats:
    """Counters surfaced as ``CoEmulationResult.trace_replay``."""

    __slots__ = ("enabled", "replayed_cycles", "verified_periods", "replay_hits", "bailouts")

    def __init__(self) -> None:
        self.enabled = True
        self.replayed_cycles = 0
        self.verified_periods = 0
        self.replay_hits = 0
        self.bailouts: Dict[str, int] = {}

    def record_bailout(self, reason: str) -> None:
        self.bailouts[reason] = self.bailouts.get(reason, 0) + 1

    def as_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "replayed_cycles": self.replayed_cycles,
            "verified_periods": self.verified_periods,
            "replay_hits": self.replay_hits,
            "bailouts": dict(self.bailouts),
        }


class _MasterGuard:
    """Per-master workload preconditions captured over the verified period.

    Only *schedule-shaping* properties are guarded here: transaction shapes
    (they drive the bus-request vector and burst lengths) and clamped issue
    offsets (they drive request timing).  Address routes are checked inside
    the replay loop instead -- pre-mutation, against the data phase the
    route actually matters for -- so the guards stay O(transactions), not
    O(beats).
    """

    __slots__ = ("issued", "lookahead_off", "lookahead_exists", "active_shape", "outstanding_shapes")

    def __init__(self, issued, lookahead_off, lookahead_exists, active_shape, outstanding_shapes):
        #: Per transaction issued during the period: (shape, clamped offset).
        self.issued = issued
        #: Clamped issue offset of the first transaction *not* issued during
        #: the period (``period`` means "not ready within the period").
        self.lookahead_off = lookahead_off
        self.lookahead_exists = lookahead_exists
        #: Shape of the burst active at period start (None when idle).
        self.active_shape = active_shape
        #: Shapes of the transactions owning each outstanding data beat.
        self.outstanding_shapes = outstanding_shapes


class _ChargePlan:
    """A period's channel legs with the closed-form aggregation precomputed.

    Mirrors ``CoEmulationEngineBase._apply_charge_plan`` exactly, but hoists
    the per-call leg resolution and aggregation out of the hot path: the
    plan is applied once per replayed period, and nothing it depends on
    (channel objects, per-leg word counts, timing params) changes after
    template construction.
    """

    __slots__ = ("legs", "pattern", "per_channel")

    def __init__(self, engine, legs) -> None:
        #: (src_host, dst_host, words, purpose) -- scalar-order fallback
        #: for partially replayed periods.
        self.legs = legs
        self.pattern: List[float] = []
        per_channel: Dict[int, list] = {}
        order: List[int] = []
        for src, dst, words, purpose in legs:
            channel, direction = engine._channels[(src.domain, dst.domain)]
            access_time = channel.params.access_time(direction, words)
            self.pattern.append(access_time)
            info = per_channel.get(id(channel))
            if info is None:
                info = per_channel[id(channel)] = [channel, [], 0, 0, {}, {}, {}]
                order.append(id(channel))
            info[1].append(access_time)
            info[2] += 1
            info[3] += words
            info[4][direction] = info[4].get(direction, 0) + 1
            info[5][direction] = info[5].get(direction, 0) + words
            info[6][purpose] = info[6].get(purpose, 0) + 1
        self.per_channel = [per_channel[key] for key in order]

    def apply(self, engine) -> None:
        """Book one period's channel charges (bit-exact scalar order)."""
        buckets = engine.ledger.buckets
        buckets["channel"] = repeat_add_pattern(buckets["channel"], self.pattern, 1)
        for channel, times, n_legs, n_words, dir_accesses, dir_words, purposes in self.per_channel:
            stats = channel.stats
            stats.accesses += n_legs
            stats.words += n_words
            stats.total_time = repeat_add_pattern(stats.total_time, times, 1)
            for direction, n in dir_accesses.items():
                stats.per_direction_accesses[direction] += n
            for direction, w in dir_words.items():
                stats.per_direction_words[direction] += w
            per_purpose = stats.per_purpose_accesses
            for purpose, n in purposes.items():
                per_purpose[purpose] = per_purpose.get(purpose, 0) + n
            layers = channel.layers
            layer_times = channel.layer_times
            layer_times.api = repeat_add(layer_times.api, layers.api_overhead, n_legs)
            layer_times.driver = repeat_add(layer_times.driver, layers.driver_overhead, n_legs)
            layer_times.physical = repeat_add(
                layer_times.physical, layers.physical_overhead, n_legs
            )


class _PeriodTemplate:
    """One verified period: the schedule, charges and guards to replay it."""

    __slots__ = ("period", "start_signature", "cycles", "plan", "guards")

    def __init__(self, period, start_signature, cycles, plan, guards):
        self.period = period
        self.start_signature = start_signature
        #: Per cycle: (grant, phase_active, htrans, dp_active, dp_owner,
        #: dp_write, dp_slave, dp_slave_id, hwdata_present, resp_hready,
        #: resp_hresp, resp_has_rdata, requests).
        self.cycles = cycles
        #: The period's 2p channel legs, pre-aggregated.
        self.plan = plan
        self.guards = guards


def _txn_shape(txn) -> tuple:
    return (txn.write, txn.hburst, txn.hsize, txn.n_beats)


def _phases_structurally_equal(a, b) -> bool:
    """Shape equality for address phases (addresses excluded on purpose)."""
    if a is None or b is None:
        return a is None and b is None
    if a.is_active != b.is_active:
        return False
    if not a.is_active:
        return True
    return (
        a.master_id == b.master_id
        and a.htrans is b.htrans
        and a.hwrite == b.hwrite
        and a.hburst is b.hburst
        and a.hsize is b.hsize
    )


def _records_structurally_equal(a: BusCycleRecord, b: BusCycleRecord) -> bool:
    return (
        a.granted_master == b.granted_master
        and _phases_structurally_equal(a.address_phase, b.address_phase)
        and _phases_structurally_equal(a.data_phase, b.data_phase)
        and (a.hwdata is None) == (b.hwdata is None)
        and a.response.hready == b.response.hready
        and a.response.hresp is b.response.hresp
        and (a.response.hrdata is None) == (b.response.hrdata is None)
        and a.requests == b.requests
    )


class PeriodicTraceController:
    """Detects, verifies and replays periodic steady states for one engine.

    Attached to a trace engine as ``engine.replay``; the engine's run loop
    calls :meth:`observe` after every scalar conservative cycle,
    :meth:`try_replay` when a template is armed, and
    :meth:`note_discontinuity` after quiescence fast-forwards.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.stats = TraceReplayStats()
        self.state = "search"
        self.template: Optional[_PeriodTemplate] = None
        self._seen: Dict[tuple, int] = {}
        self._verify: Optional[dict] = None
        self._verify_failures = 0
        self._guard_failures = 0
        self._horizon_noted = False
        hosts = engine._host_list
        self._master_of = {
            mid: host.hbm.local_masters[mid] for host in hosts for mid in host.hbm.local_masters
        }
        #: (cycle, signature) memo: the end-of-period signature check is the
        #: next period's start check, so consecutive replays digest once.
        self._sig_memo: Optional[Tuple[int, tuple]] = None
        reason = self._probe_envelope()
        if reason is not None:
            self.disable(reason)

    # -- lifecycle -------------------------------------------------------------
    def disable(self, reason: str) -> None:
        self.state = "disabled"
        self.stats.enabled = False
        self.stats.record_bailout(reason)
        self._seen.clear()
        self._verify = None
        self.template = None

    def _probe_envelope(self) -> Optional[str]:
        """One-time structural check: can this topology be trace-replayed?

        Returns the refusal reason, or ``None`` when replay is possible.
        The conditions are all construction-time constants.
        """
        engine = self.engine
        if getattr(engine, "observe_during_conservative", True):
            # Conservative cycles train the predictors per cycle; replaying
            # them would have to re-derive per-cycle predictor updates, which
            # defeats the point.  The ALS trace engine stays honest and runs
            # its conservative stretches scalar.
            return "predictor_training"
        if len(engine._host_list) != 2:
            return "topology"
        if engine._fault_links:
            return "channel_faults"
        if engine.config.keep_channel_log:
            return "channel_log"
        for host in engine._host_list:
            hbm = host.hbm
            if hbm._tick_active:
                return "ticking_components"
            if hbm.trace_signature(0, PERIOD_CAP) is None:
                return "unsupported_component"
        return None

    def note_discontinuity(self) -> None:
        """The engine advanced time outside the scalar loop (idle
        fast-forward): every remembered cycle number is stale."""
        if self.state == "disabled":
            return
        self._seen.clear()
        self._verify = None
        self.template = None
        self._sig_memo = None
        self.state = "search"

    # -- signature -------------------------------------------------------------
    def signature(self, cycle: int) -> tuple:
        """Full structural state digest at ``cycle`` (compared by equality,
        never by hash alone)."""
        hosts = self.engine._host_list
        core = hosts[0].hbm.core
        dp = core.data_phase
        dp_sig = (
            None
            if dp is None
            else (dp.master_id, dp.htrans, dp.hwrite, dp.hburst, dp.hsize)
        )
        core_sig = (
            core.arbiter.current_grant,
            core._burst_beats_done,
            core.data_phase_first_cycle,
            dp_sig,
            tuple(sorted(core.latched_requests.items())),
        )
        return (
            core_sig,
            hosts[0].hbm.trace_signature(cycle, PERIOD_CAP),
            hosts[1].hbm.trace_signature(cycle, PERIOD_CAP),
        )

    # -- search / verify -------------------------------------------------------
    def observe(self) -> None:
        """Digest the state after one committed scalar cycle."""
        state = self.state
        if state == "disabled":
            return
        cycle = self.engine._host_list[0].current_cycle
        sig = self.signature(cycle)
        if state == "verify":
            verify = self._verify
            verify["remaining"] -= 1
            if verify["remaining"] == 0:
                self._finish_verify(cycle, sig)
            return
        if state == "replay":
            # A scalar cycle ran with a template armed (guard failure or the
            # run tail); once the structure drifts off the template's start
            # state, resume searching.
            if sig == self.template.start_signature:
                return
            self.state = "search"
        seen = self._seen
        prev = seen.get(sig)
        if prev is not None:
            period = cycle - prev
            if MIN_PERIOD <= period <= PERIOD_CAP and self._begin_verify(cycle, period, sig):
                seen[sig] = cycle
                return
        if len(seen) >= _SEEN_LIMIT:
            seen.clear()
        seen[sig] = cycle

    def _begin_verify(self, cycle: int, period: int, sig: tuple) -> bool:
        engine = self.engine
        records = engine._host_list[0].hbm.records
        if len(records) < period:
            self.stats.record_bailout("records_unavailable")
            return False
        base = list(records)[-period:]
        if base[0].cycle != cycle - period or base[-1].cycle != cycle - 1:
            self.stats.record_bailout("records_unavailable")
            return False
        masters = {}
        for host in engine._host_list:
            for mid, master in host.hbm.local_masters.items():
                if not isinstance(master, TrafficMaster):
                    continue
                active_shape = None
                if master._active_txn_index is not None and master._tracker is not None:
                    active_shape = _txn_shape(master.queue[master._active_txn_index])
                outstanding = tuple(
                    _txn_shape(master.queue[beat.transaction_index])
                    for beat in master._outstanding
                )
                masters[mid] = {
                    "start_next": master._next_txn_index,
                    "active_shape": active_shape,
                    "outstanding": outstanding,
                }
        self._verify = {
            "start_cycle": cycle,
            "period": period,
            "signature": sig,
            "remaining": period,
            "base_records": base,
            "masters": masters,
            # The replay loop applies precomputed monitor state transitions
            # instead of re-running the rule bodies, which is only valid for
            # periods the monitors judged violation-free.
            "violations": tuple(
                len(host.hbm.monitor.violations) if host.hbm.monitor is not None else 0
                for host in engine._host_list
            ),
        }
        self.state = "verify"
        return True

    def _verify_failed(self, reason: str) -> None:
        self.stats.record_bailout(reason)
        self._verify_failures += 1
        if self._verify_failures >= _MAX_VERIFY_FAILURES:
            self.disable("verify_exhausted")

    def _finish_verify(self, cycle: int, sig: tuple) -> None:
        verify = self._verify
        self._verify = None
        self.state = "search"
        period = verify["period"]
        if sig != verify["signature"]:
            self._verify_failed("verify_mismatch")
            return
        records = self.engine._host_list[0].hbm.records
        if len(records) < period:
            self._verify_failed("records_unavailable")
            return
        fresh = list(records)[-period:]
        if fresh[0].cycle != cycle - period:
            self._verify_failed("records_unavailable")
            return
        for a, b in zip(verify["base_records"], fresh):
            if not _records_structurally_equal(a, b):
                self._verify_failed("verify_mismatch")
                return
        violations = tuple(
            len(host.hbm.monitor.violations) if host.hbm.monitor is not None else 0
            for host in self.engine._host_list
        )
        if violations != verify["violations"]:
            # A period that trips the protocol monitor is not a steady state
            # worth caching (and the replay loop skips the rule bodies).
            self._verify_failed("protocol_violation")
            return
        template = self._build_template(verify, fresh)
        if template is None:
            return  # reason already recorded
        self.template = template
        self.state = "replay"
        self.stats.verified_periods += 1
        self._verify_failures = 0
        self._guard_failures = 0

    # -- template construction -------------------------------------------------
    def _build_template(self, verify: dict, records: List[BusCycleRecord]):
        engine = self.engine
        hosts = engine._host_list
        slave_ids_of = engine._slave_ids_of
        master_home = engine._master_home
        packetizer = engine.packetizer
        start_cycle = verify["start_cycle"]
        period = verify["period"]
        cycles = []
        plan = []
        # Arbitration and monitor bookkeeping are deterministic functions of
        # the template's control schedule (grants, phase shapes, request
        # vectors -- never data values), so their per-cycle outcomes are
        # resolved here once and the replay loop merely applies them to both
        # lock-step cores.  The live core state *is* the period-start state:
        # _finish_verify only reaches this point after the end-of-period
        # signature matched the start-of-period one.
        core = hosts[0].hbm.core
        bbd = core._burst_beats_done
        n_records = len(records)
        for offset, record in enumerate(records):
            dp = record.data_phase
            second = None
            slave = None
            slave_id = None
            if dp is not None:
                slave_id = hosts[0].hbm.decoder.select(dp.haddr)
                for host in hosts:  # mirrors _slave_side_host (topology order)
                    if slave_id in slave_ids_of[host.domain]:
                        second = host
                        break
                if second is not None:
                    slave = second.hbm.local_slaves.get(slave_id)
                if slave is not None and not isinstance(slave, MemorySlave):
                    # Default-slave ERROR sequencing (and any exotic slave)
                    # stays scalar.
                    self._verify_failed("unsupported_slave")
                    return None
            if second is None:
                second = hosts[0]
            first = hosts[1] if second is hosts[0] else hosts[0]
            grant_home = master_home[record.granted_master]
            owner_home = master_home[dp.master_id] if dp is not None else None
            hwdata_present = record.hwdata is not None
            drive_words = 1
            if grant_home is first:
                drive_words += 2
            if hwdata_present and owner_home is first:
                drive_words += 1
            reply_words = 1
            if grant_home is second:
                reply_words += 2
            if hwdata_present and owner_home is second:
                reply_words += 1
            reply_words += packetizer.response_word_count(record.response)
            plan.append((first, second, drive_words, "conservative_drive"))
            plan.append((second, first, reply_words, "conservative_reply"))
            phase = record.address_phase
            phase_active = phase.is_active
            hready = record.response.hready
            # mon_kind: the BURST-tracking state transition of a clean cycle
            # (0: none, 1: NONSEQ starts a burst, 2: SEQ extends it).
            mon_kind = 0
            # arb_step: (next grant, grant changed, parked) when this cycle
            # re-arbitrates, None when a fixed-length burst holds the grant.
            arb_step = None
            if hready:
                if phase_active:
                    if phase.htrans is HTrans.NONSEQ:
                        bbd = 1
                        mon_kind = 1
                    elif phase.htrans is HTrans.SEQ:
                        bbd += 1
                        mon_kind = 2
                    # Mirrors AhbBusCore._may_rearbitrate over the schedule.
                    fixed_beats = phase.hburst.beats
                    rearb = (
                        (fixed_beats is not None and bbd >= fixed_beats)
                        or phase.hburst is HBurst.SINGLE
                        or (
                            phase.hburst is HBurst.INCR
                            and not record.requests.get(phase.master_id, False)
                        )
                    )
                else:
                    rearb = True
                if rearb:
                    next_grant = (
                        records[offset + 1].granted_master
                        if offset + 1 < n_records
                        # The verified period maps the state onto itself, so
                        # the last arbitration lands on the period's first
                        # grant again.
                        else records[0].granted_master
                    )
                    arb_step = (
                        next_grant,
                        next_grant != record.granted_master,
                        not any(record.requests.values()),
                    )
            cycles.append(
                (
                    record.granted_master,
                    phase_active,
                    phase.htrans,
                    dp is not None,
                    None if dp is None else dp.master_id,
                    False if dp is None else dp.hwrite,
                    slave,
                    slave_id,
                    hwdata_present,
                    hready,
                    record.response.hresp,
                    record.response.hrdata is not None,
                    record.requests,
                    arb_step,
                    mon_kind,
                )
            )
        guards = {}
        for mid, captured in verify["masters"].items():
            master = self._master_of[mid]
            start_next = captured["start_next"]
            n_issued = master._next_txn_index - start_next
            issued = []
            for j in range(n_issued):
                index = start_next + j
                txn = master.queue[index]
                offset = txn.issue_cycle - start_cycle
                if offset < 0:
                    offset = 0
                elif offset > period:
                    offset = period
                issued.append((_txn_shape(txn), offset))
            lookahead_index = start_next + n_issued
            lookahead_exists = lookahead_index < len(master.queue)
            if lookahead_exists:
                lookahead_off = master.queue[lookahead_index].issue_cycle - start_cycle
                if lookahead_off < 0:
                    lookahead_off = 0
                elif lookahead_off > period:
                    lookahead_off = period
            else:
                lookahead_off = period
            guards[mid] = _MasterGuard(
                tuple(issued),
                lookahead_off,
                lookahead_exists,
                captured["active_shape"],
                captured["outstanding"],
            )
        return _PeriodTemplate(
            period, verify["signature"], cycles, _ChargePlan(engine, plan), guards
        )

    # -- replay ----------------------------------------------------------------
    def _check_guards(self, template: _PeriodTemplate, base: int) -> Optional[str]:
        """Do the upcoming transactions fit the template?  The request vector
        each cycle depends only on in-flight bursts plus the readiness of the
        *first* pending transaction, so checking every transaction the
        template issues plus one lookahead pins the whole period's schedule.
        Returns the bailout reason or ``None``.
        """
        engine = self.engine
        period = template.period
        stop = engine.config.stop_when_workload_done
        for mid, guard in template.guards.items():
            master = self._master_of[mid]
            queue = master.queue
            next_index = master._next_txn_index
            for j, (shape, offset) in enumerate(guard.issued):
                index = next_index + j
                if index >= len(queue):
                    return "workload_tail"
                txn = queue[index]
                if _txn_shape(txn) != shape:
                    return "txn_shape"
                delta = txn.issue_cycle - base
                if delta < 0:
                    delta = 0
                elif delta > period:
                    delta = period
                if delta != offset:
                    return "issue_offset"
            lookahead_index = next_index + len(guard.issued)
            exists = lookahead_index < len(queue)
            if stop and exists != guard.lookahead_exists:
                # Replaying would change *when* the workload drains.
                return "drain_mismatch"
            if exists:
                delta = queue[lookahead_index].issue_cycle - base
                if delta < 0:
                    delta = 0
                elif delta > period:
                    delta = period
            else:
                delta = period
            if delta != guard.lookahead_off:
                return "issue_offset"
            if guard.active_shape is not None:
                index = master._active_txn_index
                if index is None:
                    return "data_phase"
                if _txn_shape(queue[index]) != guard.active_shape:
                    return "txn_shape"
            outstanding = master._outstanding
            if len(outstanding) != len(guard.outstanding_shapes):
                return "data_phase"
            for beat, shape in zip(outstanding, guard.outstanding_shapes):
                if _txn_shape(queue[beat.transaction_index]) != shape:
                    return "txn_shape"
        return None

    def try_replay(self) -> bool:
        """Attempt to commit one full template period.  Returns True when at
        least one cycle was committed (the engine loop then re-enters)."""
        template = self.template
        engine = self.engine
        stats = self.stats
        period = template.period
        if engine.ledger.committed_cycles + period > engine.config.total_cycles:
            # The run tail is shorter than one period: finish scalar.
            if not self._horizon_noted:
                stats.record_bailout("horizon")
                self._horizon_noted = True
            return False
        base = engine._host_list[0].current_cycle
        memo = self._sig_memo
        start_sig = memo[1] if memo is not None and memo[0] == base else self.signature(base)
        if start_sig != template.start_signature:
            stats.record_bailout("resync")
            self.state = "search"
            return False
        reason = self._check_guards(template, base)
        if reason is not None:
            stats.record_bailout(reason)
            self._guard_failures += 1
            if self._guard_failures >= _MAX_GUARD_FAILURES:
                self.state = "search"
                self._guard_failures = 0
            return False
        committed = self._replay_period(template, base)
        if committed == 0:
            return False
        stats.replayed_cycles += committed
        if committed < period:
            self.state = "search"
            return True
        stats.replay_hits += 1
        self._guard_failures = 0
        end_sig = self.signature(base + period)
        self._sig_memo = (base + period, end_sig)
        if end_sig != template.start_signature:
            # The period no longer maps the state onto itself (e.g. the
            # workload tail starts next period): committed cycles are exact
            # (every value came from real calls); just stop replaying.
            stats.record_bailout("period_signature")
            self.state = "search"
        return True

    def _replay_period(self, template: _PeriodTemplate, base: int) -> int:
        """Execute template cycles through the real component calls.

        Returns the number of cycles committed (< period on a structural
        bailout; the committed prefix is exact and fully charged).

        The per-domain commit (:meth:`HalfBusModel.commit_lockstep`) is
        inlined here with the work the two lock-step replicas would duplicate
        done once and applied to both sides: the template supplies the
        arbitration outcome (``arb_step``) and the monitor's BURST-tracking
        transition (``mon_kind``), both deterministic functions of the
        verified control schedule, so neither the arbitration policy nor the
        monitor rule bodies re-run.  Skipping the monitor is sound because
        templates are only built from periods the monitors passed clean
        (``protocol_violation`` verify check) and every replayed cycle is
        structurally identical to a verified one; the equivalence suites
        compare full digests -- monitor verdicts included -- against the
        scalar engine.
        """
        engine = self.engine
        host_a, host_b = engine._host_list
        hbm_a = host_a.hbm
        hbm_b = host_b.hbm
        core_a = hbm_a.core
        core_b = hbm_b.core
        arb_a = core_a.arbiter
        arb_b = core_b.arbiter
        astats_a = arb_a.stats
        astats_b = arb_b.stats
        mon_a = hbm_a.monitor
        mon_b = hbm_b.monitor
        have_monitors = mon_a is not None and mon_b is not None
        records_a = hbm_a.records.append
        records_b = hbm_b.records.append
        record_beat_a = hbm_a.recorder.record_beat
        record_beat_b = hbm_b.recorder.record_beat
        select = core_a.decoder.select
        master_of = self._master_of
        stats = self.stats
        _NONSEQ = HTrans.NONSEQ
        _SEQ = HTrans.SEQ
        committed = 0
        for offset, entry in enumerate(template.cycles):
            (
                grant,
                phase_active,
                htrans,
                dp_active,
                dp_owner,
                dp_write,
                dp_slave,
                dp_slave_id,
                hwdata_present,
                resp_hready,
                resp_hresp,
                resp_has_rdata,
                requests,
                arb_step,
                mon_kind,
            ) = entry
            cycle = base + offset
            # Pre-mutation checks: bailing here leaves the cycle to the
            # scalar path untouched.  The route check (decoder select) makes
            # the template's charge plan and slave selection exact for every
            # committed cycle -- addresses are otherwise unconstrained.
            if arb_a.current_grant != grant:
                stats.record_bailout("grant")
                break
            dp = core_a.data_phase
            if (dp is not None and dp.is_active) != dp_active or (
                dp_active
                and (
                    dp.master_id != dp_owner
                    or dp.hwrite != dp_write
                    or select(dp.haddr) != dp_slave_id
                )
            ):
                stats.record_bailout("data_phase")
                break
            phase = master_of[grant].drive_address_phase(cycle, True)
            if phase.is_active != phase_active or (
                phase_active and phase.htrans is not htrans
            ):
                # Safe bail: a repeated same-cycle drive_address_phase call
                # is idempotent, so the scalar retry sees identical state.
                stats.record_bailout("address_phase")
                break
            hwdata = master_of[dp_owner].drive_hwdata(dp) if hwdata_present else None
            if dp_slave is not None:
                response = dp_slave.data_phase(
                    cycle, dp, hwdata, core_a.data_phase_first_cycle
                )
                if (
                    response.hready != resp_hready
                    or response.hresp is not resp_hresp
                    or (response.hrdata is not None) != resp_has_rdata
                ):
                    # The slave call already mutated its wait/stat state; the
                    # guards prove this unreachable for supported slaves.
                    raise TraceReplayError(
                        f"trace replay: slave response diverged from the verified "
                        f"template at cycle {cycle} (period offset {offset})"
                    )
            else:
                response = _OKAY_RESPONSE
            shared_requests = dict(requests)
            record = BusCycleRecord(
                cycle=cycle,
                granted_master=grant,
                address_phase=phase,
                data_phase=dp,
                hwdata=hwdata,
                response=response,
                requests=shared_requests,
            )
            # -- inlined lock-step commit, applied to both domains ---------
            # Callback order matches commit_lockstep (data-phase completion
            # before address acceptance); each fires exactly once because
            # every master is local to exactly one half bus.
            if resp_hready:
                if dp_active:
                    master_of[dp_owner].on_data_phase_done(cycle, dp, response)
                if phase_active:
                    master_of[grant].on_address_accepted(cycle, phase)
                    if htrans is _NONSEQ:
                        core_a._burst_beats_done = core_b._burst_beats_done = 1
                    elif htrans is _SEQ:
                        core_a._burst_beats_done += 1
                        core_b._burst_beats_done += 1
                    core_a.data_phase = core_b.data_phase = phase
                else:
                    core_a.data_phase = core_b.data_phase = None
                core_a.data_phase_first_cycle = core_b.data_phase_first_cycle = True
                if arb_step is not None:
                    next_grant, changed, parked = arb_step
                    arb_a.current_grant = arb_b.current_grant = next_grant
                    astats_a.decisions += 1
                    astats_b.decisions += 1
                    if changed:
                        astats_a.grant_changes += 1
                        astats_b.grant_changes += 1
                    if parked:
                        astats_a.cycles_parked += 1
                        astats_b.cycles_parked += 1
                if dp_active:
                    beat = CompletedBeat(
                        cycle=cycle,
                        master_id=dp_owner,
                        address=dp.haddr,
                        write=dp_write,
                        data=hwdata if dp_write else response.hrdata,
                        hresp=response.hresp,
                        hburst=dp.hburst,
                        hsize=dp.hsize,
                        first_beat=dp.htrans is _NONSEQ,
                    )
                    record_beat_a(beat)
                    record_beat_b(beat)
            else:
                core_a.data_phase_first_cycle = core_b.data_phase_first_cycle = False
            core_a.latched_requests = core_b.latched_requests = shared_requests
            core_a._info_cache = core_b._info_cache = None
            hbm_a._needed_cache = hbm_b._needed_cache = None
            records_a(record)
            records_b(record)
            hbm_a._records_committed += 1
            hbm_b._records_committed += 1
            if have_monitors:
                mon_a._previous = mon_b._previous = record
                if mon_kind == 1:
                    mon_a._burst_start = mon_a._last_accepted = phase
                    mon_b._burst_start = mon_b._last_accepted = phase
                elif mon_kind == 2:
                    mon_a._last_accepted = phase
                    mon_b._last_accepted = phase
            committed += 1
        if committed == 0:
            return 0
        # Channel charges: closed form for a full period, per-leg scalar
        # charging for a partial prefix (identical arithmetic either way).
        if committed == template.period:
            template.plan.apply(engine)
        else:
            for leg_index in range(2 * committed):
                src, dst, words, purpose = template.plan.legs[leg_index]
                engine._charge_channel(src, dst, words, purpose, cycle=base + (leg_index >> 1))
        # Execution time and clocks: the scalar path books one float add per
        # host per cycle; repeat_add reproduces that fold bit-exactly.
        for host in engine._host_list:
            clock = host.clock
            clock.cycle += committed
            clock.total_executed += committed
            execution = host.execution
            bucket = execution.ledger.buckets
            bucket[execution.category] = repeat_add(
                bucket[execution.category], execution._seconds_per_cycle, committed
            )
            execution.cycles_charged += committed
        engine.ledger.commit_cycles(committed)
        engine.transitions.record_conservative_cycle(committed)
        return committed


@register_engine(
    "conventional_trace",
    modes=(),
    description="lock-step engine with periodic steady-state trace replay",
)
class ConventionalTraceCoEmulation(ConventionalBatchCoEmulation):
    """Conventional batch engine plus the periodic trace cache.

    Identical results to ``conventional`` / ``conventional_batch`` on every
    modelled quantity; committed periodic stretches are replayed from a
    verified template instead of re-deriving the schedule every cycle.
    """

    def __init__(self, partition, acc_hbm=None, config=None) -> None:
        super().__init__(partition, acc_hbm, config)
        self.replay = PeriodicTraceController(self)

    def run(self) -> CoEmulationResult:
        total = self.config.total_cycles
        stop = self.config.stop_when_workload_done
        ledger = self.ledger
        replay = self.replay
        while ledger.committed_cycles < total:
            self._safe_point()
            if not (stop and self._workload_done()):
                run = self._idle_run_length(total - ledger.committed_cycles)
                if run > 1:
                    self._fast_forward_idle_cycles(run)
                    replay.note_discontinuity()
                    continue
                if replay.state == "replay" and replay.try_replay():
                    if stop and self._workload_done():
                        break
                    continue
            self.run_conservative_cycle()
            replay.observe()
            if stop and self._workload_done():
                break
        return self._build_result(
            OperatingMode.CONSERVATIVE, prediction=PredictionStats(), lob={}
        )


@register_engine(
    "als_trace",
    modes=(),
    description="ALS batch engine with the trace-replay plumbing (replay "
    "stays disabled while conservative cycles train the predictors)",
)
class OptimisticTraceCoEmulation(OptimisticBatchCoEmulation):
    """ALS batch engine carrying the trace controller for observability.

    Conservative cycles under ALS train the boundary predictors every cycle,
    so replaying them from a template would skip exactly the bookkeeping the
    scheme depends on; the controller detects this at construction and
    records a single ``predictor_training`` bailout.  Throughput therefore
    matches ``als_batch``; the value of this registration is the uniform
    ``trace_replay`` counters in sweeps that mix engines.
    """

    def __init__(self, partition, acc_hbm=None, config=None, trace_paths=False) -> None:
        super().__init__(partition, acc_hbm, config, trace_paths)
        self.replay = PeriodicTraceController(self)
