"""Prediction of the lagger's signal values.

During run-ahead the leader must supply, for every cycle, the values it would
normally read from the lagger over the channel.  The paper classifies those
values (Section 3, Figure 1):

* **bus request signals** of lagger-side masters: individually non-
  predictable, but the *arbitration result* they feed changes only
  occasionally, so the request vector is predicted from its previous value;
* **address / control** of a lagger-side active master: predictable, because
  within a burst the address increments (or wraps) linearly and the control
  signals stay constant -- predicted by extrapolating the observed burst;
* **responses** of a lagger-side active slave: predictable with a simple
  producer-consumer model of the slave's readiness;
* **read / write data**: non-predictable.  If the leader needs lagger-side
  data it cannot proceed optimistically and must synchronise (this is why
  the operating mode should put the data *source* in the leader domain);
* **interrupts** and other non-bus boundary signals: treated like MSABS
  elements, predicted from their previous value.

The :class:`LaggerPredictor` combines these per-class predictors.  For the
paper's accuracy-sweep experiments a :class:`ForcedAccuracyModel` can inject
prediction failures at a target rate; injected failures never corrupt
functional state (the rollback machinery repairs them like any real
misprediction), they only add the corresponding timing penalty.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..ahb.burst import next_beat_address
from ..ahb.half_bus import BoundaryDrive, NeededFields
from ..ahb.signals import AddressPhase, DataPhaseResult, HTrans
from ..sim.component import ClockedComponent


#: Shared empty maps for predictions that carry no requests / interrupts
#: (treated as immutable by every BoundaryDrive consumer).
_EMPTY_REQUESTS: Dict[int, bool] = {}
_EMPTY_INTERRUPTS: Dict[str, bool] = {}


@dataclass(slots=True)
class PredictionRecord:
    """The prediction made for one run-ahead cycle.

    Only the fields the leader actually needed that cycle are populated; the
    lagger checks exactly those fields against its real values.
    """

    cycle: int
    requests: Optional[Dict[int, bool]] = None
    address_phase: Optional[AddressPhase] = None
    hwdata: Optional[int] = None
    response: Optional[DataPhaseResult] = None
    interrupts: Optional[Dict[str, bool]] = None
    forced_failure: bool = False

    def check(
        self,
        actual_drive: BoundaryDrive,
        actual_response: Optional[DataPhaseResult],
    ) -> tuple[bool, str]:
        """Compare this prediction against the lagger's actual values.

        Returns ``(matches, reason)`` where ``reason`` describes the first
        mismatching field (empty string on success).
        """
        if self.forced_failure:
            return False, "injected prediction failure"
        if self.requests is not None:
            for master_id, predicted in self.requests.items():
                actual = actual_drive.requests.get(master_id, False)
                if actual != predicted:
                    return False, (
                        f"bus request of master {master_id}: predicted {predicted}, "
                        f"actual {actual}"
                    )
        if self.interrupts is not None:
            for name, predicted in self.interrupts.items():
                actual = actual_drive.interrupts.get(name, False)
                if actual != predicted:
                    return False, f"interrupt {name!r}: predicted {predicted}, actual {actual}"
        if self.address_phase is not None:
            actual_phase = actual_drive.address_phase
            if actual_phase is None:
                if self.address_phase.is_active:
                    return False, "predicted an active address phase but the lagger drove none"
            elif not _address_phases_equal(self.address_phase, actual_phase):
                return False, (
                    f"address phase: predicted {self.address_phase.haddr:#x}/"
                    f"{self.address_phase.htrans.name}, actual {actual_phase.haddr:#x}/"
                    f"{actual_phase.htrans.name}"
                )
        if self.hwdata is not None:
            if actual_drive.hwdata != self.hwdata:
                return False, (
                    f"write data: predicted {self.hwdata:#x}, actual "
                    f"{actual_drive.hwdata if actual_drive.hwdata is not None else 'none'}"
                )
        if self.response is not None:
            if actual_response is None:
                return False, "predicted a slave response but the lagger produced none"
            if not _responses_equal(self.response, actual_response):
                return False, (
                    f"slave response: predicted ready={self.response.hready}/"
                    f"{self.response.hresp.name}, actual ready={actual_response.hready}/"
                    f"{actual_response.hresp.name}"
                )
        return True, ""

    def as_boundary_values(
        self, cycle: int
    ) -> tuple[BoundaryDrive, Optional[DataPhaseResult]]:
        """Convert the prediction into the remote-value containers the
        half bus model consumes.

        The request/interrupt maps are shared by reference: ``predict()``
        builds fresh dicts that are owned by this record, and every consumer
        of a :class:`BoundaryDrive` treats its maps as read-only (the merge
        step copies before mutating).  This keeps the run-ahead hot path from
        re-copying two dicts per predicted cycle.
        """
        drive = BoundaryDrive(
            cycle=cycle,
            requests=self.requests if self.requests is not None else _EMPTY_REQUESTS,
            address_phase=self.address_phase,
            hwdata=self.hwdata,
            interrupts=self.interrupts if self.interrupts is not None else _EMPTY_INTERRUPTS,
        )
        return drive, self.response


def _address_phases_equal(a: AddressPhase, b: AddressPhase) -> bool:
    # Two inactive phases (IDLE / BUSY) are interchangeable regardless of the
    # stale address and control values they carry.
    if not a.is_active and not b.is_active:
        return True
    return (
        a.haddr == b.haddr
        and a.htrans == b.htrans
        and a.hwrite == b.hwrite
        and a.hsize == b.hsize
        and a.hburst == b.hburst
        and a.master_id == b.master_id
    )


def _responses_equal(a: DataPhaseResult, b: DataPhaseResult) -> bool:
    if a.hready != b.hready or a.hresp != b.hresp:
        return False
    # Read data is compared only when the prediction claims to know it (the
    # standard predictors never predict read data -- it is non-predictable).
    if a.hrdata is not None and a.hrdata != b.hrdata:
        return False
    return True


@dataclass
class PredictionStats:
    """Prediction accuracy accounting."""

    predictions_made: int = 0
    predictions_checked: int = 0
    predictions_correct: int = 0
    real_failures: int = 0
    injected_failures: int = 0
    unpredictable_cycles: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of checked predictions that were correct."""
        if self.predictions_checked == 0:
            return 1.0
        return self.predictions_correct / self.predictions_checked

    def as_dict(self) -> dict:
        return {
            "predictions_made": self.predictions_made,
            "predictions_checked": self.predictions_checked,
            "predictions_correct": self.predictions_correct,
            "real_failures": self.real_failures,
            "injected_failures": self.injected_failures,
            "unpredictable_cycles": self.unpredictable_cycles,
            "accuracy": self.accuracy,
        }


class ForcedAccuracyModel:
    """Injects prediction failures so a target accuracy can be swept.

    Each prediction is independently marked as a forced failure with
    probability ``1 - accuracy``, using a dedicated seeded RNG so runs are
    reproducible.  ``accuracy=1.0`` disables injection entirely.
    """

    def __init__(self, accuracy: float, seed: int = 2005) -> None:
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be within [0, 1], got {accuracy}")
        self.accuracy = accuracy
        self._rng = random.Random(seed)

    def should_fail(self) -> bool:
        if self.accuracy >= 1.0:
            return False
        return self._rng.random() >= self.accuracy


class LaggerPredictor(ClockedComponent):
    """Predicts the lagger domain's boundary values for the leader.

    The predictor's internal state (last observed request vector, burst
    tracking of the lagger-side active master, per-slave readiness model,
    last interrupt values) is itself rollback state: it lives in the leader
    domain and is captured / restored along with the leader's checkpoint.
    """

    #: Fast-copy snapshot protocol: owned payload (fresh dicts, scalars and a
    #: frozen ``AddressPhase`` reference).
    snapshot_copy_free = True

    def __init__(
        self,
        name: str,
        remote_master_ids: list[int],
        forced_accuracy: Optional[ForcedAccuracyModel] = None,
        predict_new_remote_bursts: bool = False,
    ) -> None:
        super().__init__(name)
        self.remote_master_ids = list(remote_master_ids)
        self.forced_accuracy = forced_accuracy
        self.predict_new_remote_bursts = predict_new_remote_bursts
        self.stats = PredictionStats()
        # last-value predictors
        self._last_requests: Dict[int, bool] = {mid: False for mid in self.remote_master_ids}
        self._last_interrupts: Dict[str, bool] = {}
        # burst extrapolation of the lagger-side active master
        self._last_remote_phase: Optional[AddressPhase] = None
        self._burst_start_addr: Optional[int] = None
        # per-slave readiness (producer-consumer) model: expected wait states
        self._slave_wait_states: Dict[int, int] = {}
        self._current_wait_run: int = 0

    def evaluate(self, cycle: int) -> None:  # predictor is not clock driven
        return

    # -- learning from observed (actual) lagger values -------------------------------
    def observe(
        self,
        drive: BoundaryDrive,
        response: Optional[DataPhaseResult],
        slave_id: Optional[int] = None,
    ) -> None:
        """Update predictor state from actual lagger values.

        Called whenever real lagger values become known to the leader:
        during conservative cycles, at the end of a follow-up, and during
        roll-forth (where the previously validated predictions are re-used).
        Runs once per run-ahead cycle, so every branch early-outs on the
        (common) empty inputs.
        """
        requests = drive.requests
        if requests:
            last_requests = self._last_requests
            for master_id in self.remote_master_ids:
                if master_id in requests:
                    last_requests[master_id] = requests[master_id]
        if drive.interrupts:
            self._last_interrupts.update(drive.interrupts)
        if drive.address_phase is not None:
            self._observe_address_phase(drive.address_phase)
        if response is not None and slave_id is not None:
            self._observe_response(slave_id, response)

    def _observe_address_phase(self, phase: AddressPhase) -> None:
        if phase.htrans is HTrans.NONSEQ:
            self._burst_start_addr = phase.haddr
            self._last_remote_phase = phase
        elif phase.htrans is HTrans.SEQ:
            self._last_remote_phase = phase
        else:
            self._last_remote_phase = phase

    def _observe_response(self, slave_id: int, response: DataPhaseResult) -> None:
        if response.hready:
            self._slave_wait_states[slave_id] = self._current_wait_run
            self._current_wait_run = 0
        else:
            self._current_wait_run += 1

    # -- predictability test -----------------------------------------------------------
    def can_predict(self, needed: NeededFields) -> bool:
        """Can the leader proceed optimistically this cycle?

        Data values (write data, read data) are non-predictable; a remote
        master starting an unknown new burst is also treated as
        non-predictable unless ``predict_new_remote_bursts`` is set (in which
        case an IDLE continuation is guessed and the follow-up check decides).
        """
        if not needed.data_free:
            return False
        if needed.needs_remote_address_phase:
            if self._last_remote_phase is None and not self.predict_new_remote_bursts:
                return False
        return True

    def is_idle_fixed_point(self, needed: NeededFields) -> bool:
        """True when consecutive :meth:`predict` calls for ``needed`` would
        keep producing the same all-idle prediction (modulo the forced-failure
        flag and the cycle stamp) and :meth:`observe` of that prediction's own
        values would not change predictor state.

        This is the predictor half of the batch-stepping quiescence test:
        requests all False (so the predicted request vector is a stable
        all-False map that also leaves the arbitration fixed point intact),
        no remembered interrupts (a remembered-but-deasserted interrupt map
        would still be attached to predictions and merged into the bus
        values), and -- when an address phase is needed -- a remembered
        *inactive* phase from the currently granted remote master, which
        ``_predict_address_phase`` returns unchanged cycle after cycle.
        """
        if not needed.data_free:
            return False
        if self._last_interrupts:
            return False
        if needed.needs_remote_requests and any(self._last_requests.values()):
            return False
        if needed.needs_remote_address_phase:
            last = self._last_remote_phase
            if last is None or last.is_active:
                return False
            if needed.granted_master_id is not None and last.master_id != needed.granted_master_id:
                return False
        if needed.needs_remote_response:
            return False
        return True

    # -- prediction -------------------------------------------------------------------
    def predict(self, cycle: int, needed: NeededFields) -> PredictionRecord:
        """Produce the prediction for one run-ahead cycle."""
        forced_accuracy = self.forced_accuracy
        record = PredictionRecord(
            cycle=cycle,
            requests=dict(self._last_requests) if needed.needs_remote_requests else None,
            address_phase=(
                self._predict_address_phase(needed.granted_master_id)
                if needed.needs_remote_address_phase
                else None
            ),
            response=self._predict_response() if needed.needs_remote_response else None,
            interrupts=dict(self._last_interrupts) if self._last_interrupts else None,
            forced_failure=(
                forced_accuracy is not None and forced_accuracy.should_fail()
            ),
        )
        self.stats.predictions_made += 1
        return record

    def _predict_address_phase(self, granted_master_id: Optional[int]) -> AddressPhase:
        last = self._last_remote_phase
        fallback_master = granted_master_id if granted_master_id is not None else (
            self.remote_master_ids[0] if self.remote_master_ids else 0
        )
        if last is None:
            # Nothing observed yet: guess the remote master drives an idle
            # transfer.  The follow-up check decides whether the guess held.
            return AddressPhase.idle_phase(fallback_master)
        if granted_master_id is not None and last.master_id != granted_master_id:
            # The granted remote master is not the one whose burst we tracked;
            # its first beat cannot be extrapolated, so guess idle.
            return AddressPhase.idle_phase(fallback_master)
        if not last.is_active:
            # The remote master was idle; predict it stays idle.
            return last
        fixed_beats = last.hburst.beats
        start = self._burst_start_addr if self._burst_start_addr is not None else last.haddr
        if fixed_beats is not None:
            issued = (last.haddr - start) // last.hsize.bytes + 1 if not last.hburst.is_wrapping else None
            if issued is not None and issued >= fixed_beats:
                # Burst finished; predict the master goes idle.
                return last.idle()
        next_addr = next_beat_address(last.haddr, last.hburst, last.hsize, start)
        predicted = AddressPhase(
            master_id=last.master_id,
            haddr=next_addr,
            htrans=HTrans.SEQ,
            hwrite=last.hwrite,
            hsize=last.hsize,
            hburst=last.hburst,
            hprot=last.hprot,
        )
        return predicted

    def _predict_response(self) -> DataPhaseResult:
        # Producer-consumer readiness: predict ready (OKAY) -- the common
        # steady-state case.  Learned wait-state patterns could refine this;
        # the simple model already captures the paper's argument.  The
        # parameterless OKAY response is interned (frozen dataclass).
        return DataPhaseResult.okay()

    # -- follow-up bookkeeping -------------------------------------------------------------
    def record_check(self, matched: bool, injected: bool) -> None:
        self.stats.predictions_checked += 1
        if matched:
            self.stats.predictions_correct += 1
        elif injected:
            self.stats.injected_failures += 1
        else:
            self.stats.real_failures += 1

    def record_unpredictable(self) -> None:
        self.stats.unpredictable_cycles += 1

    # -- rollback support -------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Owned payload: the last observed ``AddressPhase`` is frozen and
        stored by reference, the dicts are fresh copies."""
        return {
            "last_requests": dict(self._last_requests),
            "last_interrupts": dict(self._last_interrupts),
            "last_remote_phase": self._last_remote_phase,
            "burst_start_addr": self._burst_start_addr,
            "slave_wait_states": dict(self._slave_wait_states),
            "current_wait_run": self._current_wait_run,
        }

    def restore_state(self, state: dict) -> None:
        self._last_requests = dict(state["last_requests"])
        self._last_interrupts = dict(state["last_interrupts"])
        self._last_remote_phase = state["last_remote_phase"]
        self._burst_start_addr = state["burst_start_addr"]
        self._slave_wait_states = dict(state["slave_wait_states"])
        self._current_wait_run = state["current_wait_run"]

    def reset(self) -> None:
        super().reset()
        self._last_requests = {mid: False for mid in self.remote_master_ids}
        self._last_interrupts = {}
        self._last_remote_phase = None
        self._burst_start_addr = None
        self._slave_wait_states = {}
        self._current_wait_run = 0
        self.stats = PredictionStats()
