"""Target clock bookkeeping.

The co-emulated SoC has a single target clock.  The :class:`Clock` object
tracks the current target cycle for each verification domain independently,
because in the optimistic scheme the leader domain runs ahead of the lagger
domain and may be rolled back.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ClockError(RuntimeError):
    """Raised on inconsistent clock manipulation (negative time, bad rollback)."""


@dataclass
class Clock:
    """A per-domain target-cycle counter with rollback support.

    Attributes:
        name: descriptive name (usually the domain name).
        cycle: the index of the next cycle to execute (0-based).
        total_executed: number of cycles ever executed, including cycles that
            were later rolled back (used for cost accounting).
    """

    name: str
    cycle: int = 0
    total_executed: int = 0
    _history: list[int] = field(default_factory=list, repr=False)

    def advance(self, count: int = 1) -> int:
        """Execute ``count`` cycles; returns the new current cycle."""
        if count < 0:
            raise ClockError(f"cannot advance clock by {count}")
        self.cycle += count
        self.total_executed += count
        return self.cycle

    def mark(self) -> int:
        """Record the current cycle so it can be rolled back to later."""
        self._history.append(self.cycle)
        return self.cycle

    def rollback_to(self, cycle: int) -> int:
        """Rewind the clock to ``cycle`` (must not be in the future).

        The ``total_executed`` counter is *not* rewound: rolled-back cycles
        were still executed and still cost wall-clock time.
        """
        if cycle > self.cycle:
            raise ClockError(
                f"cannot roll clock {self.name!r} forward from {self.cycle} to {cycle}"
            )
        if cycle < 0:
            raise ClockError("cannot roll back to a negative cycle")
        self.cycle = cycle
        return self.cycle

    def pop_mark(self) -> int:
        """Discard and return the most recent mark."""
        if not self._history:
            raise ClockError("no marks recorded")
        return self._history.pop()

    @property
    def wasted_cycles(self) -> int:
        """Cycles executed beyond the committed cycle (rolled-back work)."""
        return self.total_executed - self.cycle

    def reset(self) -> None:
        self.cycle = 0
        self.total_executed = 0
        self._history.clear()

    def snapshot(self) -> dict:
        return {"cycle": self.cycle}

    def restore(self, state: dict) -> None:
        self.rollback_to(state["cycle"])
