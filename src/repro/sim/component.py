"""Base classes for clocked components.

Every block in the reproduced system -- bus masters, bus slaves, arbiters,
half-bus models, channel wrappers -- is a :class:`ClockedComponent`: it is
evaluated exactly once per target clock cycle and may expose state for
checkpointing (rollback support).
"""

from __future__ import annotations

import copy as _copy
import warnings
from abc import ABC, abstractmethod
from array import array
from enum import Enum
from typing import Any, ClassVar, Dict, Iterable, Optional


class Domain(str):
    """An open verification-domain identifier.

    The paper splits the SoC into a *simulation domain* (transaction-level
    blocks executed by the software simulator) and an *acceleration domain*
    (RTL blocks executed by the hardware accelerator).  Those two remain the
    canonical aliases :attr:`Domain.SIMULATOR` / :attr:`Domain.ACCELERATOR`,
    but a topology may declare any number of domains (several accelerators
    attached to one simulation host, simulator-only partitions, ...), each
    identified by an arbitrary id such as ``Domain("acc0")``.

    Instances are interned: ``Domain("simulator") is Domain.SIMULATOR`` holds,
    so identity comparisons written against the old two-member enum keep
    working, as do equality comparisons against plain strings.  What a domain
    *is* (simulator or accelerator, how fast, how it checkpoints) lives in
    :class:`repro.core.topology.DomainSpec`, not in the id.
    """

    __slots__ = ()

    _interned: ClassVar[Dict[str, "Domain"]] = {}

    SIMULATOR: ClassVar["Domain"]
    ACCELERATOR: ClassVar["Domain"]

    def __new__(cls, value: str) -> "Domain":
        if isinstance(value, Domain):
            return value
        interned = cls._interned.get(value)
        if interned is None:
            if not isinstance(value, str) or not value or value != value.strip():
                raise ValueError(f"invalid domain id {value!r}")
            interned = super().__new__(cls, value)
            cls._interned[value] = interned
        return interned

    @property
    def value(self) -> str:
        """The id as a plain string (enum-era spelling, kept for callers)."""
        return str(self)

    @property
    def other(self) -> "Domain":
        """Deprecated: the peer of the canonical two-domain pair.

        Only defined for :attr:`SIMULATOR` / :attr:`ACCELERATOR`; topologies
        with more (or fewer) domains have no unique "other" side.  Enumerate
        peers through :class:`repro.core.topology.Topology` instead.
        """
        warnings.warn(
            "Domain.other is deprecated: it is only defined for the canonical "
            "simulator/accelerator pair. Enumerate peer domains through "
            "repro.core.topology.Topology instead.",
            DeprecationWarning,
            stacklevel=2,
        )
        if self is Domain.SIMULATOR:
            return Domain.ACCELERATOR
        if self is Domain.ACCELERATOR:
            return Domain.SIMULATOR
        raise ValueError(f"Domain.other is undefined for non-canonical domain {self.value!r}")

    def __repr__(self) -> str:
        return f"Domain({str(self)!r})"


Domain.SIMULATOR = Domain("simulator")
Domain.ACCELERATOR = Domain("accelerator")


class AbstractionLevel(str, Enum):
    """Modelling abstraction of a block: transaction level or RTL."""

    TL = "tl"
    RTL = "rtl"


class ClockedComponent(ABC):
    """A component evaluated once per rising clock edge.

    Subclasses implement :meth:`evaluate`, which reads committed signal
    values / input structures and produces outputs for the current cycle.
    Components that participate in rollback additionally implement
    :meth:`snapshot_state` and :meth:`restore_state`.
    """

    #: Fast-copy snapshot protocol opt-in.  A component may set this to True
    #: to promise that (a) every :meth:`snapshot_state` payload is *owned* by
    #: the caller -- freshly allocated containers, immutable scalars and
    #: frozen dataclasses only, never aliases of live mutable state -- and
    #: (b) :meth:`restore_state` treats the payload as read-only, copying
    #: anything it intends to mutate.  The checkpoint manager then stores and
    #: restores the payload by reference instead of deep-copying it, which
    #: removes ``copy.deepcopy`` from the rollback hot path entirely.
    snapshot_copy_free: bool = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.cycle_count = 0

    @abstractmethod
    def evaluate(self, cycle: int) -> None:
        """Perform this component's work for target clock cycle ``cycle``."""

    def reset(self) -> None:
        """Return the component to its power-on state."""
        self.cycle_count = 0

    def tick(self, cycle: int) -> None:
        """Kernel entry point: bookkeeping plus :meth:`evaluate`."""
        self.evaluate(cycle)
        self.cycle_count += 1

    # -- checkpointing -----------------------------------------------------
    def snapshot_state(self) -> dict:
        """Return a picklable snapshot of all rollback-relevant state.

        The default implementation returns an empty dict, meaning the
        component is stateless with respect to rollback.
        """
        return {}

    def restore_state(self, state: dict) -> None:
        """Restore state previously produced by :meth:`snapshot_state`."""
        if state:
            raise NotImplementedError(
                f"{type(self).__name__} received a non-empty snapshot but does "
                "not implement restore_state"
            )

    def rollback_variable_count(self) -> int:
        """Number of scalar variables captured by a snapshot.

        The paper's cost model charges state store/restore proportionally to
        the number of rollback variables (it assumes 1000); components report
        their contribution so the orchestrator can budget realistically.
        """
        return _count_scalars(self.snapshot_state())

    # -- incremental checkpointing (checkpoint windows) ----------------------
    #: Opt-in flag for the *checkpoint window* protocol (Time-Warp style
    #: incremental state saving).  A window-aware component journals its
    #: mutations between :meth:`open_checkpoint_window` and the matching
    #: rewind/close, so storing a checkpoint is O(1) and rolling back is
    #: O(state touched) instead of O(total state).  The default
    #: implementations below fall back to a full snapshot, which makes every
    #: component window-capable; set the flag to True only once the component
    #: implements a genuinely incremental journal (the flag is what the
    #: checkpoint manager reports in its stats).
    supports_checkpoint_window: bool = False

    def open_checkpoint_window(self) -> Any:
        """Begin a checkpoint window; returns an opaque token.

        The token, passed back to :meth:`rewind_checkpoint_window` or
        :meth:`close_checkpoint_window`, must let the component restore
        exactly the state it had when the window was opened.  The fallback
        implementation snapshots the full state (no journalling).
        """
        return self.snapshot_state()

    def rewind_checkpoint_window(self, token: Any) -> None:
        """Restore the state captured at :meth:`open_checkpoint_window` and
        close the window (``rb_restore``)."""
        self.restore_state(token)

    def close_checkpoint_window(self, token: Any) -> None:
        """Close the window keeping the current state (checkpoint discarded
        after a successful transition).  Fallback: nothing to clean up."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


def _count_scalars(obj: Any) -> int:
    """Recursively count scalar leaves in a snapshot structure."""
    if isinstance(obj, dict):
        return sum(_count_scalars(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(_count_scalars(v) for v in obj)
    if isinstance(obj, array):
        return len(obj)
    try:  # numpy arrays expose .size
        size = obj.size  # type: ignore[attr-defined]
    except AttributeError:
        return 1
    return int(size)


class Port:
    """A typed hand-off point between two components evaluated in order.

    Ports carry a value for exactly one cycle; reading clears nothing, but
    the producer is expected to re-drive every cycle.  They are a lightweight
    alternative to full signals for master/slave structures that exchange
    small dataclasses rather than individual wires.
    """

    __slots__ = ("name", "_value", "_valid")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Any = None
        self._valid = False

    def put(self, value: Any) -> None:
        self._value = value
        self._valid = True

    def get(self, default: Any = None) -> Any:
        return self._value if self._valid else default

    @property
    def valid(self) -> bool:
        return self._valid

    def clear(self) -> None:
        self._value = None
        self._valid = False


class ComponentGroup(ClockedComponent):
    """Evaluates an ordered list of components as a unit.

    Used to model one verification domain: the group is the set of components
    that advance together when that domain executes a target clock cycle.
    """

    def __init__(self, name: str, components: Optional[Iterable[ClockedComponent]] = None) -> None:
        super().__init__(name)
        self.components: list[ClockedComponent] = list(components or [])

    @property
    def snapshot_copy_free(self) -> bool:  # type: ignore[override]
        """A group is copy-free only when every member is."""
        return all(
            getattr(component, "snapshot_copy_free", False) for component in self.components
        )

    def add(self, component: ClockedComponent) -> ClockedComponent:
        self.components.append(component)
        return component

    def evaluate(self, cycle: int) -> None:
        for component in self.components:
            component.tick(cycle)

    def reset(self) -> None:
        super().reset()
        for component in self.components:
            component.reset()

    def snapshot_state(self) -> dict:
        return {component.name: component.snapshot_state() for component in self.components}

    def restore_state(self, state: dict) -> None:
        for component in self.components:
            if component.name in state:
                component.restore_state(state[component.name])

    def rollback_variable_count(self) -> int:
        return sum(component.rollback_variable_count() for component in self.components)

    # -- incremental checkpointing: delegate windows to the members ----------
    @property
    def supports_checkpoint_window(self) -> bool:  # type: ignore[override]
        """A group journals incrementally when at least one member does (the
        rest fall back to their full snapshot inside the group token)."""
        return any(component.supports_checkpoint_window for component in self.components)

    def open_checkpoint_window(self) -> dict:
        token = {}
        for component in self.components:
            if component.supports_checkpoint_window:
                token[component.name] = component.open_checkpoint_window()
            else:
                payload = component.snapshot_state()
                if not component.snapshot_copy_free:
                    payload = _copy.deepcopy(payload)
                token[component.name] = payload
        return token

    def rewind_checkpoint_window(self, token: dict) -> None:
        for component in self.components:
            if component.name not in token:
                continue
            if component.supports_checkpoint_window:
                component.rewind_checkpoint_window(token[component.name])
            else:
                payload = token[component.name]
                if not component.snapshot_copy_free:
                    payload = _copy.deepcopy(payload)
                component.restore_state(payload)

    def close_checkpoint_window(self, token: dict) -> None:
        for component in self.components:
            if component.supports_checkpoint_window and component.name in token:
                component.close_checkpoint_window(token[component.name])
