"""Two-phase signals for the cycle-based kernel.

AHB communication happens on clock edges: every component samples its inputs
and produces new outputs once per cycle.  To avoid order-of-evaluation
artefacts the kernel uses a classic two-phase update: components write the
*next* value of a signal during the evaluate phase, and all signals commit
simultaneously during the update phase.

Signals are intentionally tiny objects; the whole SoC model creates a few
dozen of them, so there is no performance concern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Iterable, TypeVar

T = TypeVar("T")


class SignalError(ValueError):
    """Raised on illegal signal operations (double drive, bad width)."""


class Signal(Generic[T]):
    """A single-driver, two-phase signal.

    The signal holds a *current* value (visible to readers) and a *next*
    value (written by the driver during evaluation).  :meth:`commit` moves
    next into current.  Writing twice in the same phase is allowed (last
    write wins) which mirrors blocking assignment inside a single process.
    """

    __slots__ = ("name", "_current", "_next", "_driven", "reset_value")

    def __init__(self, name: str, reset_value: T) -> None:
        self.name = name
        self.reset_value = reset_value
        self._current: T = reset_value
        self._next: T = reset_value
        self._driven = False

    @property
    def value(self) -> T:
        """The committed (current-cycle) value."""
        return self._current

    @property
    def next_value(self) -> T:
        """The pending value that will become visible after commit."""
        return self._next if self._driven else self._current

    def drive(self, value: T) -> None:
        """Set the value to be committed at the end of this cycle."""
        self._next = value
        self._driven = True

    def commit(self) -> bool:
        """Promote the pending value; returns True if the value changed."""
        changed = False
        if self._driven:
            changed = self._next != self._current
            self._current = self._next
            self._driven = False
        return changed

    def reset(self) -> None:
        """Return to the reset value immediately (both phases)."""
        self._current = self.reset_value
        self._next = self.reset_value
        self._driven = False

    def snapshot(self) -> tuple:
        """An immutable ``(current, next, driven)`` payload.

        Signal values are expected to be immutable scalars (ints, bools,
        enums), so the tuple is safe to store by reference -- this is what
        lets checkpoint stores skip ``deepcopy`` (fast-copy protocol).
        """
        return (self._current, self._next, self._driven)

    def restore(self, state: tuple) -> None:
        self._current, self._next, self._driven = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name}={self._current!r})"


class SignalBundle:
    """A named collection of :class:`Signal` objects.

    Bundles give components a single object to commit / reset / snapshot and
    make it easy to enumerate the signals crossing the simulator-accelerator
    boundary (the MSABS of the paper).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._signals: dict[str, Signal] = {}

    def add(self, name: str, reset_value: Any = 0) -> Signal:
        if name in self._signals:
            raise SignalError(f"duplicate signal {name!r} in bundle {self.name!r}")
        signal = Signal(f"{self.name}.{name}", reset_value)
        self._signals[name] = signal
        return signal

    def __getitem__(self, name: str) -> Signal:
        return self._signals[name]

    def __contains__(self, name: str) -> bool:
        return name in self._signals

    def __iter__(self):
        return iter(self._signals.values())

    def names(self) -> Iterable[str]:
        return self._signals.keys()

    def values(self) -> dict[str, Any]:
        """Return the committed value of every signal, keyed by short name."""
        return {name: sig.value for name, sig in self._signals.items()}

    def drive_many(self, values: dict[str, Any]) -> None:
        for name, value in values.items():
            self._signals[name].drive(value)

    def commit(self) -> int:
        """Commit every signal; returns the number of signals that changed."""
        return sum(1 for sig in self._signals.values() if sig.commit())

    def reset(self) -> None:
        for sig in self._signals.values():
            sig.reset()

    def snapshot(self) -> dict:
        """A fresh dict of per-signal tuples (owned payload, fast-copy safe)."""
        return {name: sig.snapshot() for name, sig in self._signals.items()}

    def restore(self, state: dict) -> None:
        for name, sig_state in state.items():
            self._signals[name].restore(sig_state)


@dataclass
class WatchedValue(Generic[T]):
    """A value cell that records every change, for traces and assertions."""

    name: str
    value: T
    history: list[tuple[int, T]] = field(default_factory=list)
    on_change: Callable[[int, T, T], None] | None = None

    def set(self, cycle: int, value: T) -> None:
        if value != self.value:
            old = self.value
            self.value = value
            self.history.append((cycle, value))
            if self.on_change is not None:
                self.on_change(cycle, old, value)

    def changes(self) -> list[tuple[int, T]]:
        return list(self.history)
