"""State checkpointing for 'prediction and rollback'.

The optimistic scheme requires the *leader* domain to store its state before
running ahead (the ``rb_store`` operation, state P-5 of the channel-wrapper
state machine) and to restore it when a prediction error is detected
(``rb_restore``, S-6).

Checkpointing uses a *fast-copy protocol*: a component that sets
``snapshot_copy_free = True`` (see
:attr:`~repro.sim.component.ClockedComponent.snapshot_copy_free`) promises
that every ``snapshot_state()`` payload is owned by the checkpoint -- built
from freshly allocated containers, immutable values and frozen dataclasses --
and that ``restore_state()`` treats the payload as read-only.  Such payloads
are stored and restored by reference, with no ``copy.deepcopy`` anywhere on
the path; this is what keeps ``rb_store`` off the engine's per-cycle hot
path.  Components that do not opt in keep the legacy deep-copy semantics.

On top of the fast-copy protocol the manager supports *incremental*
checkpointing (Time-Warp style incremental state saving): components that
implement the checkpoint-window protocol (see
:attr:`~repro.sim.component.ClockedComponent.supports_checkpoint_window`)
journal their own mutations between store and restore/discard, so ``rb_store``
costs O(1) on the host and a rollback costs O(state touched) instead of
O(total state).  The modelled store/restore *times* are unchanged -- they are
charged from the rollback-variable count exactly as before; only the host
mechanics become cheaper.

The manager also counts rollback variables and charges store/restore time to
the wall-clock ledger through a :class:`StateCostModel`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .component import ClockedComponent


class CheckpointError(RuntimeError):
    """Raised when store/restore is used inconsistently."""


@dataclass(frozen=True)
class StateCostModel:
    """Time cost of storing / restoring one checkpoint.

    The paper charges store/restore proportionally to the number of rollback
    variables (its experiments assume 1000 variables).  The per-variable
    costs differ between the two domains: the accelerator stores state in
    hardware (shadow registers / on-board RAM copy, effectively parallel and
    very fast) whereas the simulator stores state by copying host memory.

    Default constants are calibrated so the analytical model reproduces the
    paper's Table 2 and SLA numbers; see EXPERIMENTS.md.
    """

    store_time_per_variable: float
    restore_time_per_variable: float
    fixed_store_overhead: float = 0.0
    fixed_restore_overhead: float = 0.0

    def store_time(self, n_variables: int) -> float:
        return self.fixed_store_overhead + n_variables * self.store_time_per_variable

    def restore_time(self, n_variables: int) -> float:
        return self.fixed_restore_overhead + n_variables * self.restore_time_per_variable


#: Cost of checkpointing inside the accelerator (hardware-assisted copy).
ACCELERATOR_STATE_COSTS = StateCostModel(
    store_time_per_variable=30e-12,
    restore_time_per_variable=29e-12,
)

#: Cost of checkpointing inside the software simulator (host memcpy).
SIMULATOR_STATE_COSTS = StateCostModel(
    store_time_per_variable=10e-9,
    restore_time_per_variable=9.5e-9,
)


@dataclass
class Checkpoint:
    """A stored state of a set of components at a particular target cycle.

    Two flavours exist:

    * *full* checkpoints hold a complete owned snapshot per component in
      ``states`` (the legacy scheme);
    * *incremental* checkpoints hold one opaque checkpoint-window token per
      component in ``states`` (``incremental=True``) -- the components
      themselves journal their mutations and can rewind to the window-open
      state in O(state touched).
    """

    cycle: int
    states: dict = field(default_factory=dict)
    n_variables: int = 0
    label: str = ""
    incremental: bool = False

    def __len__(self) -> int:
        return len(self.states)


@dataclass
class CheckpointStats:
    """Counters for checkpoint activity, reported in benchmark output."""

    stores: int = 0
    restores: int = 0
    discarded: int = 0
    variables_stored: int = 0
    variables_restored: int = 0
    store_time: float = 0.0
    restore_time: float = 0.0
    incremental_stores: int = 0

    def as_dict(self) -> dict:
        return {
            "stores": self.stores,
            "restores": self.restores,
            "discarded": self.discarded,
            "variables_stored": self.variables_stored,
            "variables_restored": self.variables_restored,
            "store_time": self.store_time,
            "restore_time": self.restore_time,
            "incremental_stores": self.incremental_stores,
        }


class CheckpointManager:
    """Stores and restores snapshots of a group of components.

    Only a single outstanding checkpoint is required by the protocol (the
    leader stores at the start of each transition and either discards the
    checkpoint on success or restores it on a misprediction), but a small
    stack is supported for experimentation with nested speculation.
    """

    def __init__(
        self,
        components: Iterable[ClockedComponent],
        cost_model: StateCostModel,
        rollback_variable_budget: Optional[int] = None,
        incremental: Optional[bool] = None,
    ) -> None:
        self.components = list(components)
        self.cost_model = cost_model
        self.rollback_variable_budget = rollback_variable_budget
        self.stats = CheckpointStats()
        self._stack: list[Checkpoint] = []
        # Incremental (checkpoint-window) protocol: usable when every managed
        # component either journals its own mutations or follows the
        # fast-copy ownership contract (whose full-snapshot window fallback
        # is safe by reference).  ``incremental=None`` auto-enables it.
        can_do_incremental = all(
            component.supports_checkpoint_window
            or getattr(component, "snapshot_copy_free", False)
            for component in self.components
        )
        if incremental is None:
            self.incremental = can_do_incremental
        else:
            if incremental and not can_do_incremental:
                raise CheckpointError(
                    "incremental checkpointing requires every component to be "
                    "checkpoint-window capable or snapshot_copy_free"
                )
            self.incremental = incremental
        # Cached actual variable count (see variable_count()).
        self._variable_count_cache: Optional[int] = None

    # -- introspection -----------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def has_checkpoint(self) -> bool:
        return bool(self._stack)

    @property
    def snapshot_safe(self) -> bool:
        """Whether a durable whole-engine snapshot may be taken right now.

        A durable snapshot (:mod:`repro.core.snapshot`) pickles the live
        component graph; with a rollback checkpoint outstanding that graph
        includes an open speculation -- incremental checkpoint windows whose
        journals are still growing, or full snapshots aliasing live state --
        and a resume from such a pickle would not replay bit-identically.
        The engine run loops only offer safe points between transitions, so
        this is ``True`` exactly when the protocol says it must be; the
        snapshot writer asserts it as a belt-and-braces guard.
        """
        return not self._stack

    def variable_count(self) -> int:
        """Number of rollback variables a store captures.

        If an explicit budget was supplied (matching the paper's "1,000
        rollback variables" assumption) the budget wins.  Otherwise the
        components report their snapshot size **once** and the sum is
        cached: the paper's cost model assumes a *fixed* rollback-variable
        set (hardware shadow registers, not transient buffers), so the
        baseline footprint sampled at first use is the right modelled
        quantity -- and re-summing every component on every store was a
        measurable per-transition cost.  Note the per-component counts are
        *not* static (e.g. a master's outstanding-beat buffers grow and
        shrink); the cache deliberately freezes the baseline rather than
        tracking in-flight state.  Call :meth:`invalidate_variable_count`
        after structurally growing a component (e.g. mapping new blocks) to
        force a re-count.
        """
        if self.rollback_variable_budget is not None:
            return self.rollback_variable_budget
        count = self._variable_count_cache
        if count is None:
            count = sum(c.rollback_variable_count() for c in self.components)
            self._variable_count_cache = count
        return count

    def invalidate_variable_count(self) -> None:
        """Drop the cached actual variable count (next call re-sums)."""
        self._variable_count_cache = None

    # -- operations --------------------------------------------------------
    def store(self, cycle: int, label: str = "") -> Checkpoint:
        """Capture the state of every managed component (``rb_store``).

        With incremental checkpointing enabled (and no checkpoint already
        outstanding) the components open *checkpoint windows* instead of
        producing full snapshots: window-aware components merely start
        journalling their mutations, turning the per-transition store cost
        from O(total state) into O(1) plus O(state touched) on rollback.

        Nested stores (experimental speculation stacks) and legacy
        components use the full-snapshot scheme: fast-copy components hand
        over an owned payload stored by reference; others get the defensive
        ``deepcopy`` they were written against.

        The *modelled* store cost (``variable_count`` x the cost model) is
        identical for both schemes -- the paper's rb_store operation captures
        the same rollback variables either way; only the host-side mechanics
        differ.
        """
        if self.incremental and not self._stack:
            states = {c.name: c.open_checkpoint_window() for c in self.components}
            checkpoint = Checkpoint(
                cycle=cycle,
                states=states,
                n_variables=self.variable_count(),
                label=label,
                incremental=True,
            )
            self.stats.incremental_stores += 1
        else:
            states = {}
            for c in self.components:
                payload = c.snapshot_state()
                if not getattr(c, "snapshot_copy_free", False):
                    payload = copy.deepcopy(payload)
                states[c.name] = payload
            checkpoint = Checkpoint(
                cycle=cycle, states=states, n_variables=self.variable_count(), label=label
            )
        self._stack.append(checkpoint)
        self.stats.stores += 1
        self.stats.variables_stored += checkpoint.n_variables
        self.stats.store_time += self.cost_model.store_time(checkpoint.n_variables)
        return checkpoint

    def restore(self) -> Checkpoint:
        """Restore the most recent checkpoint (``rb_restore``) and pop it."""
        if not self._stack:
            raise CheckpointError("restore requested but no checkpoint is stored")
        checkpoint = self._stack.pop()
        if checkpoint.incremental:
            for component in self.components:
                component.rewind_checkpoint_window(checkpoint.states[component.name])
        else:
            for component in self.components:
                if component.name in checkpoint.states:
                    payload = checkpoint.states[component.name]
                    if not getattr(component, "snapshot_copy_free", False):
                        payload = copy.deepcopy(payload)
                    component.restore_state(payload)
        self.stats.restores += 1
        self.stats.variables_restored += checkpoint.n_variables
        self.stats.restore_time += self.cost_model.restore_time(checkpoint.n_variables)
        return checkpoint

    def discard(self) -> Checkpoint:
        """Drop the most recent checkpoint without restoring it."""
        if not self._stack:
            raise CheckpointError("discard requested but no checkpoint is stored")
        checkpoint = self._stack.pop()
        if checkpoint.incremental:
            for component in self.components:
                component.close_checkpoint_window(checkpoint.states[component.name])
        self.stats.discarded += 1
        return checkpoint

    def clear(self) -> None:
        """Drop every outstanding checkpoint without restoring.

        Incremental checkpoints close their windows (current state kept) so
        the components stop journalling.
        """
        while self._stack:
            checkpoint = self._stack.pop()
            if checkpoint.incremental:
                for component in self.components:
                    component.close_checkpoint_window(checkpoint.states[component.name])

    def last_store_time(self) -> float:
        """Time charged for a single store at the current variable count."""
        return self.cost_model.store_time(self.variable_count())

    def last_restore_time(self) -> float:
        """Time charged for a single restore at the current variable count."""
        return self.cost_model.restore_time(self.variable_count())
