"""Modelled wall-clock accounting.

The reproduction does not (and cannot) run a real PCI-attached accelerator,
so all "time spent" figures are *modelled*: every operation charges time to a
:class:`WallClockLedger` under a category.  The categories match the columns
of the paper's Table 2:

* ``simulator``  -- Tsim.,   time the software simulator spends executing cycles
* ``accelerator`` -- Tacc.,  time the accelerator spends executing cycles
* ``state_store`` -- Tstore, time spent storing leader state
* ``state_restore`` -- Trest., time spent restoring leader state
* ``channel`` -- Tch.,       time spent on simulator-accelerator channel accesses

Dividing each bucket by the number of *committed* target cycles yields the
per-cycle averages the paper tabulates, and the reciprocal of their sum is
the simulation performance in cycles/second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable


#: Canonical cost categories (order matters for reporting).
CATEGORIES = (
    "simulator",
    "accelerator",
    "state_store",
    "state_restore",
    "channel",
    "other",
)


class LedgerError(ValueError):
    """Raised when an unknown category is charged."""


@dataclass(frozen=True)
class DomainSpeed:
    """Execution speed of one verification domain.

    Attributes:
        cycles_per_second: how many target clock cycles the domain can model
            per wall-clock second.  The paper uses 100 k or 1,000 k for the
            simulator and 10 M for the accelerator.
    """

    cycles_per_second: float

    def __post_init__(self) -> None:
        if self.cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be positive")

    @property
    def seconds_per_cycle(self) -> float:
        return 1.0 / self.cycles_per_second


#: Paper defaults (Section 6).
DEFAULT_SIMULATOR_SPEED = DomainSpeed(1_000_000.0)
SLOW_SIMULATOR_SPEED = DomainSpeed(100_000.0)
DEFAULT_ACCELERATOR_SPEED = DomainSpeed(10_000_000.0)


@dataclass
class WallClockLedger:
    """Accumulates modelled wall-clock time by category."""

    buckets: Dict[str, float] = field(
        default_factory=lambda: {category: 0.0 for category in CATEGORIES}
    )
    committed_cycles: int = 0

    def ensure_category(self, category: str) -> None:
        """Register an extra category (e.g. a non-canonical domain id).

        The canonical categories exist from construction; multi-domain
        topologies add one execution bucket per domain id before charging.
        """
        self.buckets.setdefault(category, 0.0)

    def charge(self, category: str, seconds: float) -> None:
        """Add ``seconds`` of modelled time to ``category``."""
        if category not in self.buckets:
            raise LedgerError(
                f"unknown ledger category {category!r}; expected one of "
                f"{tuple(self.buckets)} (use ensure_category for per-domain buckets)"
            )
        if seconds < 0:
            raise LedgerError(f"cannot charge negative time ({seconds})")
        self.buckets[category] += seconds

    def commit_cycles(self, count: int) -> None:
        """Record that ``count`` target cycles were committed (made progress)."""
        if count < 0:
            raise LedgerError("cannot commit a negative number of cycles")
        self.committed_cycles += count

    # -- reporting ---------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return sum(self.buckets.values())

    def per_cycle(self, category: str) -> float:
        """Average seconds spent in ``category`` per committed target cycle."""
        if self.committed_cycles == 0:
            return 0.0
        return self.buckets[category] / self.committed_cycles

    def per_cycle_breakdown(self) -> Dict[str, float]:
        return {category: self.per_cycle(category) for category in self.buckets}

    @property
    def performance_cycles_per_second(self) -> float:
        """Modelled co-emulation performance in target cycles per second."""
        if self.total_seconds == 0.0:
            return float("inf")
        return self.committed_cycles / self.total_seconds

    def merge(self, other: "WallClockLedger") -> None:
        """Fold another ledger's charges into this one (cycles are *not* merged)."""
        for category, seconds in other.buckets.items():
            self.buckets.setdefault(category, 0.0)
            self.buckets[category] += seconds

    def reset(self) -> None:
        for category in self.buckets:
            self.buckets[category] = 0.0
        self.committed_cycles = 0

    def as_dict(self) -> dict:
        result = dict(self.buckets)
        result["committed_cycles"] = self.committed_cycles
        result["total_seconds"] = self.total_seconds
        result["performance"] = self.performance_cycles_per_second
        return result


@dataclass
class ExecutionCostModel:
    """Charges domain execution time to a ledger.

    One instance exists per verification domain; the co-emulation
    orchestrator calls :meth:`charge_cycles` every time the domain executes
    target cycles (whether or not those cycles are eventually committed --
    rolled-back work still costs time, which is exactly the degradation the
    paper quantifies).
    """

    ledger: WallClockLedger
    category: str
    speed: DomainSpeed
    cycles_charged: int = 0
    #: Cached ``speed.seconds_per_cycle`` (the property recomputes the
    #: division on every read; charge_cycles runs once per executed cycle).
    _seconds_per_cycle: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        self._seconds_per_cycle = self.speed.seconds_per_cycle
        # The bucket must exist for the direct update in charge_cycles.
        self.ledger.ensure_category(self.category)

    def charge_cycles(self, count: int) -> float:
        """Charge the time to execute ``count`` cycles; returns seconds charged."""
        if count < 0:
            raise LedgerError("cannot charge a negative cycle count")
        seconds = count * self._seconds_per_cycle
        # Direct bucket update (the category was validated at construction
        # via ensure_category, and seconds is non-negative by construction).
        self.ledger.buckets[self.category] += seconds
        self.cycles_charged += count
        return seconds


def summarize_ledgers(ledgers: Iterable[WallClockLedger]) -> WallClockLedger:
    """Combine several ledgers into a fresh one (used by sweep reports)."""
    combined = WallClockLedger()
    for ledger in ledgers:
        combined.merge(ledger)
        combined.committed_cycles += ledger.committed_cycles
    return combined
