"""Bit-exact batched float accumulation for the batch-stepped engines.

The batch-stepping kernel replaces thousands of per-cycle Python dispatches
with one closed-form advance -- but every modelled quantity must stay
*bit-identical* to the scalar engines (the golden digests hash the raw float
ledger values).  IEEE-754 addition is not associative: ``k`` repeated adds of
``x`` generally differ from one add of ``k * x`` in the last ulp, so the
batched bookkeeping must reproduce the exact sequential reduction order of
the per-cycle loops.

``numpy.ufunc.accumulate`` is documented to apply the operator successively
along the axis (a strict left fold), which makes ``np.add.accumulate`` the
vectorised twin of a Python ``for`` loop of ``+=`` -- same operations, same
order, same rounding.  When numpy is unavailable (or the run is too short to
amortise the array setup) the helpers fall back to the stdlib loop;
``tests/sim/test_batchmath.py`` pins the two paths against each other
bit-for-bit.
"""

from __future__ import annotations

from typing import Sequence

try:  # feature-detect: the container bakes numpy in, but stay importable without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-free installs
    _np = None

#: Below this many additions the plain Python loop beats the array setup
#: (allocation + tile + accumulate); measured on the bench grid, the
#: crossover sits around a few dozen adds.
NUMPY_MIN_ADDS = 64


def have_numpy() -> bool:
    """True when the numpy fast path is active."""
    return _np is not None


def repeat_add(base: float, increment: float, count: int) -> float:
    """``base`` after ``count`` sequential ``+= increment`` steps.

    Bit-identical to the scalar loop for every (base, increment, count):
    the numpy path builds ``[base, inc, inc, ...]`` and left-folds it with
    ``np.add.accumulate``, which performs the same float64 additions in the
    same order.
    """
    if count <= 0:
        return base
    if _np is not None and count >= NUMPY_MIN_ADDS:
        acc = _np.empty(count + 1, dtype=_np.float64)
        acc[0] = base
        acc[1:] = increment
        return float(_np.add.accumulate(acc)[-1])
    for _ in range(count):
        base += increment
    return base


def repeat_add_pattern(base: float, pattern: Sequence[float], count: int) -> float:
    """``base`` after ``count`` repetitions of sequentially adding ``pattern``.

    Equivalent to::

        for _ in range(count):
            for increment in pattern:
                base += increment

    with the same float64 rounding at every step.  Used for per-cycle charge
    sequences (e.g. the channel-bucket additions of one idle lock-step cycle)
    repeated over a quiescent stretch.
    """
    if count <= 0 or not pattern:
        return base
    if len(pattern) == 1:
        return repeat_add(base, pattern[0], count)
    total = len(pattern) * count
    if _np is not None and total >= NUMPY_MIN_ADDS:
        acc = _np.empty(total + 1, dtype=_np.float64)
        acc[0] = base
        acc[1:] = _np.tile(_np.asarray(pattern, dtype=_np.float64), count)
        return float(_np.add.accumulate(acc)[-1])
    for _ in range(count):
        for increment in pattern:
            base += increment
    return base
