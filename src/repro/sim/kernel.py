"""Cycle-based simulation kernel.

The kernel advances a group of clocked components one target cycle at a
time.  Each verification domain (simulator / accelerator) owns one kernel, so
the co-emulation orchestrator can advance the leader without advancing the
lagger, roll one domain back, and so on.

A cycle consists of:

1. discrete events due at this cycle fire (workload wake-ups, interrupts),
2. every component's :meth:`~repro.sim.component.ClockedComponent.tick` runs
   in registration order (registration order defines combinational ordering:
   masters drive before the bus, the bus before slaves, etc.),
3. all registered signal bundles commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .clock import Clock
from .component import ClockedComponent
from .events import EventScheduler
from .signal import SignalBundle


class KernelError(RuntimeError):
    """Raised on inconsistent kernel usage."""


@dataclass
class KernelStats:
    """Counters describing kernel activity."""

    cycles_run: int = 0
    events_fired: int = 0
    commits: int = 0
    #: Refused :meth:`CycleKernel.fast_forward` calls, keyed by the
    #: structured reason (see :attr:`CycleKernel.last_refusal`).
    fast_forward_refusals: dict = field(default_factory=dict)

    def count_refusal(self, reason: str) -> None:
        refusals = self.fast_forward_refusals
        refusals[reason] = refusals.get(reason, 0) + 1

    def as_dict(self) -> dict:
        return {
            "cycles_run": self.cycles_run,
            "events_fired": self.events_fired,
            "commits": self.commits,
            "fast_forward_refusals": dict(self.fast_forward_refusals),
        }


class CycleKernel:
    """Drives one verification domain cycle by cycle."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.clock = Clock(name)
        self.scheduler = EventScheduler()
        self.components: list[ClockedComponent] = []
        self.bundles: list[SignalBundle] = []
        self.stats = KernelStats()
        self._pre_cycle_hooks: list[Callable[[int], None]] = []
        self._post_cycle_hooks: list[Callable[[int], None]] = []
        #: Why the most recent :meth:`fast_forward` call refused (``None``
        #: after a successful skip).  Machine-readable ``reason`` or
        #: ``reason:detail`` strings, e.g. ``"hooks"``, ``"bundles"``,
        #: ``"event_horizon"``, ``"undeclared_component:dma0"``,
        #: ``"component_horizon:bus"``.
        self.last_refusal: Optional[str] = None

    # -- construction ------------------------------------------------------
    def add_component(self, component: ClockedComponent) -> ClockedComponent:
        """Register a component; evaluation follows registration order."""
        self.components.append(component)
        return component

    def add_components(self, components: Iterable[ClockedComponent]) -> None:
        for component in components:
            self.add_component(component)

    def add_bundle(self, bundle: SignalBundle) -> SignalBundle:
        """Register a signal bundle to be committed at the end of each cycle."""
        self.bundles.append(bundle)
        return bundle

    def add_pre_cycle_hook(self, hook: Callable[[int], None]) -> None:
        """Register a callable invoked with the cycle number before evaluation."""
        self._pre_cycle_hooks.append(hook)

    def add_post_cycle_hook(self, hook: Callable[[int], None]) -> None:
        """Register a callable invoked with the cycle number after commit."""
        self._post_cycle_hooks.append(hook)

    # -- execution ---------------------------------------------------------
    @property
    def current_cycle(self) -> int:
        """Index of the next cycle the kernel will execute."""
        return self.clock.cycle

    def run_cycle(self) -> int:
        """Execute exactly one target clock cycle; returns the cycle index run."""
        cycle = self.clock.cycle
        self.stats.events_fired += self.scheduler.fire_until(cycle)
        for hook in self._pre_cycle_hooks:
            hook(cycle)
        for component in self.components:
            component.tick(cycle)
        for bundle in self.bundles:
            bundle.commit()
        for hook in self._post_cycle_hooks:
            hook(cycle)
        self.clock.advance(1)
        self.stats.cycles_run += 1
        self.stats.commits += 1
        return cycle

    def run(self, cycles: int) -> int:
        """Execute ``cycles`` consecutive cycles; returns the new current cycle."""
        if cycles < 0:
            raise KernelError(f"cannot run a negative number of cycles ({cycles})")
        for _ in range(cycles):
            self.run_cycle()
        return self.clock.cycle

    def run_until(self, cycle: int) -> int:
        """Run until the current cycle reaches ``cycle``."""
        if cycle < self.clock.cycle:
            raise KernelError(
                f"target cycle {cycle} is in the past (current {self.clock.cycle})"
            )
        return self.run(cycle - self.clock.cycle)

    def fast_forward(self, cycles: int) -> int:
        """Advance up to ``cycles`` provably-quiescent cycles in one step.

        The batch-stepping entry point at the kernel layer: when every
        registered component declares (via an optional ``quiescent_until
        (cycle)`` method) that its ``tick`` is a complete no-op for a run of
        upcoming cycles, and no discrete event falls inside that run, the
        kernel advances clock, scheduler time and counters in O(1) instead of
        dispatching per cycle.  Returns the number of cycles skipped (0 when
        nothing could be proven, in which case no state was touched and the
        caller falls back to :meth:`run_cycle`).

        A component's ``quiescent_until(cycle)`` must return the first future
        cycle at which its ``tick`` may do observable work (``float("inf")``
        for "never"); components without the method make the kernel
        ineligible, as do registered hooks and signal bundles (both are
        invoked unconditionally every scalar cycle).

        Every refusal records a structured reason in :attr:`last_refusal`
        (and tallies it in ``stats.fast_forward_refusals``) so callers can
        report *why* a stretch ran scalar instead of a bare ``0``.
        """
        if cycles <= 0:
            return self._refuse("no_cycles")
        if self._pre_cycle_hooks or self._post_cycle_hooks:
            return self._refuse("hooks")
        if self.bundles:
            return self._refuse("bundles")
        cycle = self.clock.cycle
        horizon = float(cycle + cycles)
        next_event = self.scheduler.peek_time()
        if next_event is not None and next_event < horizon:
            horizon = float(next_event)
        if horizon <= cycle:
            return self._refuse("event_horizon")
        for component in self.components:
            declare = getattr(component, "quiescent_until", None)
            if declare is None:
                return self._refuse(
                    f"undeclared_component:{getattr(component, 'name', type(component).__name__)}"
                )
            until = declare(cycle)
            if until < horizon:
                horizon = until
                if horizon <= cycle:
                    return self._refuse(
                        f"component_horizon:{getattr(component, 'name', type(component).__name__)}"
                    )
        count = int(horizon) - cycle
        if count <= 0:
            # A fractional horizon truncating to the current cycle.
            return self._refuse("horizon")
        # No event lies at or before the last skipped cycle, so this fires
        # nothing -- it only brings the scheduler's clock to where the last
        # scalar ``run_cycle`` would have left it.
        self.stats.events_fired += self.scheduler.fire_until(cycle + count - 1)
        self.clock.advance(count)
        self.stats.cycles_run += count
        self.stats.commits += count
        self.last_refusal = None
        return count

    def _refuse(self, reason: str) -> int:
        """Record one refused fast-forward; always returns 0 cycles."""
        self.last_refusal = reason
        self.stats.count_refusal(reason)
        return 0

    # -- state management --------------------------------------------------
    def reset(self) -> None:
        """Reset the clock, scheduler, every component and every bundle."""
        self.clock.reset()
        self.scheduler.reset()
        self.stats = KernelStats()
        self.last_refusal = None
        for component in self.components:
            component.reset()
        for bundle in self.bundles:
            bundle.reset()

    def snapshot_state(self) -> dict:
        """Snapshot clock, bundles and all components (for rollback)."""
        return {
            "clock": self.clock.snapshot(),
            "bundles": {bundle.name: bundle.snapshot() for bundle in self.bundles},
            "components": {
                component.name: component.snapshot_state() for component in self.components
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        self.clock.restore(state["clock"])
        for bundle in self.bundles:
            if bundle.name in state["bundles"]:
                bundle.restore(state["bundles"][bundle.name])
        for component in self.components:
            if component.name in state["components"]:
                component.restore_state(state["components"][component.name])

    def rollback_variable_count(self) -> int:
        """Total rollback variables across all registered components."""
        return sum(component.rollback_variable_count() for component in self.components)
