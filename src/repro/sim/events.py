"""Discrete-event scheduling primitives.

The co-emulation framework is predominantly *cycle based* (see
:mod:`repro.sim.kernel`), but a small discrete-event layer is useful for
modelling things that are not tied to the target clock: delayed interrupt
assertion, timeout watchdogs in the channel wrappers, and workload generators
that wake up at irregular target times.

The scheduler is deliberately minimal: a priority queue of
``(time, sequence, Event)`` entries.  The monotonically increasing sequence
number guarantees FIFO ordering of events scheduled for the same time, which
keeps simulations deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


class SimulationError(RuntimeError):
    """Raised for fatal simulation-level errors (corrupt queue, bad time)."""


@dataclass(order=False)
class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute target time (in cycles) at which the event fires.
        callback: callable invoked with ``payload`` when the event fires.
        payload: arbitrary data handed back to the callback.
        cancelled: events can be cancelled in place; cancelled events are
            silently discarded when popped.
        fired: set once the event has fired (or been drained, or the owning
            scheduler was reset); cancelling such an event is a no-op.
    """

    time: int
    callback: Callable[[Any], None]
    payload: Any = None
    cancelled: bool = False
    fired: bool = False
    #: Back-reference set by the scheduler so in-place ``cancel()`` keeps the
    #: scheduler's O(1) live-event counter consistent.
    _scheduler: Any = field(default=None, repr=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will not fire."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._note_cancel(self)


@dataclass
class EventStats:
    """Counters describing scheduler activity."""

    scheduled: int = 0
    fired: int = 0
    cancelled: int = 0

    def as_dict(self) -> dict:
        return {
            "scheduled": self.scheduled,
            "fired": self.fired,
            "cancelled": self.cancelled,
        }


class EventScheduler:
    """A deterministic discrete-event scheduler keyed by integer cycle time.

    The scheduler does not own the notion of "now"; the cycle kernel advances
    time and asks the scheduler to fire everything due at or before the new
    time.  This keeps the cycle-based and event-based worlds in lock step.
    """

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0
        self._live = 0  # non-cancelled events still in the queue
        self.stats = EventStats()

    @property
    def now(self) -> int:
        """Current scheduler time (last time passed to :meth:`fire_until`)."""
        return self._now

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events; O(1)."""
        return self._live

    def schedule(
        self,
        time: int,
        callback: Callable[[Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback(payload)`` at absolute ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        # Lazily compact the heap when cancelled entries outnumber live ones:
        # cancellation only marks events, so heavy cancel/reschedule patterns
        # (restartable timers) would otherwise grow the queue without bound.
        if len(self._queue) - self._live > self._live:
            self._purge_cancelled()
        event = Event(time=time, callback=callback, payload=payload, _scheduler=self)
        heapq.heappush(self._queue, (time, next(self._counter), event))
        self._live += 1
        self.stats.scheduled += 1
        return event

    def _purge_cancelled(self) -> None:
        """Drop cancelled entries and re-heapify (preserves entry order keys)."""
        self._queue = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)

    def schedule_in(
        self,
        delay: int,
        callback: Callable[[Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` ``delay`` cycles from the current time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, payload)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()

    def _note_cancel(self, event: Event) -> None:
        """Bookkeeping hook invoked exactly once per cancelled event."""
        if not event.fired:
            self._live -= 1
        self.stats.cancelled += 1

    def peek_time(self) -> Optional[int]:
        """Return the time of the next pending (non-cancelled) event."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0][0]

    def fire_until(self, time: int) -> int:
        """Fire every pending event with ``event.time <= time``.

        Returns the number of events fired.  Events scheduled by callbacks
        for a time at or before ``time`` are fired in the same call.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot move time backwards: {time} < {self._now}"
            )
        fired = 0
        while self._queue and self._queue[0][0] <= time:
            event_time, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            event.fired = True
            self._live -= 1
            self._now = event_time
            event.callback(event.payload)
            self.stats.fired += 1
            fired += 1
        self._now = time
        return fired

    def drain(self) -> Iterator[Event]:
        """Yield and remove all pending events without firing them."""
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if not event.cancelled:
                event.fired = True
                self._live -= 1
                yield event

    def reset(self) -> None:
        """Remove all events and reset time to zero."""
        for _, _, event in self._queue:
            event.fired = True  # detach: a later cancel() must not count
        self._queue.clear()
        self._now = 0
        self._live = 0
        self.stats = EventStats()


@dataclass
class Timer:
    """A restartable one-shot timer built on :class:`EventScheduler`.

    Used by channel wrappers to implement synchronisation timeouts.
    """

    scheduler: EventScheduler
    callback: Callable[[Any], None]
    payload: Any = None
    _event: Optional[Event] = field(default=None, init=False, repr=False)

    def start(self, delay: int) -> None:
        """(Re)start the timer to fire ``delay`` cycles from now."""
        self.stop()
        self._event = self.scheduler.schedule_in(delay, self._fire, self.payload)

    def stop(self) -> None:
        """Cancel the timer if it is pending."""
        if self._event is not None and not self._event.cancelled:
            self.scheduler.cancel(self._event)
        self._event = None

    @property
    def pending(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def _fire(self, payload: Any) -> None:
        self._event = None
        self.callback(payload)
