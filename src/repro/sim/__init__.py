"""Cycle-based simulation substrate.

This package provides the simulation kernel the rest of the reproduction is
built on: clocked components, two-phase signals, discrete events, per-domain
clocks, state checkpointing (for rollback) and the modelled wall-clock ledger
used to reproduce the paper's performance figures.
"""

from .clock import Clock, ClockError
from .checkpoint import (
    ACCELERATOR_STATE_COSTS,
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    CheckpointStats,
    SIMULATOR_STATE_COSTS,
    StateCostModel,
)
from .component import (
    AbstractionLevel,
    ClockedComponent,
    ComponentGroup,
    Domain,
    Port,
)
from .events import Event, EventScheduler, EventStats, SimulationError, Timer
from .kernel import CycleKernel, KernelError, KernelStats
from .signal import Signal, SignalBundle, SignalError, WatchedValue
from .time_model import (
    CATEGORIES,
    DEFAULT_ACCELERATOR_SPEED,
    DEFAULT_SIMULATOR_SPEED,
    DomainSpeed,
    ExecutionCostModel,
    LedgerError,
    SLOW_SIMULATOR_SPEED,
    WallClockLedger,
    summarize_ledgers,
)

__all__ = [
    "AbstractionLevel",
    "ACCELERATOR_STATE_COSTS",
    "CATEGORIES",
    "Checkpoint",
    "CheckpointError",
    "CheckpointManager",
    "CheckpointStats",
    "Clock",
    "ClockError",
    "ClockedComponent",
    "ComponentGroup",
    "CycleKernel",
    "DEFAULT_ACCELERATOR_SPEED",
    "DEFAULT_SIMULATOR_SPEED",
    "Domain",
    "DomainSpeed",
    "Event",
    "EventScheduler",
    "EventStats",
    "ExecutionCostModel",
    "KernelError",
    "KernelStats",
    "LedgerError",
    "Port",
    "Signal",
    "SignalBundle",
    "SignalError",
    "SimulationError",
    "SIMULATOR_STATE_COSTS",
    "SLOW_SIMULATOR_SPEED",
    "StateCostModel",
    "Timer",
    "WallClockLedger",
    "WatchedValue",
    "summarize_ledgers",
]
