"""Single source of the package version.

Resolution order: installed distribution metadata, then the source
checkout's ``pyproject.toml`` (via :mod:`tomllib` where available, a regex on
Python 3.10), then a recognisable fallback.  Keeping this in one place means
``python -m repro --version``, ``repro.__version__`` and packaging always
agree.
"""

from __future__ import annotations

import re
from pathlib import Path

_FALLBACK = "0+unknown"


def package_version() -> str:
    """The package version, from installed metadata or pyproject.toml."""
    try:
        from importlib import metadata

        return metadata.version("repro-coemulation")
    except Exception:
        pass
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        text = pyproject.read_text()
    except OSError:
        return _FALLBACK
    try:
        import tomllib

        version = tomllib.loads(text).get("project", {}).get("version")
    except ModuleNotFoundError:  # python 3.10: no tomllib
        match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
        version = match.group(1) if match else None
    return version or _FALLBACK
