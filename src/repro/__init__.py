"""repro -- reproduction of "A Prediction Packetizing Scheme for Reducing
Channel Traffic in Transaction-Level Hardware/Software Co-Emulation"
(Lee, Chung, Ahn, Lee and Kyung, DATE 2005).

The package is organised as:

* :mod:`repro.sim` -- cycle-based simulation kernel, checkpointing, time ledger,
* :mod:`repro.ahb` -- AMBA AHB bus substrate (monolithic and split half-bus models),
* :mod:`repro.channel` -- simulator-accelerator channel timing / traffic model,
* :mod:`repro.accelerator` -- the emulated simulation accelerator,
* :mod:`repro.core` -- the prediction packetizing scheme itself (the paper's
  contribution): predictors, Leader Output Buffer, channel wrappers, rollback,
  SLA/ALS engines, the conventional baseline and the analytical model,
* :mod:`repro.workloads` -- synthetic traffic and SoC configurations,
* :mod:`repro.analysis` -- metrics, sweeps and report rendering.

Quick start::

    from repro import CoEmulationConfig, OperatingMode, build_scenario, create_engine

    spec = build_scenario("als_streaming")
    config = CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=2000)
    result = create_engine(config, partition=spec.build_partition()).run()
    print(result.performance_cycles_per_second)

Multi-domain topologies (several accelerators, simulator-only, ...) are
declared per scenario (``repro scenarios`` shows each one's domains) or
passed explicitly::

    spec = build_scenario("dual_accelerator_pipeline")   # simulator+acc0+acc1
    config = CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=2000,
                               topology=spec.topology)
    result = create_engine(config, partition=spec.build_partition()).run()

Experiment grids run through :mod:`repro.orchestration` (declarative
:class:`RunRequest` + parallel ``BatchRunner``), also exposed on the command
line as ``python -m repro sweep --jobs N``.
"""

from .core import (
    AnalyticalConfig,
    CoEmulationConfig,
    CoEmulationResult,
    ConventionalCoEmulation,
    DomainKind,
    DomainSpec,
    OperatingMode,
    OptimisticCoEmulation,
    PerformanceEstimate,
    SyncChannel,
    Topology,
    available_engines,
    conventional_performance,
    create_engine,
    estimate_performance,
    figure4,
    register_engine,
    sla_summary,
    table2,
)
from .sim.component import Domain
from .orchestration import BatchRunner, RunRecord, RunRequest, RunStore, grid_requests
from .version import package_version
from .workloads import (
    als_streaming_soc,
    build_scenario,
    list_scenarios,
    mixed_soc,
    register_scenario,
    scenario_names,
    single_master_soc,
    sla_streaming_soc,
)

__version__ = package_version()

__all__ = [
    "AnalyticalConfig",
    "BatchRunner",
    "CoEmulationConfig",
    "CoEmulationResult",
    "ConventionalCoEmulation",
    "Domain",
    "DomainKind",
    "DomainSpec",
    "OperatingMode",
    "OptimisticCoEmulation",
    "PerformanceEstimate",
    "RunRecord",
    "RunRequest",
    "RunStore",
    "SyncChannel",
    "Topology",
    "__version__",
    "als_streaming_soc",
    "available_engines",
    "build_scenario",
    "conventional_performance",
    "create_engine",
    "estimate_performance",
    "figure4",
    "grid_requests",
    "list_scenarios",
    "mixed_soc",
    "package_version",
    "register_engine",
    "register_scenario",
    "scenario_names",
    "single_master_soc",
    "sla_streaming_soc",
    "sla_summary",
    "table2",
]
