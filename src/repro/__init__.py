"""repro -- reproduction of "A Prediction Packetizing Scheme for Reducing
Channel Traffic in Transaction-Level Hardware/Software Co-Emulation"
(Lee, Chung, Ahn, Lee and Kyung, DATE 2005).

The package is organised as:

* :mod:`repro.sim` -- cycle-based simulation kernel, checkpointing, time ledger,
* :mod:`repro.ahb` -- AMBA AHB bus substrate (monolithic and split half-bus models),
* :mod:`repro.channel` -- simulator-accelerator channel timing / traffic model,
* :mod:`repro.accelerator` -- the emulated simulation accelerator,
* :mod:`repro.core` -- the prediction packetizing scheme itself (the paper's
  contribution): predictors, Leader Output Buffer, channel wrappers, rollback,
  SLA/ALS engines, the conventional baseline and the analytical model,
* :mod:`repro.workloads` -- synthetic traffic and SoC configurations,
* :mod:`repro.analysis` -- metrics, sweeps and report rendering.

Quick start::

    from repro import (
        CoEmulationConfig, OperatingMode, OptimisticCoEmulation,
        ConventionalCoEmulation, als_streaming_soc,
    )

    spec = als_streaming_soc()
    sim_hbm, acc_hbm, _ = spec.build_split()
    config = CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=2000)
    result = OptimisticCoEmulation(sim_hbm, acc_hbm, config).run()
    print(result.performance_cycles_per_second)
"""

from .core import (
    AnalyticalConfig,
    CoEmulationConfig,
    CoEmulationResult,
    ConventionalCoEmulation,
    OperatingMode,
    OptimisticCoEmulation,
    PerformanceEstimate,
    conventional_performance,
    estimate_performance,
    figure4,
    sla_summary,
    table2,
)
from .workloads import (
    als_streaming_soc,
    mixed_soc,
    single_master_soc,
    sla_streaming_soc,
)

__version__ = "1.0.0"

__all__ = [
    "AnalyticalConfig",
    "CoEmulationConfig",
    "CoEmulationResult",
    "ConventionalCoEmulation",
    "OperatingMode",
    "OptimisticCoEmulation",
    "PerformanceEstimate",
    "__version__",
    "als_streaming_soc",
    "conventional_performance",
    "estimate_performance",
    "figure4",
    "mixed_soc",
    "single_master_soc",
    "sla_streaming_soc",
    "sla_summary",
    "table2",
]
