"""Command-line interface.

Exposes the reproduction's experiments without writing any Python::

    python -m repro table2                  # Table 2 (analytical)
    python -m repro figure4                 # Figure 4 (analytical, ASCII chart)
    python -m repro sla                     # SLA summary
    python -m repro conventional            # conventional baselines
    python -m repro mechanism --cycles 400  # protocol-level accuracy sweep
    python -m repro run --mode als --cycles 1000 --accuracy 0.9

Every sub-command prints a plain-text table (and, where applicable, the
paper's published values next to the reproduced ones).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .analysis.report import Series, render_ascii_chart, render_table
from .analysis.sweep import accuracy_sweep_mechanism, run_engine
from .core import CoEmulationConfig, OperatingMode
from .core.analytical import (
    AnalyticalConfig,
    PAPER_CONVENTIONAL_100K,
    PAPER_CONVENTIONAL_1000K,
    PAPER_TABLE2,
    conventional_performance,
    figure4,
    sla_summary,
    table2,
)
from .workloads import als_streaming_soc, mixed_soc, sla_streaming_soc


def _cmd_table2(args: argparse.Namespace) -> str:
    rows = []
    for estimate in table2():
        paper = PAPER_TABLE2[round(estimate.prediction_accuracy, 3)]
        rows.append(
            [
                f"{estimate.prediction_accuracy:.3f}",
                f"{estimate.t_acc:.2e}",
                f"{estimate.t_channel:.2e}",
                f"{estimate.performance / 1000:.0f}k",
                f"{paper['performance'] / 1000:.0f}k",
                f"{estimate.ratio:.2f}",
                f"{paper['ratio']:.2f}",
            ]
        )
    return render_table(
        ["accuracy", "Tacc", "Tch", "perf (repro)", "perf (paper)", "ratio (repro)", "ratio (paper)"],
        rows,
        title="Table 2: Performance of ALS (analytical reproduction vs paper)",
    )


def _cmd_figure4(args: argparse.Namespace) -> str:
    markers = {
        "Sim=100k, LOBdepth=64": "a",
        "Sim=100k, LOBdepth=8": "b",
        "Sim=1000k, LOBdepth=64": "C",
        "Sim=1000k, LOBdepth=8": "D",
    }
    series = [
        Series(
            label=label,
            x=[e.prediction_accuracy for e in estimates],
            y=[e.performance for e in estimates],
            marker=markers.get(label, "*"),
        )
        for label, estimates in figure4().items()
    ]
    return render_ascii_chart(
        series,
        title="Figure 4: ALS performance vs prediction accuracy",
        x_label="prediction accuracy",
        y_label="cycles/s",
        reference_lines={
            "conventional @1000k": PAPER_CONVENTIONAL_1000K,
            "conventional @100k": PAPER_CONVENTIONAL_100K,
        },
    )


def _cmd_sla(args: argparse.Namespace) -> str:
    summary = sla_summary()
    rows = [
        [
            f"{int(speed / 1000)}k",
            f"{values['max_gain']:.2f}",
            f"{values['max_performance'] / 1000:.0f}k",
            f"{values['breakeven_accuracy']:.2f}",
            f"{values['conventional_performance'] / 1000:.1f}k",
        ]
        for speed, values in sorted(summary.items())
    ]
    return render_table(
        ["simulator speed", "max gain", "max perf", "break-even accuracy", "conventional"],
        rows,
        title="SLA summary (paper: gains 3.25 / 15.34, break-even 0.98 / 0.70)",
    )


def _cmd_conventional(args: argparse.Namespace) -> str:
    rows = []
    for speed, paper in ((1_000_000.0, PAPER_CONVENTIONAL_1000K), (100_000.0, PAPER_CONVENTIONAL_100K)):
        perf = conventional_performance(AnalyticalConfig(simulator_cycles_per_second=speed))
        rows.append([f"{int(speed / 1000)}k", f"{perf / 1000:.1f}k", f"{paper / 1000:.1f}k"])
    return render_table(
        ["simulator speed", "reproduced", "paper"],
        rows,
        title="Conventional (lock-step) co-emulation performance",
    )


_SOC_FACTORIES = {
    "als_streaming": als_streaming_soc,
    "sla_streaming": sla_streaming_soc,
    "mixed": mixed_soc,
}


def _cmd_mechanism(args: argparse.Namespace) -> str:
    spec = _SOC_FACTORIES[args.soc]()
    base = CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=args.cycles)
    conventional = run_engine(
        spec, CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=args.cycles)
    )
    points = accuracy_sweep_mechanism(spec, base, args.accuracies)
    rows = [
        [
            point.label,
            f"{point.result.performance_cycles_per_second / 1000:.1f}k",
            f"{point.result.speedup_over(conventional):.2f}",
            str(point.result.transitions["rollbacks"]),
            str(point.result.channel["accesses"]),
        ]
        for point in points
    ]
    rows.append(
        [
            "conventional",
            f"{conventional.performance_cycles_per_second / 1000:.1f}k",
            "1.00",
            "0",
            str(conventional.channel["accesses"]),
        ]
    )
    return render_table(
        ["accuracy", "performance", "gain", "rollbacks", "channel accesses"],
        rows,
        title=f"Mechanism-level ALS sweep on '{args.soc}' ({args.cycles} cycles)",
    )


def _cmd_run(args: argparse.Namespace) -> str:
    spec = _SOC_FACTORIES[args.soc]()
    config = CoEmulationConfig(
        mode=OperatingMode(args.mode),
        total_cycles=args.cycles,
        lob_depth=args.lob_depth,
        forced_accuracy=args.accuracy,
    )
    result = run_engine(spec, config)
    rows = [
        ["mode", result.mode.value],
        ["committed cycles", str(result.committed_cycles)],
        ["performance", f"{result.performance_cycles_per_second / 1000:.1f} kcycles/s"],
        ["Tsim / Tacc", f"{result.tsim:.2e} / {result.tacc:.2e}"],
        ["Tstore / Trestore", f"{result.tstore:.2e} / {result.trestore:.2e}"],
        ["Tch", f"{result.tchannel:.2e}"],
        ["channel accesses", str(result.channel["accesses"])],
        ["prediction accuracy", f"{result.prediction.get('accuracy', 1.0):.3f}"],
        ["rollbacks", str(result.transitions.get("rollbacks", 0))],
        ["monitors clean", str(result.monitors_ok)],
    ]
    return render_table(["quantity", "value"], rows, title=f"Co-emulation run on '{args.soc}'")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the DATE 2005 prediction packetizing scheme",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="Table 2 (analytical)").set_defaults(func=_cmd_table2)
    sub.add_parser("figure4", help="Figure 4 (analytical, ASCII)").set_defaults(func=_cmd_figure4)
    sub.add_parser("sla", help="SLA summary").set_defaults(func=_cmd_sla)
    sub.add_parser("conventional", help="conventional baselines").set_defaults(
        func=_cmd_conventional
    )

    mechanism = sub.add_parser("mechanism", help="protocol-level accuracy sweep")
    mechanism.add_argument("--cycles", type=int, default=400)
    mechanism.add_argument("--soc", choices=sorted(_SOC_FACTORIES), default="als_streaming")
    mechanism.add_argument(
        "--accuracies",
        type=float,
        nargs="+",
        default=[1.0, 0.99, 0.9, 0.6],
    )
    mechanism.set_defaults(func=_cmd_mechanism)

    run = sub.add_parser("run", help="one co-emulation run")
    run.add_argument("--mode", choices=[m.value for m in OperatingMode], default="als")
    run.add_argument("--cycles", type=int, default=1000)
    run.add_argument("--lob-depth", type=int, default=64)
    run.add_argument("--accuracy", type=float, default=None)
    run.add_argument("--soc", choices=sorted(_SOC_FACTORIES), default="als_streaming")
    run.set_defaults(func=_cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    print(args.func(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
