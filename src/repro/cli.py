"""Command-line interface.

Exposes the reproduction's experiments without writing any Python::

    python -m repro table2                  # Table 2 (analytical)
    python -m repro figure4                 # Figure 4 (analytical, ASCII chart)
    python -m repro sla                     # SLA summary
    python -m repro conventional            # conventional baselines
    python -m repro scenarios               # the workload catalog
    python -m repro mechanism --cycles 400  # protocol-level accuracy sweep
    python -m repro run --mode als --cycles 1000 --accuracy 0.9
    python -m repro sweep --scenarios als_streaming mixed --jobs 4
    python -m repro sweep --cache .repro-cache --output runs.jsonl --resume
    python -m repro sweep --fleet 4 --cache /shared/sweep --output runs.jsonl
    python -m repro worker --cache /shared/sweep   # join from any host
    python -m repro report --quick --cache .repro-cache --out artifacts

Every sub-command prints a plain-text table (and, where applicable, the
paper's published values next to the reproduced ones).  Engine selection goes
through the engine registry and workloads through the scenario catalog, so
plugins registered by downstream code appear here automatically.  A failing
sub-command exits non-zero with the error on stderr, so the CLI is scriptable
in CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .analysis.artifacts import run_pipeline, write_artifacts
from .analysis.fleet import render_fleet_stats
from .analysis.metrics import per_domain_utilisation, summarize_counts, trace_replay_share
from .analysis.report import Series, render_ascii_chart, render_table
from .channel.faults import ChannelDegradedError, ChannelFaultConfig
from .core.topology import Topology
from .version import package_version
from .core.analytical import (
    AnalyticalConfig,
    PAPER_CONVENTIONAL_100K,
    PAPER_CONVENTIONAL_1000K,
    PAPER_TABLE2,
    conventional_performance,
    figure4,
    sla_summary,
    table2,
)
from .core.modes import OperatingMode
from .orchestration import (
    DEFAULT_LEASE_TTL,
    DEFAULT_POLL_INTERVAL,
    BatchRunner,
    ChaosConfig,
    CheckpointPolicy,
    DurableRunEvents,
    EXIT_CODES,
    ResultCache,
    RunFailure,
    RunRequest,
    RunStore,
    SupervisorPolicy,
    execute_request,
    execute_request_durable,
    failures_path,
    grid_requests,
    load_quarantine,
    plan_resume,
    quarantine_report,
    run_fleet,
    run_supervised,
    run_supervised_batch,
    run_worker,
    sweep_exit_code,
    write_failures,
)
from .workloads.catalog import build_scenario, list_scenarios, scenario_names


def _parse_topology(text: Optional[str]) -> Optional[Dict[str, Any]]:
    """Parse a ``--topology`` argument: inline JSON or a path to a JSON file.

    Returns the serialised-topology dict (validated by round-tripping it
    through :meth:`Topology.from_dict`) or ``None`` when no override given.
    """
    if text is None:
        return None
    stripped = text.strip()
    if stripped.startswith("{"):
        payload = json.loads(stripped)
    else:
        payload = json.loads(Path(text).read_text())
    return Topology.from_dict(payload).as_dict()


def _parse_faults(text: Optional[str], loss: Optional[float] = None) -> Optional[Dict[str, Any]]:
    """Parse ``--faults`` (inline JSON or a path) plus the ``--loss`` shortcut.

    Returns a serialised :class:`ChannelFaultConfig` dict (validated by
    round-tripping it) or ``None`` when neither option was given.  ``--loss``
    alone builds a pure i.i.d.-loss config; combined with ``--faults`` it
    overrides that config's ``loss_rate``.
    """
    if text is None and loss is None:
        return None
    if text is None:
        payload: Dict[str, Any] = {}
    else:
        stripped = text.strip()
        if stripped.startswith("{"):
            payload = json.loads(stripped)
        else:
            payload = json.loads(Path(text).read_text())
    if loss is not None:
        payload["loss_rate"] = loss
    return ChannelFaultConfig.from_dict(payload).as_dict()


def _scenario_domains(name: str) -> str:
    """The ``a+b+c`` topology rendering of a catalog scenario."""
    return build_scenario(name).resolved_topology().describe()


def _checkpoint_policy(args: argparse.Namespace) -> Optional[CheckpointPolicy]:
    """The :class:`CheckpointPolicy` requested by ``--checkpoint-*`` flags,
    or ``None`` when neither flag was given (durability stays opt-in)."""
    if args.checkpoint_every is None and args.checkpoint_seconds is None:
        return None
    return CheckpointPolicy(
        every_cycles=args.checkpoint_every,
        every_seconds=args.checkpoint_seconds,
    )


def _chaos_config(args: argparse.Namespace) -> Optional[ChaosConfig]:
    """The :class:`ChaosConfig` requested by ``--chaos-*`` flags, or ``None``
    when every probability is zero (no chaos)."""
    if not (args.chaos_kill or args.chaos_hang or args.chaos_disk_full):
        return None
    return ChaosConfig(
        seed=args.chaos_seed,
        kill_probability=args.chaos_kill,
        hang_probability=args.chaos_hang,
        disk_full_probability=args.chaos_disk_full,
        hang_seconds=args.chaos_hang_seconds,
        once=not args.chaos_every_attempt,
    )


def _render_failures(failures: List[RunFailure], title: str) -> str:
    """A quarantine table (deterministic fields only, so stdout-safe)."""
    rows = [
        [
            failure.scenario,
            failure.mode,
            failure.label,
            failure.kind,
            str(failure.attempts),
            str(failure.exit_code),
            failure.message.splitlines()[-1] if failure.message else "-",
        ]
        for failure in failures
    ]
    return render_table(
        ["scenario", "mode", "label", "kind", "attempts", "exit code", "message"],
        rows,
        title=title,
    )


def _write_quarantine_report(path: str, failures: List[RunFailure]) -> None:
    """Write the machine-readable quarantine summary for CI to branch on."""
    report = quarantine_report(failures)
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(
        f"quarantine: wrote report for {report['total']} failure(s) to {path}",
        file=sys.stderr,
    )


def _cmd_table2(args: argparse.Namespace) -> str:
    rows = []
    for estimate in table2():
        paper = PAPER_TABLE2[round(estimate.prediction_accuracy, 3)]
        rows.append(
            [
                f"{estimate.prediction_accuracy:.3f}",
                f"{estimate.t_acc:.2e}",
                f"{estimate.t_channel:.2e}",
                f"{estimate.performance / 1000:.0f}k",
                f"{paper['performance'] / 1000:.0f}k",
                f"{estimate.ratio:.2f}",
                f"{paper['ratio']:.2f}",
            ]
        )
    return render_table(
        ["accuracy", "Tacc", "Tch", "perf (repro)", "perf (paper)", "ratio (repro)", "ratio (paper)"],
        rows,
        title="Table 2: Performance of ALS (analytical reproduction vs paper)",
    )


def _cmd_figure4(args: argparse.Namespace) -> str:
    markers = {
        "Sim=100k, LOBdepth=64": "a",
        "Sim=100k, LOBdepth=8": "b",
        "Sim=1000k, LOBdepth=64": "C",
        "Sim=1000k, LOBdepth=8": "D",
    }
    series = [
        Series(
            label=label,
            x=[e.prediction_accuracy for e in estimates],
            y=[e.performance for e in estimates],
            marker=markers.get(label, "*"),
        )
        for label, estimates in figure4().items()
    ]
    return render_ascii_chart(
        series,
        title="Figure 4: ALS performance vs prediction accuracy",
        x_label="prediction accuracy",
        y_label="cycles/s",
        reference_lines={
            "conventional @1000k": PAPER_CONVENTIONAL_1000K,
            "conventional @100k": PAPER_CONVENTIONAL_100K,
        },
    )


def _cmd_sla(args: argparse.Namespace) -> str:
    summary = sla_summary()
    rows = [
        [
            f"{int(speed / 1000)}k",
            f"{values['max_gain']:.2f}",
            f"{values['max_performance'] / 1000:.0f}k",
            f"{values['breakeven_accuracy']:.2f}",
            f"{values['conventional_performance'] / 1000:.1f}k",
        ]
        for speed, values in sorted(summary.items())
    ]
    return render_table(
        ["simulator speed", "max gain", "max perf", "break-even accuracy", "conventional"],
        rows,
        title="SLA summary (paper: gains 3.25 / 15.34, break-even 0.98 / 0.70)",
    )


def _cmd_conventional(args: argparse.Namespace) -> str:
    rows = []
    for speed, paper in ((1_000_000.0, PAPER_CONVENTIONAL_1000K), (100_000.0, PAPER_CONVENTIONAL_100K)):
        perf = conventional_performance(AnalyticalConfig(simulator_cycles_per_second=speed))
        rows.append([f"{int(speed / 1000)}k", f"{perf / 1000:.1f}k", f"{paper / 1000:.1f}k"])
    return render_table(
        ["simulator speed", "reproduced", "paper"],
        rows,
        title="Conventional (lock-step) co-emulation performance",
    )


def _profile_top_table(stats, n: int) -> str:
    """Render the top ``n`` profiled functions by cumulative time."""
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    )[:n]
    rows = []
    for (filename, lineno, funcname), (_, ncalls, tottime, cumtime, _) in entries:
        if filename == "~":  # builtins have no file
            location = funcname
        else:
            location = f"{'/'.join(Path(filename).parts[-2:])}:{lineno}({funcname})"
        rows.append([str(ncalls), f"{tottime:.3f}", f"{cumtime:.3f}", location])
    return render_table(
        ["ncalls", "tottime", "cumtime", "function"],
        rows,
        title=f"Top {len(rows)} functions by cumulative time",
    )


def _cmd_scenarios(args: argparse.Namespace) -> str:
    infos = list_scenarios(tag=args.tag)
    headers = ["scenario", "domains", "tags", "masters", "slaves", "description"]
    if args.engine:
        headers.insert(2, "engines")
        # Every mechanism engine (the pseudo-engines that never touch the
        # split are excluded) is swept over every catalog scenario by the
        # equivalence suites, so coverage is catalog-wide by construction.
        from .core.engine import available_engines

        covered = ", ".join(
            sorted(name for name, info in available_engines().items() if info.requires_split)
        )
    rows = []
    for info in infos:
        spec = info.builder()
        row = [
            info.name,
            spec.resolved_topology().describe(),
            ", ".join(info.tags) or "-",
            str(len(spec.masters)),
            str(len(spec.slaves)),
            info.description,
        ]
        if args.engine:
            row.insert(2, covered)
        rows.append(row)
    suffix = f" tagged {args.tag!r}" if args.tag else ""
    return render_table(
        headers,
        rows,
        title=f"Scenario catalog: {len(infos)} registered SoC configuration(s){suffix}",
    )


def _cmd_mechanism(args: argparse.Namespace) -> str:
    requests = [
        RunRequest(
            scenario=args.soc,
            mode="conservative",
            cycles=args.cycles,
            label="conventional",
        )
    ] + [
        RunRequest(
            scenario=args.soc,
            mode="als",
            cycles=args.cycles,
            accuracy=accuracy,
            label=f"p={accuracy:g}",
        )
        for accuracy in args.accuracies
    ]
    records = BatchRunner(jobs=args.jobs).run(requests)
    conventional, points = records[0], records[1:]
    rows = [
        [
            record.label,
            f"{record.performance / 1000:.1f}k",
            f"{record.performance / conventional.performance:.2f}",
            str(record.transitions["rollbacks"]),
            str(record.channel["accesses"]),
        ]
        for record in points
    ]
    rows.append(
        [
            "conventional",
            f"{conventional.performance / 1000:.1f}k",
            "1.00",
            "0",
            str(conventional.channel["accesses"]),
        ]
    )
    return render_table(
        ["accuracy", "performance", "gain", "rollbacks", "channel accesses"],
        rows,
        title=f"Mechanism-level ALS sweep on '{args.soc}' ({args.cycles} cycles)",
    )


def _kernel_refusals(engine) -> Dict[str, int]:
    """Aggregate :class:`~repro.sim.kernel.CycleKernel` fast-forward refusal
    tallies reachable from an engine.

    The co-emulation engines drive the half bus models directly, but
    kernel-backed components (reference buses, accelerator wrappers) may hang
    off the hosts; the probe is defensive so either layout reports.
    """
    totals: Dict[str, int] = {}
    for host in getattr(engine, "_host_list", None) or []:
        stats = getattr(getattr(host, "kernel", None), "stats", None)
        refusals = getattr(stats, "fast_forward_refusals", None)
        if refusals:
            for reason, count in refusals.items():
                totals[reason] = totals.get(reason, 0) + count
    return totals


def _cmd_run(args: argparse.Namespace) -> Union[str, Tuple[str, int]]:
    topology = _parse_topology(args.topology)
    channel_faults = _parse_faults(args.faults, args.loss)
    request = RunRequest(
        scenario=args.soc,
        mode=args.mode,
        cycles=args.cycles,
        lob_depth=args.lob_depth,
        accuracy=args.accuracy,
        engine=args.engine,
        config_overrides={"trace_replay": True} if args.trace else {},
        topology=topology,
        channel_faults=channel_faults,
    )
    if args.profile:
        # Profile exactly the engine loop (scenario build and result
        # packaging excluded) so perf PRs start from data, not guesses.
        import cProfile
        import pstats

        spec = build_scenario(request.scenario, **dict(request.scenario_params))
        config, partition = spec.prepare_run(request.build_config())
        from .core import create_engine

        engine = create_engine(config, partition=partition, engine=request.engine)
        profiler = cProfile.Profile()
        profiler.enable()
        profiled_result = engine.run()
        profiler.disable()
        profiler.dump_stats(args.profile)
        top = pstats.Stats(profiler)
        print(
            f"profile: {int(top.total_calls)} calls in {top.total_tt:.3f}s "
            f"-> {args.profile} (inspect with `python -m pstats {args.profile}`)",
            file=sys.stderr,
        )
        if args.profile_top > 0:
            print(_profile_top_table(top, args.profile_top), file=sys.stderr)
        # Fast-forward diagnostics for perf work: why cycles ran scalar.
        trace = profiled_result.trace_replay
        if trace:
            share = trace_replay_share(trace, profiled_result.committed_cycles)
            bailouts = summarize_counts(trace.get("bailouts", {})) or "none"
            print(
                f"profile: trace replay {'on' if trace.get('enabled') else 'off'}, "
                f"{trace.get('replayed_cycles', 0)} cycles replayed ({share:.1%}), "
                f"bailouts: {bailouts}",
                file=sys.stderr,
            )
        refusals = _kernel_refusals(engine)
        if refusals:
            print(
                f"profile: kernel fast-forward refusals: {summarize_counts(refusals)}",
                file=sys.stderr,
            )
    checkpoint = _checkpoint_policy(args)
    if args.deadline is not None or args.max_retries is not None:
        # Supervised: the attempt runs in a watchdogged child and retries
        # resume from the latest snapshot.  Without --snapshot-dir the
        # snapshots are scoped to this invocation (retries still resume).
        policy = SupervisorPolicy(
            deadline=args.deadline,
            max_retries=2 if args.max_retries is None else args.max_retries,
            checkpoint=checkpoint or CheckpointPolicy(),
        )
        snapshot_dir = args.snapshot_dir or tempfile.mkdtemp(prefix="repro-snap-")
        outcome = run_supervised(request, snapshot_dir, policy=policy)
        if isinstance(outcome, RunFailure):
            print(
                f"run: {outcome.kind} after {outcome.attempts} attempt(s): "
                f"{outcome.message.splitlines()[-1] if outcome.message else '-'}",
                file=sys.stderr,
            )
            return (
                _render_failures([outcome], title=f"Run quarantined on '{args.soc}'"),
                outcome.exit_code,
            )
        record = outcome
    elif checkpoint is not None or args.snapshot_dir is not None:
        # Durable (unsupervised): write snapshots, resume from a leftover
        # one if a previous invocation was interrupted mid-run.
        snapshot_dir = args.snapshot_dir or ".repro-snapshots"
        events = DurableRunEvents()
        record = execute_request_durable(
            request,
            snapshot_dir,
            policy=checkpoint or CheckpointPolicy(),
            events=events,
        )
        if events.resumed_from_cycle is not None:
            print(
                f"durable: resumed from cycle {events.resumed_from_cycle}",
                file=sys.stderr,
            )
        if events.snapshots_written or events.snapshot_write_errors:
            print(
                f"durable: {events.snapshots_written} snapshot(s) written, "
                f"{events.snapshot_write_errors} write error(s)",
                file=sys.stderr,
            )
    else:
        record = execute_request(request)
    times = record.per_cycle_times
    if topology is not None:
        domains = Topology.from_dict(topology).describe()
    else:
        domains = _scenario_domains(args.soc)
    rows = [
        ["mode", record.mode],
        ["engine", record.engine],
        ["domains", domains],
        ["committed cycles", str(record.committed_cycles)],
        ["performance", f"{record.performance / 1000:.1f} kcycles/s"],
        [
            "Tsim / Tacc",
            f"{times.get('simulator', 0.0):.2e} / {times.get('accelerator', 0.0):.2e}",
        ],
        ["Tstore / Trestore", f"{times['state_store']:.2e} / {times['state_restore']:.2e}"],
        ["Tch", f"{times['channel']:.2e}"],
        ["channel accesses", str(record.channel.get("accesses", 0))],
        ["prediction accuracy", f"{record.prediction.get('accuracy', 1.0):.3f}"],
        ["rollbacks", str(record.transitions.get("rollbacks", 0))],
        ["monitors clean", str(record.monitors_ok)],
    ]
    trace = record.trace_replay
    if trace:
        share = trace_replay_share(trace, record.committed_cycles)
        rows.append(
            [
                "trace replay",
                f"{trace.get('replayed_cycles', 0)} cycles ({share:.1%}), "
                f"{trace.get('verified_periods', 0)} verified period(s), "
                f"{trace.get('replay_hits', 0)} hit(s)",
            ]
        )
        bailouts = trace.get("bailouts") or {}
        if bailouts:
            rows.append(["trace bailouts", summarize_counts(bailouts)])
    faults = record.channel.get("faults")
    if faults is not None:
        rows.append(
            [
                "channel faults",
                f"{faults['drops']} drop / {faults['retransmissions']} retx / "
                f"{faults['corruptions']} corrupt / {faults['duplicates']} dup",
            ]
        )
    # Sorted so the rendering is stable no matter where the record came from
    # (a live engine keeps insertion order; a supervised child or cache hit
    # round-trips through canonical JSON, which sorts keys).
    for domain, share in sorted(per_domain_utilisation(times).items()):
        rows.append([f"utilisation[{domain}]", f"{share:.1%}"])
    return render_table(["quantity", "value"], rows, title=f"Co-emulation run on '{args.soc}'")


def _cmd_sweep(args: argparse.Namespace) -> Union[str, Tuple[str, int]]:
    if args.tag and args.scenarios is not None:
        raise ValueError("--scenarios and --tag are mutually exclusive")
    if args.tag:
        scenarios = scenario_names(tag=args.tag)
        if not scenarios:
            raise ValueError(f"no scenarios tagged {args.tag!r}")
    else:
        scenarios = args.scenarios if args.scenarios is not None else ["als_streaming"]
    accuracies: List[Optional[float]] = args.accuracies if args.accuracies else [None]
    topology = _parse_topology(args.topology)
    channel_faults = _parse_faults(args.faults, args.loss)
    requests = grid_requests(
        scenarios=scenarios,
        modes=args.modes,
        accuracies=accuracies,
        lob_depths=args.lob_depths,
        cycles=args.cycles,
        base_seed=args.seed,
        engine=args.engine,
        config_overrides={"trace_replay": True} if args.trace else {},
        topology=topology,
        channel_faults=channel_faults,
    )
    cache = ResultCache(args.cache) if args.cache else None
    store = RunStore(args.output) if args.output else None
    runner = BatchRunner(jobs=args.jobs)
    checkpoint = _checkpoint_policy(args)
    chaos = _chaos_config(args)
    max_retries = 2 if args.max_retries is None else args.max_retries
    supervised = (
        args.deadline is not None
        or args.max_retries is not None
        or chaos is not None
    )
    failures: List[RunFailure] = []
    if args.fleet is not None:
        if not args.cache:
            raise ValueError(
                "--fleet requires --cache (the shared coordination directory)"
            )
        if args.resume:
            raise ValueError(
                "--fleet already reconciles crash-tolerantly; drop --resume"
            )
        if args.jobs != 1:
            raise ValueError(
                "--fleet and --jobs are mutually exclusive (fleet workers are "
                "processes already)"
            )
        if args.deadline is not None:
            raise ValueError(
                "--deadline supervises local child processes; fleet workers "
                "use lease stealing instead (tune --fleet-ttl)"
            )
        records, fleet_stats = run_fleet(
            requests,
            cache_dir=args.cache,
            workers=args.fleet,
            store=store,
            ttl=args.fleet_ttl,
            poll_interval=args.fleet_poll,
            kill_after=args.fleet_kill_after,
            checkpoint=checkpoint,
            chaos=chaos,
            max_retries=max_retries,
            log=lambda message: print(f"fleet: {message}", file=sys.stderr),
        )
        failures = load_quarantine(args.cache, fleet_stats.sweep_id)
        # Operational stats go to stderr: stdout must stay byte-identical
        # to the same grid swept with --jobs 1.
        print(render_fleet_stats(fleet_stats), file=sys.stderr)
        print(f"fleet: {fleet_stats.summary()}", file=sys.stderr)
    elif supervised:
        if args.resume:
            raise ValueError(
                "--resume cannot combine with supervision; supervised sweeps "
                "already resume retries from their own snapshots"
            )
        policy = SupervisorPolicy(
            deadline=args.deadline,
            max_retries=max_retries,
            checkpoint=checkpoint or CheckpointPolicy(),
        )
        snapshot_dir = args.snapshot_dir or tempfile.mkdtemp(prefix="repro-snap-")
        records, failures = run_supervised_batch(
            requests,
            snapshot_dir,
            policy=policy,
            jobs=args.jobs,
            cache=cache,
            chaos=chaos,
            chaos_state_dir=str(Path(snapshot_dir) / "chaos"),
        )
        print(
            f"supervise: {len(records)} record(s), "
            f"{len(failures)} quarantined",
            file=sys.stderr,
        )
    elif args.resume:
        if store is None:
            raise ValueError("--resume requires --output (the store to resume)")
        plan = plan_resume(requests, store)
        executed = runner.run(plan.missing, cache=cache)
        by_id = dict(plan.reusable)
        for record in executed:
            by_id[record.request_id] = record
        # Rewriting the whole store in grid order makes a resumed store
        # byte-identical to one produced by an uninterrupted sweep.
        records = [by_id[request.request_id] for request in requests]
        print(f"resume: {plan.summary()}", file=sys.stderr)
    else:
        records = runner.run(requests, cache=cache)
    if cache is not None and args.fleet is None:
        print(f"cache: {cache.stats.summary()}", file=sys.stderr)
    if store is not None and args.fleet is None:
        # The fleet path's reconciliation already wrote the store.
        store.write(records)
    if store is not None:
        # Failures go to a sidecar, never the store: the store's bytes stay
        # identical to a fully healthy serial sweep.  An empty failure list
        # removes a stale sidecar from an earlier attempt.
        write_failures(failures_path(args.output), failures)
    if args.quarantine_report is not None:
        _write_quarantine_report(args.quarantine_report, failures)
    if failures:
        print(
            _render_failures(
                failures, title=f"Quarantine: {len(failures)} failed point(s)"
            ),
            file=sys.stderr,
        )
    if topology is not None:
        override_domains = Topology.from_dict(topology).describe()
        domains_by_scenario = {name: override_domains for name in scenarios}
    else:
        domains_by_scenario = {name: _scenario_domains(name) for name in scenarios}
    rows = [
        [
            record.scenario,
            domains_by_scenario.get(record.scenario, "-"),
            record.mode,
            "-" if record.accuracy is None else f"{record.accuracy:g}",
            str(record.lob_depth),
            str(record.committed_cycles),
            f"{record.performance / 1000:.1f}k",
            str(record.channel.get("accesses", 0)),
            str(record.transitions.get("rollbacks", 0)),
            "-"
            if not record.trace_replay
            else f"{trace_replay_share(record.trace_replay, record.committed_cycles):.0%}",
            record.digest,
        ]
        for record in records
    ]
    if args.output:
        # Status goes to stderr so stdout stays a deterministic artefact
        # (byte-identical across --jobs and across output paths).
        print(f"wrote {len(records)} record(s) to {args.output}", file=sys.stderr)
    table = render_table(
        ["scenario", "domains", "mode", "accuracy", "lob", "cycles", "performance",
         "channel accesses", "rollbacks", "trace%", "digest"],
        rows,
        title=f"Sweep grid: {len(records)} run(s) over {len(scenarios)} scenario(s)",
    )
    code = sweep_exit_code(failures)
    return table if code == 0 else (table, code)


def _cmd_worker(args: argparse.Namespace) -> str:
    stats = run_worker(
        args.cache,
        owner=args.owner,
        ttl=args.ttl,
        poll_interval=args.poll,
        kill_after=args.kill_after,
        checkpoint=_checkpoint_policy(args),
        max_retries=2 if args.max_retries is None else args.max_retries,
        drain_on_signal=args.drain_on_signal,
    )
    return render_fleet_stats(stats)


def _cmd_report(args: argparse.Namespace) -> str:
    cache = ResultCache(args.cache) if args.cache else None
    result = run_pipeline(
        quick=args.quick, jobs=args.jobs, cache=cache, names=args.artifacts
    )
    manifest = write_artifacts(result.artifacts, args.out)
    # Execution statistics go to stderr: they differ between cold and warm
    # caches, while stdout (like the artifact files) must not.
    print(f"report: {result.summary()}", file=sys.stderr)
    print(
        f"wrote {len(manifest)} artifact file(s) + MANIFEST.json to {args.out}",
        file=sys.stderr,
    )
    rows = []
    for artifact in result.artifacts:
        if artifact.name.startswith("mechanism_"):
            domains = _scenario_domains(artifact.name[len("mechanism_"):])
        else:
            domains = "-"  # analytical artifacts never build the mechanism
        rows.append(
            [
                artifact.name,
                domains,
                str(len(artifact.rows)),
                manifest[artifact.name + ".csv"][:12],
                artifact.title,
            ]
        )
    return render_table(
        ["artifact", "domains", "rows", "csv sha256", "title"],
        rows,
        title=f"Paper-artifact pipeline: {len(result.artifacts)} artifact(s)"
        f"{' (quick grid)' if args.quick else ''}",
    )


def _add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="CYCLES",
        help="write a durable engine snapshot every N committed cycles "
             "(deterministic cadence; resume is bit-identical)",
    )
    parser.add_argument(
        "--checkpoint-seconds", type=float, default=None, metavar="SECONDS",
        help="write a durable engine snapshot every N wall-clock seconds "
             "(combines with --checkpoint-every: whichever is due first)",
    )


def _add_supervision_args(parser: argparse.ArgumentParser) -> None:
    _add_checkpoint_args(parser)
    parser.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="where durable snapshots live (default: '.repro-snapshots' for "
             "plain durable runs, a fresh temporary directory under "
             "supervision)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="supervise: run each attempt in a child process and SIGKILL it "
             "past this wall-clock budget (exit code 10 when it times out "
             "for good)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="supervise: retry a failed attempt up to N times, resuming "
             "from the latest snapshot; a request that exhausts retries is "
             "quarantined as a poison point (default 2 when supervision is "
             "active)",
    )


def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chaos-seed", type=int, default=0, metavar="SEED",
        help="seed for the deterministic chaos schedule (which requests get "
             "sabotaged, and at which cycle)",
    )
    parser.add_argument(
        "--chaos-kill", type=float, default=0.0, metavar="P",
        help="chaos: share of requests whose process SIGKILLs itself at a "
             "mid-run safe point",
    )
    parser.add_argument(
        "--chaos-hang", type=float, default=0.0, metavar="P",
        help="chaos: share of requests that hang at a mid-run safe point "
             "(pair with --deadline or a fleet lease TTL)",
    )
    parser.add_argument(
        "--chaos-disk-full", type=float, default=0.0, metavar="P",
        help="chaos: share of requests whose snapshot writes fail with "
             "ENOSPC (runs continue; durability degrades)",
    )
    parser.add_argument(
        "--chaos-hang-seconds", type=float, default=120.0, metavar="SECONDS",
        help="chaos: how long an injected hang sleeps (default 120)",
    )
    parser.add_argument(
        "--chaos-every-attempt", action="store_true",
        help="chaos: fire on every attempt instead of once per (request, "
             "action) -- turns sabotaged points into poison points",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the DATE 2005 prediction packetizing scheme",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="Table 2 (analytical)").set_defaults(func=_cmd_table2)
    sub.add_parser("figure4", help="Figure 4 (analytical, ASCII)").set_defaults(func=_cmd_figure4)
    sub.add_parser("sla", help="SLA summary").set_defaults(func=_cmd_sla)
    sub.add_parser("conventional", help="conventional baselines").set_defaults(
        func=_cmd_conventional
    )

    scenarios = sub.add_parser("scenarios", help="list the workload catalog")
    scenarios.add_argument("--tag", default=None, help="only scenarios with this tag")
    scenarios.add_argument(
        "--engine", action="store_true",
        help="add a column listing the registered engines with equivalence "
             "coverage for each scenario",
    )
    scenarios.set_defaults(func=_cmd_scenarios)

    mechanism = sub.add_parser("mechanism", help="protocol-level accuracy sweep")
    mechanism.add_argument("--cycles", type=int, default=400)
    mechanism.add_argument("--soc", choices=scenario_names(), default="als_streaming")
    mechanism.add_argument(
        "--accuracies",
        type=float,
        nargs="+",
        default=[1.0, 0.99, 0.9, 0.6],
    )
    mechanism.add_argument("--jobs", type=int, default=1, help="worker processes")
    mechanism.set_defaults(func=_cmd_mechanism)

    run = sub.add_parser("run", help="one co-emulation run")
    run.add_argument("--mode", choices=[m.value for m in OperatingMode], default="als")
    run.add_argument("--cycles", type=int, default=1000)
    run.add_argument("--lob-depth", type=int, default=64)
    run.add_argument("--accuracy", type=float, default=None)
    run.add_argument("--soc", choices=scenario_names(), default="als_streaming")
    run.add_argument(
        "--engine",
        default=None,
        help="force a registered engine (e.g. 'analytical') instead of the mode default",
    )
    run.add_argument(
        "--topology", default=None, metavar="JSON|PATH",
        help="topology override: inline JSON or a path to a Topology.as_dict() "
             "JSON file (default: the scenario's own topology)",
    )
    run.add_argument(
        "--faults", default=None, metavar="JSON|PATH",
        help="channel-fault override: inline JSON or a path to a "
             "ChannelFaultConfig.as_dict() JSON file (default: the scenario's "
             "own channel; '{}' forces the ideal channel on a faulty scenario)",
    )
    run.add_argument(
        "--loss", type=float, default=None, metavar="RATE",
        help="shortcut: i.i.d. frame-loss rate in [0, 1] (combines with "
             "--faults by overriding its loss_rate)",
    )
    run.add_argument(
        "--trace", action="store_true",
        help="enable periodic trace replay (the cycle-pattern cache); the "
             "result is bit-identical to the scalar engine, only faster on "
             "periodic steady states",
    )
    run.add_argument(
        "--profile", default=None, metavar="OUT.pstats",
        help="cProfile the engine loop of an extra identical run and dump "
             "the stats to this path (inspect with `python -m pstats`)",
    )
    run.add_argument(
        "--profile-top", type=int, default=10, metavar="N",
        help="with --profile: also print the top N functions by cumulative "
             "time as a readable table (default 10; 0 disables the table)",
    )
    _add_supervision_args(run)
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run a scenario x mode x accuracy x LOB grid (parallelisable)"
    )
    sweep.add_argument(
        "--scenarios", nargs="+", default=None, metavar="NAME",
        help="catalog scenarios to sweep (default als_streaming; see 'scenarios')",
    )
    sweep.add_argument("--tag", default=None,
                       help="sweep every scenario with this tag (excludes --scenarios)")
    sweep.add_argument(
        "--modes", nargs="+", default=["conservative", "als"],
        choices=[m.value for m in OperatingMode], metavar="MODE",
    )
    sweep.add_argument(
        "--accuracies", type=float, nargs="*", default=[],
        help="forced prediction accuracies (default: the real predictor)",
    )
    sweep.add_argument("--lob-depths", type=int, nargs="+", default=[64])
    sweep.add_argument("--cycles", type=int, default=300)
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep.add_argument("--seed", type=int, default=2005, help="base seed for the grid")
    sweep.add_argument(
        "--engine", default=None,
        help="force a registered engine for every run (e.g. 'analytical')",
    )
    sweep.add_argument(
        "--trace", action="store_true",
        help="enable periodic trace replay on every grid point (bit-identical "
             "results; the trace%% column shows the replayed-cycle share)",
    )
    sweep.add_argument(
        "--topology", default=None, metavar="JSON|PATH",
        help="topology override applied to every grid point (inline JSON or "
             "a path to a Topology.as_dict() JSON file)",
    )
    sweep.add_argument(
        "--faults", default=None, metavar="JSON|PATH",
        help="channel-fault override applied to every grid point (inline JSON "
             "or a path to a ChannelFaultConfig.as_dict() JSON file)",
    )
    sweep.add_argument(
        "--loss", type=float, default=None, metavar="RATE",
        help="shortcut: i.i.d. frame-loss rate applied to every grid point",
    )
    sweep.add_argument("--output", default=None, metavar="PATH",
                       help="write records to a JSON-lines run store")
    sweep.add_argument("--cache", default=None, metavar="DIR",
                       help="content-addressed result cache; hits skip execution")
    sweep.add_argument(
        "--resume", action="store_true",
        help="reuse intact records already in --output and execute only the "
             "grid points that are missing (tolerates a torn/partial store); "
             "the store is rewritten to exactly this grid",
    )
    sweep.add_argument(
        "--fleet", type=int, default=None, metavar="N",
        help="distributed mode: publish the grid manifest into --cache, spawn "
             "N local work-stealing workers (0 = reconcile-only: finalize a "
             "sweep executed by external `repro worker` processes), restart "
             "crashed workers, and reconcile a store byte-identical to "
             "--jobs 1; workers on other hosts join via `repro worker "
             "--cache DIR` on the same shared directory",
    )
    sweep.add_argument(
        "--fleet-ttl", type=float, default=DEFAULT_LEASE_TTL, metavar="SECONDS",
        help="lease time-to-live: a claim whose heartbeat stalls this long is "
             "stolen; must comfortably exceed the heartbeat interval (ttl/4) "
             f"(default {DEFAULT_LEASE_TTL:g}s)",
    )
    sweep.add_argument(
        "--fleet-poll", type=float, default=DEFAULT_POLL_INTERVAL,
        metavar="SECONDS",
        help="idle re-scan interval for workers and the driver "
             f"(default {DEFAULT_POLL_INTERVAL:g}s)",
    )
    sweep.add_argument(
        "--fleet-kill-after", type=int, default=None, metavar="N",
        help="crash-tolerance test hook: the first worker SIGKILLs itself "
             "while holding its next claim after N executions (CI uses 0 to "
             "guarantee a dangling lease that must be stolen)",
    )
    _add_supervision_args(sweep)
    _add_chaos_args(sweep)
    sweep.add_argument(
        "--quarantine-report", default=None, metavar="PATH",
        help="write a machine-readable JSON summary of quarantined points "
             "(kind counts + full failure records); written even when empty "
             "so CI can assert on it",
    )
    sweep.set_defaults(func=_cmd_sweep)

    worker = sub.add_parser(
        "worker",
        help="join a published fleet sweep from this host (work-stealing; "
             "exits when the shared grid is fully cached)",
    )
    worker.add_argument(
        "--cache", required=True, metavar="DIR",
        help="the sweep's shared cache directory (holds the grid manifest, "
             "claim leases and result shards)",
    )
    worker.add_argument(
        "--owner", default=None,
        help="worker identity in leases and stats (default: hostname-pid)",
    )
    worker.add_argument(
        "--ttl", type=float, default=DEFAULT_LEASE_TTL, metavar="SECONDS",
        help=f"lease time-to-live (default {DEFAULT_LEASE_TTL:g}s; must match "
             "the fleet's order of magnitude, not its exact value)",
    )
    worker.add_argument(
        "--poll", type=float, default=DEFAULT_POLL_INTERVAL, metavar="SECONDS",
        help="idle re-scan interval "
             f"(default {DEFAULT_POLL_INTERVAL:g}s)",
    )
    worker.add_argument(
        "--kill-after", type=int, default=None, metavar="N",
        help="crash-tolerance test hook: SIGKILL self while holding the next "
             "claim after N executions",
    )
    _add_checkpoint_args(worker)
    worker.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="attempts (beyond the first) the *fleet* may spend on a point "
             "before any worker quarantines it as poison (default 2; "
             "tracked in the shared attempt ledger, so it is fleet-wide)",
    )
    worker.add_argument(
        "--drain-on-signal", action="store_true",
        help="on SIGTERM/SIGINT: snapshot the in-flight run, release all "
             "leases, flush stats and exit 0 -- a successor resumes the "
             "point mid-run instead of replaying it",
    )
    worker.set_defaults(func=_cmd_worker)

    report = sub.add_parser(
        "report",
        help="reproduce the paper artifacts (Table 2, Figure 4, mechanism "
             "tables) through the orchestrator into canonical CSV/JSON files",
    )
    report.add_argument("--quick", action="store_true",
                        help="cut-down grids (CI smoke / fast local check)")
    report.add_argument("--jobs", type=int, default=1, help="worker processes")
    report.add_argument("--cache", default=None, metavar="DIR",
                        help="content-addressed result cache; hits skip execution")
    report.add_argument("--out", default="artifacts", metavar="DIR",
                        help="artifact output directory (default: artifacts/)")
    report.add_argument(
        "--artifacts", nargs="+", default=None, metavar="NAME",
        help="only these artifacts (e.g. table2 figure4 mechanism_mixed)",
    )
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        result = args.func(args)
        # Commands report structured outcomes as (text, exit_code); plain
        # strings mean success.  The codes are the supervisor taxonomy
        # (timeout 10, crash 11, poison 12, degraded 13) so scripts and CI
        # branch on *what* failed without parsing output.
        code = 0
        if isinstance(result, tuple):
            result, code = result
        if result:
            print(result)
        return code
    except BrokenPipeError:  # output piped into a closed reader (e.g. head)
        return 0
    except SystemExit:
        raise
    except ChannelDegradedError as exc:
        # A deterministic channel degradation is an expected outcome of the
        # modelled channel, distinct from an operator error.
        print(f"repro: degraded: {exc}", file=sys.stderr)
        return EXIT_CODES["degraded"]
    except Exception as exc:  # scriptability: non-zero exit, error on stderr
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
