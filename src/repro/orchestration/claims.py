"""Atomic lease-file claims for coordinator-free distributed sweeps.

Any number of worker processes -- on one host or on many hosts sharing a
cache directory over a network filesystem -- must agree on who executes
which grid point without a coordinator, a database or a network protocol.
The entire coordination state is a directory of *lease files*, one per
claimed ``request_id``:

* **Claim** -- atomic create-with-content: the lease payload is written to a
  private temp file which is then hard-linked to the lease path
  (:func:`os.link` fails with ``EEXIST`` exactly when someone else holds the
  claim, and works on NFS, the classic shared-directory case).  Filesystems
  without hard links fall back to ``O_CREAT | O_EXCL``.
* **Heartbeat** -- the owner periodically rewrites its lease (temp file +
  :func:`os.replace`) with an incremented counter, proving it is alive.
* **Expiry** -- observation-based, never wall-clock-based: a lease is
  stealable only after *this observer* has watched its heartbeat counter
  stand still for a full TTL of **local monotonic time**.  Hosts therefore
  never compare clocks (skew and mtime granularity are irrelevant); the
  price is that a fresh observer waits one TTL before its first steal.
* **Steal** -- atomic :func:`os.replace` of a new lease over the expired
  one, then a read-back: whoever's lease survives the last replace owns the
  claim; losers see a foreign owner and walk away.

The races that remain are *benign by construction*: runs are deterministic
and results are content-addressed, so the worst a lost race can cost is one
redundant execution whose record is byte-identical to the winner's (the
result cache keeps whichever record landed first).  What the protocol
guarantees is liveness (a dead worker's claims are stolen after one TTL) and
no concurrent double-execution while owners heartbeat faster than the TTL.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Set, Tuple, Union

#: Default lease time-to-live in seconds: a claim whose heartbeat has not
#: advanced for this long (as observed by one prospective stealer's monotonic
#: clock) is considered abandoned.  Tune it to the deployment: it must exceed
#: the heartbeat interval by a comfortable factor (the pump defaults to
#: ``ttl / 4``), and it bounds how long a crashed worker's in-flight points
#: stay unexecutable.  Lower it for fast local fleets, raise it for loaded
#: hosts or high-latency shared filesystems.
DEFAULT_LEASE_TTL = 30.0

#: Sentinel owner recorded for lease files that cannot be parsed (a torn
#: write by a crashed claimer).  Corrupt leases block like any other foreign
#: lease and become stealable after one TTL of observed stillness.
CORRUPT_OWNER = "<corrupt>"


def default_owner() -> str:
    """A worker identity unique across the hosts sharing a cache directory."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass(frozen=True)
class Lease:
    """One parsed lease file: who claims the point and their progress proof."""

    request_id: str
    owner: str
    heartbeat: int
    stamp: float  # wall-clock at last write; informational only, never compared

    def payload(self) -> str:
        return (
            json.dumps(
                {
                    "request_id": self.request_id,
                    "owner": self.owner,
                    "heartbeat": self.heartbeat,
                    "stamp": self.stamp,
                },
                sort_keys=True,
            )
            + "\n"
        )

    @property
    def fingerprint(self) -> Tuple[str, int]:
        """What an observer tracks: any change restarts the expiry window."""
        return (self.owner, self.heartbeat)


@dataclass
class ClaimStats:
    """Counters accumulated by one :class:`ClaimBoard` instance."""

    claimed: int = 0  # fresh O_EXCL-style claims
    stolen: int = 0  # expired leases taken over
    released: int = 0  # own leases removed after completion
    lost: int = 0  # leases observed to have been stolen from us

    def as_dict(self) -> Dict[str, int]:
        return {
            "claimed": self.claimed,
            "stolen": self.stolen,
            "released": self.released,
            "lost": self.lost,
        }


class ClaimBoard:
    """Claim, heartbeat, release and steal leases in a shared directory.

    ``clock`` must be a monotonic float supplier; it is injectable so tests
    (and the hypothesis interleaving suite) can drive expiry deterministically.
    """

    def __init__(
        self,
        root: Union[str, Path],
        owner: Optional[str] = None,
        ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = time.monotonic,
        steal_jitter: float = 0.0,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.root = Path(root)
        self.owner = owner if owner is not None else default_owner()
        self.ttl = ttl
        self.clock = clock
        # Steal threshold with a deterministic per-owner stretch in
        # [ttl, ttl * (1 + steal_jitter)].  When many workers watch the same
        # dying lease, the jitter staggers their steal attempts so the
        # replace + read-back race almost never admits two winners (a double
        # win stays *benign* -- identical records, first store wins -- this
        # just stops paying for the redundant execution).
        digest = hashlib.sha256(self.owner.encode("utf-8")).hexdigest()
        self.steal_after = ttl * (
            1.0 + max(0.0, steal_jitter) * (int(digest[:8], 16) % 1000) / 1000.0
        )
        self.stats = ClaimStats()
        #: request_ids this board believes it currently holds.  The heartbeat
        #: pump iterates this set from a background thread.
        self.owned: Set[str] = set()
        # request_id -> (lease fingerprint, local monotonic time it was first
        # seen with that fingerprint).  Purely local observation state.
        self._observed: Dict[str, Tuple[Tuple[str, int], float]] = {}

    # -- lease file I/O -----------------------------------------------------

    def path(self, request_id: str) -> Path:
        return self.root / f"{request_id}.lease"

    def read(self, request_id: str) -> Optional[Lease]:
        """The current lease for a request, ``None`` if unclaimed.

        Unparseable files (torn by a crash mid-create on a filesystem where
        the hard-link path was unavailable) are reported as held by
        :data:`CORRUPT_OWNER` so they age out like any abandoned lease.
        """
        try:
            text = self.path(request_id).read_text()
        except FileNotFoundError:
            return None
        except OSError:
            return Lease(request_id, CORRUPT_OWNER, -1, 0.0)
        try:
            payload = json.loads(text)
            return Lease(
                request_id=str(payload["request_id"]),
                owner=str(payload["owner"]),
                heartbeat=int(payload["heartbeat"]),
                stamp=float(payload["stamp"]),
            )
        except (ValueError, KeyError, TypeError):
            return Lease(request_id, CORRUPT_OWNER, -1, 0.0)

    def _write_temp(self, lease: Lease) -> str:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=lease.request_id + ".", suffix=".tmp"
        )
        with os.fdopen(fd, "w") as handle:
            handle.write(lease.payload())
            handle.flush()
            os.fsync(handle.fileno())
        return tmp_name

    def _create_exclusive(self, lease: Lease) -> bool:
        """Atomically create the lease file with its content; False if held."""
        path = self.path(lease.request_id)
        tmp_name = self._write_temp(lease)
        try:
            try:
                os.link(tmp_name, path)
                return True
            except FileExistsError:
                return False
            except OSError:
                # No hard links on this filesystem: O_EXCL create.  Content
                # lands after the create, so a crash right here can leave a
                # torn lease -- readers map that to CORRUPT_OWNER and it ages
                # out via the normal TTL path.
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    return False
                with os.fdopen(fd, "w") as handle:
                    handle.write(lease.payload())
                return True
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    def _replace(self, lease: Lease) -> None:
        tmp_name = self._write_temp(lease)
        try:
            os.replace(tmp_name, self.path(lease.request_id))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- the claim protocol -------------------------------------------------

    def try_claim(self, request_id: str) -> bool:
        """Claim an unclaimed request; False if any lease file exists."""
        lease = Lease(request_id, self.owner, 0, time.time())
        if not self._create_exclusive(lease):
            return False
        self.owned.add(request_id)
        self.stats.claimed += 1
        return True

    def heartbeat(self, request_id: str) -> bool:
        """Renew an owned lease; False (and ``lost``) if it was stolen."""
        lease = self.read(request_id)
        if lease is None or lease.owner != self.owner:
            self._mark_lost(request_id)
            return False
        self._replace(
            Lease(request_id, self.owner, lease.heartbeat + 1, time.time())
        )
        return True

    def release(self, request_id: str) -> bool:
        """Drop an owned lease after completing (or abandoning) its point."""
        self.owned.discard(request_id)
        lease = self.read(request_id)
        if lease is None or lease.owner != self.owner:
            self._mark_lost(request_id, already_discarded=True)
            return False
        try:
            os.unlink(self.path(request_id))
        except FileNotFoundError:
            pass
        self.stats.released += 1
        return True

    def _mark_lost(self, request_id: str, already_discarded: bool = False) -> None:
        if not already_discarded:
            self.owned.discard(request_id)
        self.stats.lost += 1

    def try_acquire(self, request_id: str) -> Optional[str]:
        """Claim a request, stealing its lease if expired.

        Returns ``"claimed"`` for a fresh claim, ``"stolen"`` for a takeover
        of an expired lease, or ``None`` when someone else holds a live (or
        not-yet-observed-expired) claim.
        """
        if request_id in self.owned:
            return "claimed"
        if self.try_claim(request_id):
            return "claimed"
        lease = self.read(request_id)
        if lease is None:
            # Released between our failed claim and the read: one retry.
            return "claimed" if self.try_claim(request_id) else None
        if lease.owner == self.owner:
            # Our own lease from an earlier life of this process id (e.g. a
            # worker loop resumed after an exception): adopt it silently.
            self.owned.add(request_id)
            return "claimed"
        now = self.clock()
        seen = self._observed.get(request_id)
        if seen is None or seen[0] != lease.fingerprint:
            self._observed[request_id] = (lease.fingerprint, now)
            return None
        if now - seen[1] < self.steal_after:
            return None
        return "stolen" if self._try_steal(request_id) else None

    def _try_steal(self, request_id: str) -> bool:
        """Replace an expired lease with our own and verify we won the race."""
        self._replace(Lease(request_id, self.owner, 0, time.time()))
        survivor = self.read(request_id)
        if (
            survivor is not None
            and survivor.owner == self.owner
            and survivor.heartbeat == 0
        ):
            self._observed.pop(request_id, None)
            self.owned.add(request_id)
            self.stats.stolen += 1
            return True
        return False

    # -- housekeeping -------------------------------------------------------

    def outstanding(self) -> Dict[str, Lease]:
        """Every lease currently on the board, by request_id."""
        leases: Dict[str, Lease] = {}
        if not self.root.is_dir():
            return leases
        for path in sorted(self.root.glob("*.lease")):
            lease = self.read(path.name[: -len(".lease")])
            if lease is not None:
                leases[lease.request_id] = lease
        return leases

    def sweep_completed(self, is_done: Callable[[str], bool]) -> int:
        """Remove dangling leases for points that are already completed.

        A worker SIGKILLed *after* publishing its result but *before*
        releasing its claim leaves a lease no one will ever steal (everyone
        sees the cached result and skips the point).  Reconciliation calls
        this with ``is_done = lambda rid: rid in cache`` to reap them.
        """
        reaped = 0
        for request_id in self.outstanding():
            if is_done(request_id):
                try:
                    os.unlink(self.path(request_id))
                    reaped += 1
                except FileNotFoundError:
                    pass
        return reaped
