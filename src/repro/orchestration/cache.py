"""Content-addressed result cache and sweep-resume reconciliation.

Every :class:`~repro.orchestration.request.RunRequest` has a stable
``request_id`` -- the SHA-256 of its canonical payload -- and every run is a
deterministic function of its request.  Together those two properties make
memoization trivially correct: a record found under a request's id *is* the
record the engines would produce, so re-running it is pure waste.

:class:`ResultCache` exploits this with a sharded on-disk index over the same
canonical JSONL encoding the run store uses:

* ``<root>/<request_id[:2]>.jsonl`` holds one canonical record line per
  cached request, appended in first-seen order;
* lookups go through an in-memory per-shard index, loaded lazily, so a sweep
  touching a few shards never reads the rest of the cache;
* every line is verified against the record's embedded digest on load --
  damaged or torn lines are dropped (and counted), never served;
* shard rewrites are atomic (temp file + rename) and re-merge the on-disk
  shard first, so an interrupted writer can never tear a shard and
  concurrent sweeps sharing one cache directory cannot corrupt it.  The
  cache is *best-effort* under concurrent writers, not transactional: two
  simultaneous rewrites of the same shard can lose one writer's new
  entries (they are simply re-executed and re-stored later), but a served
  entry is always a verified, complete record.

:func:`plan_resume` handles the complementary problem: an interrupted sweep
left a *partial* run store, and the re-run should execute only the missing
grid points.  It reconciles the store's surviving records against the request
grid by ``request_id`` and returns what to reuse and what to run.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from .request import RunRecord, RunRequest
from .store import RunStore, atomic_write_text, canonical_line, parse_record_line

logger = logging.getLogger(__name__)

#: Hex characters of the request id used as the shard key.  Two characters
#: give 256 shards: small sweeps stay in a handful of files, huge caches
#: still keep individual shard files (and their in-memory indexes) small.
SHARD_CHARS = 2


@dataclass
class CacheStats:
    """Counters accumulated by one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0
    quarantined: int = 0  # damaged lines moved to a shard's .corrupt sidecar

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits, self.misses, self.stores, self.invalid, self.quarantined
        )

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta between this snapshot and an ``earlier`` one."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
            invalid=self.invalid - earlier.invalid,
            quarantined=self.quarantined - earlier.quarantined,
        )

    def summary(self) -> str:
        text = f"{self.hits} hit(s), {self.misses} miss(es), {self.stores} store(s)"
        if self.invalid:
            text += f", {self.invalid} invalid line(s) dropped"
        if self.quarantined:
            text += f", {self.quarantined} damaged line(s) quarantined"
        return text


class ResultCache:
    """Content-addressed store of run records, keyed by ``request_id``."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        # shard key -> {request_id -> record}, insertion-ordered to keep
        # shard rewrites append-only in first-seen order.
        self._shards: Dict[str, Dict[str, RunRecord]] = {}

    # -- addressing ---------------------------------------------------------

    @staticmethod
    def _request_id(key: Union[RunRequest, RunRecord, str]) -> str:
        if isinstance(key, (RunRequest, RunRecord)):
            return key.request_id
        return key

    def shard_path(self, request_id: str) -> Path:
        return self.root / f"{request_id[:SHARD_CHARS]}.jsonl"

    # -- shard I/O ----------------------------------------------------------

    def _load_shard(self, shard_key: str) -> Dict[str, RunRecord]:
        """Read one shard, serving only verified records.

        Reads in binary so damaged lines are located by **byte offset** (the
        same tolerant-scan discipline :meth:`RunStore.scan` uses): a torn
        tail from a crashed writer, a corrupted span from a bad disk, or a
        record filed under the wrong shard is counted, logged with its
        offset, appended verbatim to the shard's ``.corrupt`` sidecar for
        post-mortems, and the shard is rewritten clean -- so the damage is
        quarantined exactly once instead of being re-skipped (and
        re-counted) on every load.
        """
        try:
            return self._shards[shard_key]
        except KeyError:
            pass
        index: Dict[str, RunRecord] = {}
        path = self.root / f"{shard_key}.jsonl"
        damaged: List[tuple] = []  # (offset, raw bytes, reason)
        if path.exists():
            offset = 0
            with path.open("rb") as handle:
                for raw in handle:
                    line_offset = offset
                    offset += len(raw)
                    stripped = raw.strip()
                    if not stripped:
                        continue
                    try:
                        record = parse_record_line(stripped.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError) as exc:
                        self.stats.invalid += 1
                        damaged.append((line_offset, raw, str(exc)))
                        continue
                    if record.request_id[:SHARD_CHARS] != shard_key:
                        self.stats.invalid += 1
                        damaged.append(
                            (line_offset, raw, "record filed under wrong shard")
                        )
                        continue
                    index[record.request_id] = record
        if damaged:
            self._quarantine_damage(path, index, damaged)
        self._shards[shard_key] = index
        return index

    def _quarantine_damage(
        self,
        path: Path,
        index: Dict[str, RunRecord],
        damaged: List[tuple],
    ) -> None:
        """Move damaged shard lines into ``<shard>.jsonl.corrupt``.

        The sidecar gets the raw bytes (appended, so repeated incidents
        accumulate); the shard is rewritten with only the verified records.
        Best-effort: if either write fails the shard is left as-is and the
        damage simply stays skip-on-read.
        """
        logger.warning(
            "cache: %d damaged line(s) in %s at byte offset(s) %s; "
            "quarantining to %s",
            len(damaged),
            path,
            ", ".join(str(entry[0]) for entry in damaged),
            path.name + ".corrupt",
        )
        try:
            with path.with_name(path.name + ".corrupt").open("ab") as sidecar:
                for _offset, raw, _reason in damaged:
                    sidecar.write(raw if raw.endswith(b"\n") else raw + b"\n")
            atomic_write_text(
                path,
                "".join(canonical_line(record) + "\n" for record in index.values()),
            )
        except OSError as exc:  # pragma: no cover - depends on fs failures
            logger.warning("cache: could not quarantine damage in %s: %s", path, exc)
            return
        self.stats.quarantined += len(damaged)

    def _write_shard(self, shard_key: str, index: Dict[str, RunRecord]) -> None:
        path = self.root / f"{shard_key}.jsonl"
        atomic_write_text(
            path, "".join(canonical_line(record) + "\n" for record in index.values())
        )

    # -- the cache API ------------------------------------------------------

    def get(self, key: Union[RunRequest, str]) -> Optional[RunRecord]:
        """The cached record for a request (or raw id), or ``None``."""
        request_id = self._request_id(key)
        record = self._load_shard(request_id[:SHARD_CHARS]).get(request_id)
        if record is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return record

    def __contains__(self, key: Union[RunRequest, str]) -> bool:
        request_id = self._request_id(key)
        return request_id in self._load_shard(request_id[:SHARD_CHARS])

    def refresh(self, key: Union[RunRequest, RunRecord, str, None] = None) -> None:
        """Drop the in-memory shard index so the next lookup rereads disk.

        With ``key`` only that request's shard is dropped; without, all of
        them.  Fleet workers poll a cache that *other processes* are writing
        to, so they must invalidate before probing -- a plain single-process
        sweep never needs this.
        """
        if key is None:
            self._shards.clear()
        else:
            self._shards.pop(self._request_id(key)[:SHARD_CHARS], None)

    def put(self, record: RunRecord) -> int:
        return self.put_many([record])

    def put_many(self, records: Iterable[RunRecord]) -> int:
        """Insert records not yet cached; returns how many were new.

        Records are grouped by shard so each touched shard is rewritten
        exactly once (atomically).  Existing entries win: a record already
        cached under its id is never overwritten, which keeps a warm cache's
        bytes stable under repeated identical sweeps.

        Each touched shard is re-read from disk before the rewrite, so
        entries stored by another process since this instance's last read
        are preserved rather than clobbered from a stale in-memory index
        (closing all but the read-to-rename window of the lost-update race).
        """
        by_shard: Dict[str, List[RunRecord]] = {}
        for record in records:
            by_shard.setdefault(record.request_id[:SHARD_CHARS], []).append(record)
        stored = 0
        for shard_key, shard_records in by_shard.items():
            self._shards.pop(shard_key, None)  # re-merge with on-disk state
            index = self._load_shard(shard_key)
            fresh = []
            for record in shard_records:
                if record.request_id not in index:
                    index[record.request_id] = record
                    fresh.append(record)
            if not fresh:
                continue
            self._write_shard(shard_key, index)
            stored += len(fresh)
        self.stats.stores += stored
        return stored

    def __iter__(self) -> Iterator[RunRecord]:
        for path in sorted(self.root.glob(f"{'[0-9a-f]' * SHARD_CHARS}.jsonl")):
            yield from self._load_shard(path.stem).values()

    def __len__(self) -> int:
        return sum(1 for _ in self)


# ---------------------------------------------------------------------------
# Resume reconciliation.
# ---------------------------------------------------------------------------


@dataclass
class ResumePlan:
    """What a partial store already covers of a request grid.

    Attributes:
        reusable: grid records recovered from the store, by ``request_id``.
        missing: grid requests with no surviving record -- the work left.
        extra: intact store records that are not part of this grid.  A
            resumed sweep rewrites the store to *exactly* the grid (that is
            what makes the result byte-identical to an uninterrupted run),
            so these records are dropped from the store -- resume with the
            grid that produced them, or attach a ``--cache``, to keep them.
        skipped: damaged store lines dropped by the tolerant reader.
        torn_offsets: byte offset of each damaged line, in file order.  A
            missing grid point *plus* a torn line means the store's writer
            likely crashed mid-write; a missing point in a clean store means
            it simply never ran.  Fleet reconciliation reports the
            distinction (``FleetStats.torn_records``).
    """

    reusable: Dict[str, RunRecord] = field(default_factory=dict)
    missing: List[RunRequest] = field(default_factory=list)
    extra: int = 0
    skipped: int = 0
    torn_offsets: List[int] = field(default_factory=list)

    def summary(self) -> str:
        text = f"{len(self.reusable)} reusable, {len(self.missing)} to execute"
        if self.extra:
            text += (
                f", {self.extra} record(s) outside this grid"
                " (dropped when the store is rewritten)"
            )
        if self.skipped:
            text += f", {self.skipped} damaged line(s) dropped"
        return text


def plan_resume(requests: Sequence[RunRequest], store: RunStore) -> ResumePlan:
    """Reconcile a (possibly partial, possibly damaged) store against a grid.

    Matching is purely by ``request_id``, so it is insensitive to the order
    the interrupted sweep completed its points in and to any unrelated
    records sharing the store.
    """
    scan = store.scan()
    by_id = {record.request_id: record for record in scan.records}
    plan = ResumePlan(
        skipped=scan.torn_records,
        torn_offsets=[line.offset for line in scan.torn],
    )
    wanted = set()
    for request in requests:
        request_id = request.request_id
        wanted.add(request_id)
        record = by_id.get(request_id)
        if record is None:
            plan.missing.append(request)
        else:
            plan.reusable[request_id] = record
    plan.extra = sum(1 for request_id in by_id if request_id not in wanted)
    return plan
