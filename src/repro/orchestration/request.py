"""Declarative run requests and their execution.

A :class:`RunRequest` is everything needed to reproduce one co-emulation run:
the scenario name (resolved through the workload catalog), the operating mode
(resolved through the engine registry), configuration overrides and the
random seed.  Requests are plain picklable data so they can cross process
boundaries; :func:`execute_request` is the single worker entry point used by
both the serial and the multiprocessing paths of the
:class:`~repro.orchestration.runner.BatchRunner`.

Records are deliberately free of wall-clock measurements: everything in a
:class:`RunRecord` is a deterministic function of its request, which is what
makes ``sweep --jobs N`` byte-identical to the serial run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..channel.faults import ChannelFaultConfig
from ..core.coemulation import CoEmulationConfig, CoEmulationResult, DEFAULT_LOB_DEPTH
from ..core.engine import create_engine, get_engine_info, resolve_engine_name
from ..core.modes import OperatingMode
from ..core.topology import Topology
from ..sim.time_model import DomainSpeed
from ..workloads.catalog import build_scenario

#: Scalar spellings of config fields whose natural type is not
#: JSON-serialisable.  Requests must stay canonical-JSON-encodable (their
#: ``request_id`` is a hash of that encoding), so ``config_overrides`` carries
#: plain numbers and :meth:`RunRequest.build_config` rehydrates them.
_SCALAR_CONFIG_OVERRIDES = {
    "simulator_cycles_per_second": "simulator_speed",
    "accelerator_cycles_per_second": "accelerator_speed",
}


def canonical_json(payload: Any) -> str:
    """Stable JSON encoding used for ids, digests and the run store."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def derive_seed(base_seed: int, *coordinates: Any) -> int:
    """Derive a deterministic per-request seed from grid coordinates.

    Hashing (rather than ``base_seed + index``) keeps seeds stable when the
    grid is filtered or re-ordered: the same (scenario, mode, accuracy, ...)
    point always receives the same seed for the same ``base_seed``.
    """
    digest = _sha256(canonical_json([base_seed, *[str(c) for c in coordinates]]))
    return int(digest[:12], 16)


@dataclass(frozen=True)
class RunRequest:
    """One run of the grid, as declarative data.

    Attributes:
        scenario: catalog name of the SoC configuration.
        mode: operating mode value (``"conservative"`` / ``"sla"`` /
            ``"als"`` / ``"auto"``).
        cycles: target cycles to commit.
        lob_depth: Leader Output Buffer depth.
        accuracy: forced prediction accuracy (``None`` = real predictor).
        seed: seed for the forced-accuracy failure injector.
        engine: explicit engine registration to use (``None`` = resolve from
            ``mode``; ``"analytical"`` selects the closed-form pseudo-engine).
        scenario_params: keyword arguments for the scenario builder.
        config_overrides: extra :class:`CoEmulationConfig` fields by name.
        topology: serialised :class:`~repro.core.topology.Topology` override
            (``Topology.as_dict()`` shape); ``None`` uses the scenario's own
            layout.  Omitted from the canonical encoding when ``None`` so
            topology-free request ids are unchanged.
        channel_faults: serialised :class:`~repro.channel.faults.
            ChannelFaultConfig` override (``ChannelFaultConfig.as_dict()``
            shape); ``None`` uses the scenario's own channel (ideal unless the
            scenario declares faults).  Omitted from the canonical encoding
            when ``None`` so fault-free request ids and digests are unchanged.
        label: free-form display label.
    """

    scenario: str
    mode: str = "als"
    cycles: int = 400
    lob_depth: int = DEFAULT_LOB_DEPTH
    accuracy: Optional[float] = None
    seed: int = 2005
    engine: Optional[str] = None
    scenario_params: Mapping[str, Any] = field(default_factory=dict)
    config_overrides: Mapping[str, Any] = field(default_factory=dict)
    topology: Optional[Mapping[str, Any]] = None
    channel_faults: Optional[Mapping[str, Any]] = None
    label: str = ""

    @property
    def request_id(self) -> str:
        """Stable short id derived from the request's full payload."""
        return _sha256(canonical_json(self.as_dict()))[:12]

    def as_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["scenario_params"] = dict(self.scenario_params)
        payload["config_overrides"] = dict(self.config_overrides)
        if self.topology is None:
            # Pre-topology requests must keep their historical ids/digests.
            payload.pop("topology")
        else:
            payload["topology"] = dict(self.topology)
        if self.channel_faults is None:
            # Same rule for the fault axis: ideal requests keep their ids.
            payload.pop("channel_faults")
        else:
            payload["channel_faults"] = dict(self.channel_faults)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRequest":
        """Rebuild a request from its canonical :meth:`as_dict` payload.

        The optional axes omitted from the canonical encoding (topology,
        channel faults) default back to ``None``, so a round trip preserves
        the ``request_id`` exactly -- which is what lets a fleet grid
        manifest address the same cache entries as the process that
        published it.
        """
        try:
            return cls(**dict(payload))
        except TypeError as exc:
            raise ValueError(
                f"payload does not fit the request schema: {exc}"
            ) from None

    def topology_override(self) -> Optional[Topology]:
        """The deserialised topology override, if any (validates the payload)."""
        return None if self.topology is None else Topology.from_dict(self.topology)

    def channel_faults_override(self) -> Optional[ChannelFaultConfig]:
        """The deserialised fault-config override, if any (validates it)."""
        if self.channel_faults is None:
            return None
        return ChannelFaultConfig.from_dict(self.channel_faults)

    def operating_mode(self) -> OperatingMode:
        return OperatingMode(self.mode)

    def engine_name(self) -> str:
        """The registry name this request resolves to, config flags included
        (``batch_stepping`` / ``trace_replay`` overrides promote the mode's
        default engine to its batch/trace variant, as ``create_engine`` does).
        """
        return resolve_engine_name(self.build_config(), self.engine)

    def build_config(self) -> CoEmulationConfig:
        kwargs: Dict[str, Any] = {
            "mode": self.operating_mode(),
            "total_cycles": self.cycles,
            "lob_depth": self.lob_depth,
            "forced_accuracy": self.accuracy,
            "forced_accuracy_seed": self.seed,
        }
        topology = self.topology_override()
        if topology is not None:
            kwargs["topology"] = topology
        channel_faults = self.channel_faults_override()
        if channel_faults is not None:
            kwargs["channel_faults"] = channel_faults
        overrides = dict(self.config_overrides)
        for scalar_key, field_name in _SCALAR_CONFIG_OVERRIDES.items():
            if scalar_key in overrides:
                overrides[field_name] = DomainSpeed(
                    cycles_per_second=float(overrides.pop(scalar_key))
                )
        kwargs.update(overrides)
        return CoEmulationConfig(**kwargs)

    def display_label(self) -> str:
        if self.label:
            return self.label
        accuracy = "-" if self.accuracy is None else f"{self.accuracy:g}"
        return f"{self.scenario}/{self.mode}/p={accuracy}/lob={self.lob_depth}"


@dataclass
class RunRecord:
    """The deterministic outcome of one executed request."""

    request_id: str
    label: str
    scenario: str
    mode: str
    engine: str
    seed: int
    cycles: int
    lob_depth: int
    accuracy: Optional[float]
    committed_cycles: int
    performance: float
    per_cycle_times: Dict[str, float]
    channel: dict
    transitions: dict
    prediction: dict
    lob: dict
    monitors_ok: bool
    wasted_leader_cycles: int
    beat_digest: str
    #: Trace-replay counters (``CoEmulationResult.trace_replay``); empty for
    #: engines without the periodic replay controller.
    trace_replay: dict = field(default_factory=dict)
    digest: str = ""

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = self.compute_digest()

    def compute_digest(self) -> str:
        payload = self.as_dict()
        payload.pop("digest", None)
        return _sha256(canonical_json(payload))[:16]

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        return cls(**payload)

    def row(self) -> Dict[str, Any]:
        """Flat summary row for tabular reports."""
        return {
            "label": self.label,
            "scenario": self.scenario,
            "mode": self.mode,
            "engine": self.engine,
            "accuracy": self.accuracy,
            "lob_depth": self.lob_depth,
            "cycles": self.committed_cycles,
            "performance": self.performance,
            "channel_accesses": self.channel.get("accesses", 0),
            "rollbacks": self.transitions.get("rollbacks", 0),
            "digest": self.digest,
        }


def _beat_digest(result: CoEmulationResult) -> str:
    """Digest of the committed bus traffic (the functional fingerprint)."""
    return _sha256(repr((result.sim_beat_keys, result.acc_beat_keys)))[:16]


def build_request_engine(request: RunRequest):
    """Build the (un-run) engine a request describes.

    Shared by :func:`execute_request` and the durable executor
    (:mod:`repro.orchestration.durable`), so a resumed run is constructed
    through exactly the code path an uninterrupted one uses.
    """
    config = request.build_config()
    engine_name = request.engine_name()
    info = get_engine_info(engine_name)
    # Building the spec on both paths keeps failure behaviour identical:
    # scenario-name and builder-parameter typos are rejected whether or not
    # the engine ends up touching the mechanism.
    spec = build_scenario(request.scenario, **dict(request.scenario_params))
    if info.requires_split:
        # The scenario's own multi-domain layout applies unless the request
        # carried an explicit ``topology=`` override (prepare_run's rule).
        config, partition = spec.prepare_run(config)
    else:
        partition = None
    return create_engine(config, partition=partition, engine=engine_name)


def record_from_result(
    request: RunRequest, engine_name: str, result: CoEmulationResult
) -> RunRecord:
    """Package one engine result as the request's deterministic record."""
    return RunRecord(
        request_id=request.request_id,
        label=request.display_label(),
        scenario=request.scenario,
        mode=request.mode,
        engine=engine_name,
        seed=request.seed,
        cycles=request.cycles,
        lob_depth=request.lob_depth,
        accuracy=request.accuracy,
        committed_cycles=result.committed_cycles,
        performance=result.performance_cycles_per_second,
        per_cycle_times=dict(result.per_cycle_times),
        channel=dict(result.channel),
        transitions=dict(result.transitions),
        prediction=dict(result.prediction),
        lob=dict(result.lob),
        monitors_ok=result.monitors_ok,
        wasted_leader_cycles=result.wasted_leader_cycles,
        beat_digest=_beat_digest(result),
        trace_replay=dict(result.trace_replay),
    )


def execute_request(request: RunRequest) -> RunRecord:
    """Execute one request through the catalog and the engine registry.

    This is the worker entry point of the batch runner: it must stay
    importable at module level (``multiprocessing`` resolves it by qualified
    name when spawning) and side-effect free apart from the run itself.
    """
    engine = build_request_engine(request)
    return record_from_result(request, request.engine_name(), engine.run())


def grid_requests(
    scenarios: Sequence[str],
    modes: Sequence[str],
    accuracies: Sequence[Optional[float]] = (None,),
    lob_depths: Sequence[int] = (DEFAULT_LOB_DEPTH,),
    cycles: int = 400,
    base_seed: int = 2005,
    engine: Optional[str] = None,
    scenario_params: Optional[Mapping[str, Any]] = None,
    config_overrides: Optional[Mapping[str, Any]] = None,
    topology: Optional[Mapping[str, Any]] = None,
    channel_faults: Optional[Mapping[str, Any]] = None,
) -> List[RunRequest]:
    """Expand a parameter grid into an ordered request list.

    Order is the nested product (scenario, mode, accuracy, lob depth) --
    deterministic, so serial and parallel runs agree on row order.  Each
    request receives a seed derived from its coordinates via
    :func:`derive_seed`.
    """
    requests: List[RunRequest] = []
    for scenario in scenarios:
        for mode in modes:
            for accuracy in accuracies:
                for lob_depth in lob_depths:
                    requests.append(
                        RunRequest(
                            scenario=scenario,
                            mode=mode,
                            cycles=cycles,
                            lob_depth=lob_depth,
                            accuracy=accuracy,
                            seed=derive_seed(
                                base_seed, scenario, mode, accuracy, lob_depth
                            ),
                            engine=engine,
                            scenario_params=dict(scenario_params or {}),
                            config_overrides=dict(config_overrides or {}),
                            topology=None if topology is None else dict(topology),
                            channel_faults=(
                                None if channel_faults is None else dict(channel_faults)
                            ),
                        )
                    )
    return requests
