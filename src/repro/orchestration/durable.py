"""Durable request execution: periodic snapshots, heartbeats, resume.

:func:`execute_request_durable` is :func:`~repro.orchestration.request.
execute_request` with a persistence loop attached through the engine's
``run_hook``:

* a durable snapshot (:mod:`repro.core.snapshot`) of the whole engine is
  written every ``K`` committed cycles and/or every ``N`` wall-seconds,
  atomically, under ``<snapshot_dir>/<request_id>.snap``;
* if that file already exists when execution starts, the run **resumes**
  from it instead of starting at cycle 0 -- and because the snapshot is the
  engine's complete state at a safe point, the finished record is
  bit-identical to an uninterrupted run (corrupt snapshots are quarantined
  to ``.snap.corrupt`` and the run starts cold instead);
* a ``heartbeat`` callable is invoked at every safe point with the committed
  cycle count -- the supervisor's watchdog reads progress from it;
* a :class:`~repro.orchestration.chaos.ChaosMonkey` (if any) gets its shot
  at every safe point, and may veto snapshot writes (simulated disk-full);
* a ``drain`` predicate turns ``True`` into "persist a final snapshot and
  raise :class:`~repro.core.snapshot.AbortRun`" -- the graceful-shutdown
  path fleet workers use on SIGTERM.

Snapshot writes are **best-effort by design**: an ``OSError`` (disk full,
permissions, vanished directory) is counted and logged once, never raised --
losing a snapshot costs re-execution time, while failing the run would cost
the result.
"""

from __future__ import annotations

import errno
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from ..core.coemulation import CoEmulationEngineBase
from ..core.snapshot import AbortRun, SnapshotError, read_snapshot, write_snapshot
from .chaos import ChaosMonkey
from .request import RunRecord, RunRequest, build_request_engine, record_from_result

logger = logging.getLogger(__name__)

#: Suffix appended to a snapshot that failed its integrity checks; kept for
#: post-mortems, ignored by every reader.
CORRUPT_SUFFIX = ".corrupt"


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to write durable snapshots.

    ``every_cycles`` counts *committed* cycles (deterministic, test-friendly);
    ``every_seconds`` is wall-clock (what long production runs want).  Both
    may be set; a snapshot is written when either is due.  The default writes
    none -- durability is strictly opt-in.
    """

    every_cycles: Optional[int] = None
    every_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.every_cycles is not None and self.every_cycles <= 0:
            raise ValueError("checkpoint every_cycles must be positive")
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValueError("checkpoint every_seconds must be positive")

    @property
    def enabled(self) -> bool:
        return self.every_cycles is not None or self.every_seconds is not None


@dataclass
class DurableRunEvents:
    """Operational counters for one durable execution (never in records)."""

    resumed_from_cycle: Optional[int] = None
    snapshots_written: int = 0
    snapshot_write_errors: int = 0
    corrupt_snapshots: int = 0
    last_committed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "resumed_from_cycle": self.resumed_from_cycle,
            "snapshots_written": self.snapshots_written,
            "snapshot_write_errors": self.snapshot_write_errors,
            "corrupt_snapshots": self.corrupt_snapshots,
            "last_committed": self.last_committed,
        }


def snapshot_path(snapshot_dir: Union[str, Path], request_id: str) -> Path:
    """Where one request's durable snapshot lives."""
    return Path(snapshot_dir) / f"{request_id}.snap"


class _DurableHook:
    """The ``run_hook`` driving heartbeats, chaos, drain and snapshots."""

    def __init__(
        self,
        path: Path,
        request_id: str,
        policy: CheckpointPolicy,
        heartbeat: Optional[Callable[[int], None]],
        chaos: Optional[ChaosMonkey],
        drain: Optional[Callable[[], bool]],
        events: DurableRunEvents,
        start_committed: int,
    ) -> None:
        self.path = path
        self.request_id = request_id
        self.policy = policy
        self.heartbeat = heartbeat
        self.chaos = chaos
        self.drain = drain
        self.events = events
        self._last_snapshot_cycle = start_committed
        self._last_snapshot_time = time.monotonic()
        self._warned = False

    def __call__(self, engine: Any) -> None:
        committed = engine.ledger.committed_cycles
        self.events.last_committed = committed
        if self.heartbeat is not None:
            self.heartbeat(committed)
        # Scheduled write strictly before chaos: a due checkpoint is part of
        # this safe point's normal operation, a crash strikes *between*
        # safe points -- so a kill/hang injected here must still find the
        # snapshot this safe point owed.
        if self._due(committed):
            self._write(engine)
        if self.chaos is not None:
            self.chaos.at_safe_point(self.request_id, engine)
        if self.drain is not None and self.drain():
            if self.policy.enabled:
                self._write(engine)
            raise AbortRun("drain requested; progress snapshotted")

    def _due(self, committed: int) -> bool:
        policy = self.policy
        if (
            policy.every_cycles is not None
            and committed - self._last_snapshot_cycle >= policy.every_cycles
        ):
            return True
        if (
            policy.every_seconds is not None
            and time.monotonic() - self._last_snapshot_time >= policy.every_seconds
        ):
            return True
        return False

    def _write(self, engine: Any) -> None:
        try:
            if self.chaos is not None and self.chaos.sabotage_snapshot(
                self.request_id, engine
            ):
                raise OSError(errno.ENOSPC, "chaos: simulated full disk")
            write_snapshot(self.path, engine, request_id=self.request_id)
        except OSError as exc:
            # Best-effort by design: a lost snapshot costs re-execution
            # time on the next resume, failing the run would cost the
            # result.  Log the first failure, count the rest.
            self.events.snapshot_write_errors += 1
            if not self._warned:
                self._warned = True
                logger.warning(
                    "durable: snapshot write to %s failed (%s); run continues "
                    "without further warnings",
                    self.path,
                    exc,
                )
        else:
            self.events.snapshots_written += 1
        # Either way the schedule advances: retrying a failing disk at
        # every safe point would turn one ENOSPC into a hot loop.
        self._last_snapshot_cycle = engine.ledger.committed_cycles
        self._last_snapshot_time = time.monotonic()


def _load_resumable_engine(
    path: Path, request: RunRequest, events: DurableRunEvents
) -> Optional[Any]:
    """The engine stored at ``path`` if it is a valid snapshot of ``request``.

    Corrupt snapshots are renamed to ``.snap.corrupt`` (kept for
    post-mortems) so the cold start that follows is not re-poisoned; a
    snapshot recorded for a *different* request id is treated the same way
    (it can only mean an addressing bug or filesystem tampering).
    """
    try:
        meta, engine = read_snapshot(path)
    except SnapshotError as exc:
        events.corrupt_snapshots += 1
        logger.warning("durable: quarantining corrupt snapshot %s (%s)", path, exc)
        _quarantine(path)
        return None
    if meta.request_id is not None and meta.request_id != request.request_id:
        events.corrupt_snapshots += 1
        logger.warning(
            "durable: snapshot %s belongs to request %s, not %s; quarantining",
            path,
            meta.request_id,
            request.request_id,
        )
        _quarantine(path)
        return None
    engine.run_hook = None
    events.resumed_from_cycle = meta.committed_cycles
    return engine


def _quarantine(path: Path) -> None:
    try:
        os.replace(path, path.with_name(path.name + CORRUPT_SUFFIX))
    except OSError:  # racing unlink / read-only fs: nothing left to protect
        pass


def execute_request_durable(
    request: RunRequest,
    snapshot_dir: Union[str, Path],
    policy: Optional[CheckpointPolicy] = None,
    heartbeat: Optional[Callable[[int], None]] = None,
    chaos: Optional[ChaosMonkey] = None,
    drain: Optional[Callable[[], bool]] = None,
    events: Optional[DurableRunEvents] = None,
) -> RunRecord:
    """Execute ``request`` with durable snapshots under ``snapshot_dir``.

    Resumes from an existing valid snapshot, writes new ones per ``policy``,
    and deletes the snapshot on success (the record is the durable artefact
    from then on).  The returned record is bit-identical to
    :func:`~repro.orchestration.request.execute_request`'s, resumed or not.

    Raises :class:`~repro.core.snapshot.AbortRun` when ``drain`` fired; the
    final snapshot was persisted first, so the caller can release its claim
    knowing a successor resumes where this run stopped.
    """
    if policy is None:
        policy = CheckpointPolicy()
    if events is None:
        events = DurableRunEvents()
    path = snapshot_path(snapshot_dir, request.request_id)
    engine = None
    if path.exists():
        engine = _load_resumable_engine(path, request, events)
    if engine is None:
        engine = build_request_engine(request)
    engine_name = request.engine_name()
    if not isinstance(engine, CoEmulationEngineBase):
        # Pseudo-engines (e.g. the analytical model) have no run loop and
        # finish in microseconds; durability machinery would be pure noise.
        return record_from_result(request, engine_name, engine.run())
    engine.run_hook = _DurableHook(
        path=path,
        request_id=request.request_id,
        policy=policy,
        heartbeat=heartbeat,
        chaos=chaos,
        drain=drain,
        events=events,
        start_committed=engine.ledger.committed_cycles,
    )
    try:
        result = engine.run()
    finally:
        engine.run_hook = None
    record = record_from_result(request, engine_name, result)
    try:
        path.unlink()
    except OSError:
        pass
    return record
