"""Batch-run orchestration: declarative requests, parallel fan-out, storage.

The experiment surface of the reproduction is a grid -- scenario x operating
mode x prediction accuracy x LOB depth -- and the paper's evaluation walks
such grids.  This package runs them at scale:

* :class:`RunRequest` -- a declarative, picklable description of one run
  (scenario name, engine mode, config overrides, seed).
* :func:`execute_request` / :class:`RunRecord` -- execute one request through
  the engine registry and package a deterministic, JSON-serialisable record
  (no wall-clock fields, so re-runs are byte-identical).
* :func:`grid_requests` -- expand a parameter grid into requests with
  deterministic per-request seeds.
* :class:`BatchRunner` -- fan requests across worker processes; results are
  identical to a serial run, independent of ``jobs``.
* :class:`RunStore` -- JSON-lines persistence for records (atomic writes,
  torn-line accounting via :meth:`RunStore.scan`).
* :class:`ResultCache` -- content-addressed memoization of records keyed by
  ``request_id``; attached to a runner, hits skip execution entirely.
* :func:`plan_resume` -- reconcile a partial store against a request grid so
  an interrupted sweep re-runs only its missing points.
* :class:`ClaimBoard` / :func:`run_fleet` / :func:`run_worker` -- the
  distributed layer: atomic lease-file claims over a shared cache directory,
  work-stealing workers on any number of hosts, crash-tolerant
  reconciliation byte-identical to a serial run.
* :func:`execute_request_durable` / :class:`CheckpointPolicy` -- periodic
  whole-engine snapshots so an interrupted run resumes mid-flight,
  bit-identical to an uninterrupted one.
* :func:`run_supervised` / :class:`SupervisorPolicy` / :class:`RunFailure`
  -- watchdog deadlines, retry-with-backoff from the latest snapshot, and
  poison-point quarantine with a structured failure taxonomy mapped to
  distinct process exit codes.
* :class:`ChaosConfig` / :class:`ChaosMonkey` -- deterministic fault
  injection (kill / hang / disk-full) keyed on the request id, for CI and
  property tests of all of the above.
"""

from .cache import CacheStats, ResultCache, ResumePlan, plan_resume
from .chaos import ChaosConfig, ChaosMonkey, ChaosPlan, plan_for
from .claims import DEFAULT_LEASE_TTL, ClaimBoard, ClaimStats, Lease
from .durable import (
    CheckpointPolicy,
    DurableRunEvents,
    execute_request_durable,
    snapshot_path,
)
from .fleet import (
    DEFAULT_POLL_INTERVAL,
    FleetStats,
    FleetWorkerStats,
    load_grid,
    load_quarantine,
    publish_grid,
    reconcile,
    run_fleet,
    run_worker,
    sweep_id_for,
)
from .request import (
    RunRecord,
    RunRequest,
    derive_seed,
    execute_request,
    grid_requests,
)
from .runner import BatchRunner
from .store import RunStore, StoreScan, TornLine
from .supervisor import (
    EXIT_CODES,
    RunFailure,
    SupervisorPolicy,
    failures_path,
    load_failures,
    quarantine_report,
    run_supervised,
    run_supervised_batch,
    sweep_exit_code,
    write_failures,
)

__all__ = [
    "BatchRunner",
    "CacheStats",
    "ChaosConfig",
    "ChaosMonkey",
    "ChaosPlan",
    "CheckpointPolicy",
    "ClaimBoard",
    "ClaimStats",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_POLL_INTERVAL",
    "DurableRunEvents",
    "EXIT_CODES",
    "FleetStats",
    "FleetWorkerStats",
    "Lease",
    "ResultCache",
    "ResumePlan",
    "RunFailure",
    "RunRecord",
    "RunRequest",
    "RunStore",
    "StoreScan",
    "SupervisorPolicy",
    "TornLine",
    "derive_seed",
    "execute_request",
    "execute_request_durable",
    "failures_path",
    "grid_requests",
    "load_failures",
    "load_grid",
    "load_quarantine",
    "plan_for",
    "plan_resume",
    "publish_grid",
    "quarantine_report",
    "reconcile",
    "run_fleet",
    "run_supervised",
    "run_supervised_batch",
    "run_worker",
    "snapshot_path",
    "sweep_exit_code",
    "sweep_id_for",
    "write_failures",
]
