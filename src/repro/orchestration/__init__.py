"""Batch-run orchestration: declarative requests, parallel fan-out, storage.

The experiment surface of the reproduction is a grid -- scenario x operating
mode x prediction accuracy x LOB depth -- and the paper's evaluation walks
such grids.  This package runs them at scale:

* :class:`RunRequest` -- a declarative, picklable description of one run
  (scenario name, engine mode, config overrides, seed).
* :func:`execute_request` / :class:`RunRecord` -- execute one request through
  the engine registry and package a deterministic, JSON-serialisable record
  (no wall-clock fields, so re-runs are byte-identical).
* :func:`grid_requests` -- expand a parameter grid into requests with
  deterministic per-request seeds.
* :class:`BatchRunner` -- fan requests across worker processes; results are
  identical to a serial run, independent of ``jobs``.
* :class:`RunStore` -- JSON-lines persistence for records.
"""

from .request import (
    RunRecord,
    RunRequest,
    derive_seed,
    execute_request,
    grid_requests,
)
from .runner import BatchRunner
from .store import RunStore

__all__ = [
    "BatchRunner",
    "RunRecord",
    "RunRequest",
    "RunStore",
    "derive_seed",
    "execute_request",
    "grid_requests",
]
