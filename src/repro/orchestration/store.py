"""JSON-lines persistence for run records.

One record per line, canonical encoding (sorted keys, no whitespace), no
timestamps: writing the same records always produces the same bytes, so a
store file doubles as a regression artefact -- diff two files to diff two
experiment runs.

All mutations go through an atomic temp-file-plus-rename, so a store on disk
is always a whole number of complete lines: an interrupted sweep can leave a
*shorter* store than intended, never a torn one.  :meth:`RunStore.load_valid`
additionally tolerates stores written by older, non-atomic writers (or damaged
out-of-band) by skipping unparseable or digest-mismatched lines, which is what
``sweep --resume`` uses to reconcile a partial store against its grid.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

from .request import RunRecord, canonical_json

logger = logging.getLogger(__name__)


def canonical_line(record: RunRecord) -> str:
    """The canonical single-line JSON encoding of one record.

    Delegates to the same encoder that computes request ids and record
    digests, so the store's bytes and the digests can never drift apart.
    """
    return canonical_json(record.as_dict())


def atomic_write_text(path: Path, data: str) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    The temp file lives in the destination directory so the final
    :func:`os.replace` stays on one filesystem and is atomic; a crash at any
    point leaves either the old content or the new content, never a prefix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def parse_record_line(line: str) -> RunRecord:
    """Parse one canonical store line, verifying the embedded digest.

    Raises ``ValueError`` on torn/garbled JSON, on payloads that do not fit
    the :class:`RunRecord` schema and on records whose content no longer
    matches their digest (an edited or bit-rotted line).
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"unparseable store line: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError("store line is not a JSON object")
    try:
        record = RunRecord.from_dict(payload)
    except TypeError as exc:
        raise ValueError(f"store line does not fit the record schema: {exc}") from None
    if record.digest != record.compute_digest():
        raise ValueError(f"record {record.request_id} fails its digest check")
    return record


@dataclass(frozen=True)
class TornLine:
    """One damaged store line: where it sits and why it was rejected."""

    offset: int  # byte offset of the line's first byte in the store file
    length: int  # bytes the line occupies, including its newline (if any)
    reason: str


@dataclass
class StoreScan:
    """Everything a tolerant read of one store file learned."""

    records: List[RunRecord] = field(default_factory=list)
    torn: List[TornLine] = field(default_factory=list)

    @property
    def torn_records(self) -> int:
        return len(self.torn)


class RunStore:
    """Append-oriented JSON-lines storage for :class:`RunRecord`."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def write(self, records: Iterable[RunRecord]) -> int:
        """Replace the store's contents with ``records``; returns the count."""
        lines = [canonical_line(record) for record in records]
        atomic_write_text(self.path, "".join(line + "\n" for line in lines))
        return len(lines)

    def append(self, records: Iterable[RunRecord]) -> int:
        """Append ``records`` to the store; returns the count appended.

        Implemented as read-existing + atomic rewrite rather than ``open("a")``
        so an interruption mid-append can never leave a torn final line.  A
        pre-existing torn tail (from a non-atomic writer) is sealed with a
        newline so it stays an isolated invalid line instead of merging with
        the first appended record.
        """
        lines = [canonical_line(record) for record in records]
        existing = self.path.read_text() if self.path.exists() else ""
        if existing and not existing.endswith("\n"):
            existing += "\n"
        atomic_write_text(
            self.path, existing + "".join(line + "\n" for line in lines)
        )
        return len(lines)

    def __iter__(self) -> Iterator[RunRecord]:
        if not self.path.exists():
            return
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield RunRecord.from_dict(json.loads(line))

    def load(self) -> List[RunRecord]:
        return list(self)

    def scan(self) -> StoreScan:
        """Tolerantly read the store, accounting for every damaged line.

        Each torn or tampered line is logged (with its byte offset, so a
        crashed writer's tear is locatable with ``dd``/``tail -c``) and
        reported in :attr:`StoreScan.torn`.  Fleet reconciliation uses the
        count to distinguish a grid point that *never ran* (missing from a
        clean store) from one whose writer *crashed mid-write* (missing
        alongside torn lines).
        """
        result = StoreScan()
        if not self.path.exists():
            return result
        offset = 0
        with self.path.open("rb") as handle:
            for raw in handle:
                line_offset, offset = offset, offset + len(raw)
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    result.records.append(parse_record_line(line))
                except ValueError as exc:
                    result.torn.append(TornLine(line_offset, len(raw), str(exc)))
                    logger.warning(
                        "store %s: damaged record at byte offset %d (%d byte(s)): %s",
                        self.path,
                        line_offset,
                        len(raw),
                        exc,
                    )
        return result

    def load_valid(self) -> Tuple[List[RunRecord], int]:
        """Load every intact record, skipping damaged lines.

        Returns ``(records, skipped)`` where ``skipped`` counts lines that
        failed to parse or whose digest check failed.  This is the tolerant
        reader behind ``sweep --resume``: a partial or damaged store yields
        whatever whole records it still holds.  :meth:`scan` is the richer
        form (byte offsets per damaged line).
        """
        scan = self.scan()
        return scan.records, scan.torn_records

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def digest(self) -> str:
        """SHA-256 of the store file's bytes (empty-file digest if missing)."""
        data = self.path.read_bytes() if self.path.exists() else b""
        return hashlib.sha256(data).hexdigest()
