"""JSON-lines persistence for run records.

One record per line, canonical encoding (sorted keys, no whitespace), no
timestamps: writing the same records always produces the same bytes, so a
store file doubles as a regression artefact -- diff two files to diff two
experiment runs.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .request import RunRecord, canonical_json


def canonical_line(record: RunRecord) -> str:
    """The canonical single-line JSON encoding of one record.

    Delegates to the same encoder that computes request ids and record
    digests, so the store's bytes and the digests can never drift apart.
    """
    return canonical_json(record.as_dict())


class RunStore:
    """Append-oriented JSON-lines storage for :class:`RunRecord`."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def write(self, records: Iterable[RunRecord]) -> int:
        """Replace the store's contents with ``records``; returns the count."""
        lines = [canonical_line(record) for record in records]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("".join(line + "\n" for line in lines))
        return len(lines)

    def append(self, records: Iterable[RunRecord]) -> int:
        """Append ``records`` to the store; returns the count appended."""
        lines = [canonical_line(record) for record in records]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    def __iter__(self) -> Iterator[RunRecord]:
        if not self.path.exists():
            return
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield RunRecord.from_dict(json.loads(line))

    def load(self) -> List[RunRecord]:
        return list(self)

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def digest(self) -> str:
        """SHA-256 of the store file's bytes (empty-file digest if missing)."""
        data = self.path.read_bytes() if self.path.exists() else b""
        return hashlib.sha256(data).hexdigest()
