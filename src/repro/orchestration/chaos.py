"""Deterministic chaos harness: seeded kill / hang / disk-full schedules.

Crash-tolerance code is only trustworthy if its failure paths run on every
CI pass, not just when production misbehaves.  This module injects the three
failure classes the durable-execution layer must survive, *deterministically*:

* **kill** -- the executing process SIGKILLs itself at a mid-run safe point
  (the fleet steal path and the supervisor's crash retry must recover);
* **hang** -- the run sleeps past its deadline / lease TTL at a safe point
  (the watchdog timeout and the lease steal must fire);
* **disk_full** -- the next durable snapshot write raises ``ENOSPC`` (the
  run must continue; snapshots are an optimisation, never a correctness
  requirement).

Whether a given run is sabotaged, with which action, and at which committed
cycle, is a pure function of ``(config.seed, request_id)`` -- no wall clock,
no RNG state -- so a chaos sweep is exactly reproducible and its assertion
("the store is byte-identical to a serial run") is meaningful.

Fired actions leave **marker files** in a shared state directory: a retried
or stolen run sees the marker and does not re-fire (``once=True``), which is
what lets CI assert that a killed point is *retried to success* rather than
killed forever.  ``once=False`` keeps firing on every attempt -- the recipe
for forcing retry exhaustion and poison-point quarantine in tests.
"""

from __future__ import annotations

import hashlib
import logging
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Set, Tuple, Union

logger = logging.getLogger(__name__)

#: Everything the harness can do to a run, in schedule-derivation order.
CHAOS_ACTIONS = ("kill", "hang", "disk_full")


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos schedule: per-action probabilities plus the firing window.

    Attributes:
        seed: schedule seed; distinct seeds sabotage distinct request
            subsets.
        kill_probability: share of requests whose process SIGKILLs itself.
        hang_probability: share of requests that sleep ``hang_seconds`` at a
            safe point.
        disk_full_probability: share of requests whose snapshot writes fail
            with ``ENOSPC``.
        hang_seconds: how long a hang sleeps (set it beyond the deadline or
            lease TTL being exercised).
        window_start / window_end: the firing cycle as a fraction of the
            run's total cycles -- chaos strikes mid-run, after snapshots had
            a chance to exist, not at cycle 0.
        once: fire each (request, action) at most once across retries and
            steals (marker files); ``False`` re-fires on every attempt.
    """

    seed: int = 0
    kill_probability: float = 0.0
    hang_probability: float = 0.0
    disk_full_probability: float = 0.0
    hang_seconds: float = 120.0
    window_start: float = 0.25
    window_end: float = 0.75
    once: bool = True

    def __post_init__(self) -> None:
        total = self.kill_probability + self.hang_probability + self.disk_full_probability
        if not 0.0 <= total <= 1.0:
            raise ValueError(
                f"chaos action probabilities must sum into [0, 1], got {total:g}"
            )
        if not 0.0 <= self.window_start <= self.window_end <= 1.0:
            raise ValueError(
                "chaos window must satisfy 0 <= window_start <= window_end <= 1"
            )

    @property
    def is_idle(self) -> bool:
        """True when no action can ever fire."""
        return (
            self.kill_probability == 0.0
            and self.hang_probability == 0.0
            and self.disk_full_probability == 0.0
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "kill_probability": self.kill_probability,
            "hang_probability": self.hang_probability,
            "disk_full_probability": self.disk_full_probability,
            "hang_seconds": self.hang_seconds,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "once": self.once,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChaosConfig":
        try:
            return cls(**dict(payload))
        except TypeError as exc:
            raise ValueError(
                f"payload does not fit the chaos-config schema: {exc}"
            ) from None


@dataclass(frozen=True)
class ChaosPlan:
    """What (if anything) happens to one request: the action and its cycle."""

    action: Optional[str]
    trigger_cycle: int

    @property
    def armed(self) -> bool:
        return self.action is not None


def plan_for(config: ChaosConfig, request_id: str, total_cycles: int) -> ChaosPlan:
    """The deterministic schedule for one request.

    Derivation mirrors the request-id scheme: a SHA-256 over the seed and
    the request id supplies both the action draw and the trigger fraction,
    so the plan is stable across processes, hosts and retries.
    """
    if config.is_idle:
        return ChaosPlan(action=None, trigger_cycle=0)
    digest = hashlib.sha256(f"chaos:{config.seed}:{request_id}".encode()).hexdigest()
    draw = int(digest[:8], 16) / 16 ** 8
    action: Optional[str] = None
    threshold = 0.0
    for name, probability in (
        ("kill", config.kill_probability),
        ("hang", config.hang_probability),
        ("disk_full", config.disk_full_probability),
    ):
        threshold += probability
        if draw < threshold:
            action = name
            break
    if action is None:
        return ChaosPlan(action=None, trigger_cycle=0)
    fraction = int(digest[8:16], 16) / 16 ** 8
    window = config.window_start + fraction * (config.window_end - config.window_start)
    trigger = max(1, int(window * total_cycles))
    return ChaosPlan(action=action, trigger_cycle=trigger)


class ChaosMonkey:
    """Applies a :class:`ChaosConfig` to runs at their safe points.

    One monkey serves many requests; plans are derived lazily per request
    and cached.  ``state_dir`` (shared between retries / workers) holds the
    fired markers; ``None`` keeps them in memory only, which is fine for
    single-process tests but defeats ``once`` across process boundaries.
    """

    def __init__(
        self,
        config: ChaosConfig,
        state_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.config = config
        self.state_dir = None if state_dir is None else Path(state_dir)
        self._plans: Dict[Tuple[str, int], ChaosPlan] = {}
        self._fired: Set[Tuple[str, str]] = set()

    # -- plan / marker bookkeeping ------------------------------------------
    def plan(self, request_id: str, total_cycles: int) -> ChaosPlan:
        key = (request_id, total_cycles)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._plans[key] = plan_for(self.config, request_id, total_cycles)
        return plan

    def _marker_path(self, request_id: str, action: str) -> Optional[Path]:
        if self.state_dir is None:
            return None
        return self.state_dir / f"{request_id}.{action}.fired"

    def has_fired(self, request_id: str, action: str) -> bool:
        if (request_id, action) in self._fired:
            return True
        marker = self._marker_path(request_id, action)
        return marker is not None and marker.exists()

    def _mark_fired(self, request_id: str, action: str) -> None:
        self._fired.add((request_id, action))
        marker = self._marker_path(request_id, action)
        if marker is None:
            return
        try:
            marker.parent.mkdir(parents=True, exist_ok=True)
            marker.touch()
        except OSError:  # chaos must never crash the run it sabotages
            logger.warning("chaos: could not write fired marker %s", marker)

    def _should_fire(self, request_id: str, committed: int, total: int, action: str) -> bool:
        plan = self.plan(request_id, total)
        if plan.action != action or committed < plan.trigger_cycle:
            return False
        if self.config.once and self.has_fired(request_id, action):
            return False
        return True

    # -- injection points ----------------------------------------------------
    def at_safe_point(self, request_id: str, engine: Any) -> None:
        """Fire kill/hang when the run crosses its trigger cycle.

        The marker is written *before* acting so a SIGKILLed process cannot
        lose it -- exactly the once-only guarantee retries rely on.
        """
        committed = engine.ledger.committed_cycles
        total = engine.config.total_cycles
        if self._should_fire(request_id, committed, total, "kill"):
            self._mark_fired(request_id, "kill")
            logger.warning(
                "chaos: SIGKILL self at committed cycle %d of %s", committed, request_id
            )
            os.kill(os.getpid(), signal.SIGKILL)
        if self._should_fire(request_id, committed, total, "hang"):
            self._mark_fired(request_id, "hang")
            logger.warning(
                "chaos: hanging %gs at committed cycle %d of %s",
                self.config.hang_seconds,
                committed,
                request_id,
            )
            time.sleep(self.config.hang_seconds)

    def sabotage_snapshot(self, request_id: str, engine: Any) -> bool:
        """Whether the next snapshot write should fail with ``ENOSPC``."""
        committed = engine.ledger.committed_cycles
        total = engine.config.total_cycles
        if not self._should_fire(request_id, committed, total, "disk_full"):
            return False
        self._mark_fired(request_id, "disk_full")
        return True
