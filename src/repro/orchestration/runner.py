"""Parallel batch execution of run requests.

The engines are pure CPython and hold the GIL, so parallelism comes from
worker *processes*.  Every run is deterministic given its request (seeds are
baked in, records carry no wall-clock fields), which gives the runner its
core guarantee: ``BatchRunner(jobs=N).run(grid)`` returns exactly the same
records in exactly the same order as ``jobs=1``, for any ``N``.

The same determinism powers the memoization path: with a
:class:`~repro.orchestration.cache.ResultCache` attached, cache hits are
returned verbatim and only the misses fan out to workers -- and because a
cached record is byte-identical to a fresh one, the returned list (and any
store written from it) is byte-identical whether the cache was cold, warm,
or absent.

The runner is single-host by design; :mod:`~repro.orchestration.fleet`
layers multi-host execution on top of the same cache (workers claim points
by ``request_id`` via lease files and write through the atomic shards), then
funnels back through ``BatchRunner`` during reconciliation -- which is why a
fleet sweep's output is byte-identical to ``BatchRunner(jobs=1)``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .cache import ResultCache
from .request import RunRecord, RunRequest, execute_request

ProgressCallback = Callable[[int, int, RunRecord], None]


def default_jobs() -> int:
    """A sensible worker count for the current machine."""
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass
class BatchRunner:
    """Fan a list of :class:`RunRequest` across worker processes.

    Attributes:
        jobs: number of worker processes; ``1`` runs in-process (no
            multiprocessing involved at all, which also keeps coverage and
            debuggers usable).
        chunksize: requests handed to a worker at a time.  ``1`` gives the
            best load balance for heterogeneous grids; raise it for large
            grids of tiny runs.
        mp_context: optional :mod:`multiprocessing` start-method name
            (``"fork"`` / ``"spawn"`` / ``"forkserver"``); ``None`` uses the
            platform default.
    """

    jobs: int = 1
    chunksize: int = 1
    mp_context: Optional[str] = None

    def run(
        self,
        requests: Iterable[RunRequest],
        progress: Optional[ProgressCallback] = None,
        cache: Optional[ResultCache] = None,
    ) -> List[RunRecord]:
        """Execute all requests, preserving input order in the result list.

        ``progress`` (if given) is called in the parent process as
        ``progress(done_count, total, record)`` after each record arrives;
        with ``jobs > 1`` records complete out of order but the returned
        list is always in request order.

        ``cache`` (if given) is probed for every request first: hits are
        returned without touching an engine, only misses are executed, and
        freshly executed records are written back.  Hit/miss/store counts
        accumulate on ``cache.stats``.
        """
        request_list = list(requests)
        total = len(request_list)
        if cache is None:
            return self._execute(request_list, progress, total, 0)

        hits: Dict[int, RunRecord] = {}
        misses: List[Tuple[int, RunRequest]] = []
        for index, request in enumerate(request_list):
            record = cache.get(request)
            if record is None:
                misses.append((index, request))
            else:
                hits[index] = record
        # Hits are "done" immediately; report them first so the done-count
        # is monotone regardless of worker completion order.
        if progress is not None:
            for done, index in enumerate(sorted(hits), start=1):
                progress(done, total, hits[index])
        executed = self._execute(
            [request for _, request in misses],
            progress,
            total,
            len(hits),
        )
        cache.put_many(executed)
        results: List[Optional[RunRecord]] = [None] * total
        for index, record in hits.items():
            results[index] = record
        for (index, _), record in zip(misses, executed):
            results[index] = record
        return [record for record in results if record is not None]

    def _execute(
        self,
        request_list: List[RunRequest],
        progress: Optional[ProgressCallback],
        total: int,
        done_offset: int,
    ) -> List[RunRecord]:
        """Run ``request_list`` serially or across a pool, in input order.

        ``total`` and ``done_offset`` only shape the progress callback: when
        the runner executes the miss-subset of a cached batch, progress still
        counts against the full batch.
        """
        count = len(request_list)
        if self.jobs <= 1 or count <= 1:
            records = []
            for index, request in enumerate(request_list):
                record = execute_request(request)
                records.append(record)
                if progress is not None:
                    progress(done_offset + index + 1, total, record)
            return records

        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.jobs, count)
        with context.Pool(processes=workers) as pool:
            if progress is None:
                return pool.map(execute_request, request_list, chunksize=self.chunksize)
            results: List[Optional[RunRecord]] = [None] * count
            done = 0
            # imap preserves input order, so `record` pairs with its index.
            for index, record in enumerate(
                pool.imap(execute_request, request_list, chunksize=self.chunksize)
            ):
                results[index] = record
                done += 1
                progress(done_offset + done, total, record)
            return [record for record in results if record is not None]
