"""Parallel batch execution of run requests.

The engines are pure CPython and hold the GIL, so parallelism comes from
worker *processes*.  Every run is deterministic given its request (seeds are
baked in, records carry no wall-clock fields), which gives the runner its
core guarantee: ``BatchRunner(jobs=N).run(grid)`` returns exactly the same
records in exactly the same order as ``jobs=1``, for any ``N``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from .request import RunRecord, RunRequest, execute_request


def default_jobs() -> int:
    """A sensible worker count for the current machine."""
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass
class BatchRunner:
    """Fan a list of :class:`RunRequest` across worker processes.

    Attributes:
        jobs: number of worker processes; ``1`` runs in-process (no
            multiprocessing involved at all, which also keeps coverage and
            debuggers usable).
        chunksize: requests handed to a worker at a time.  ``1`` gives the
            best load balance for heterogeneous grids; raise it for large
            grids of tiny runs.
        mp_context: optional :mod:`multiprocessing` start-method name
            (``"fork"`` / ``"spawn"`` / ``"forkserver"``); ``None`` uses the
            platform default.
    """

    jobs: int = 1
    chunksize: int = 1
    mp_context: Optional[str] = None

    def run(
        self,
        requests: Iterable[RunRequest],
        progress: Optional[Callable[[int, int, RunRecord], None]] = None,
    ) -> List[RunRecord]:
        """Execute all requests, preserving input order in the result list.

        ``progress`` (if given) is called in the parent process as
        ``progress(done_count, total, record)`` after each record arrives;
        with ``jobs > 1`` records complete out of order but the returned
        list is always in request order.
        """
        request_list = list(requests)
        total = len(request_list)
        if self.jobs <= 1 or total <= 1:
            records = []
            for index, request in enumerate(request_list):
                record = execute_request(request)
                records.append(record)
                if progress is not None:
                    progress(index + 1, total, record)
            return records

        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.jobs, total)
        with context.Pool(processes=workers) as pool:
            if progress is None:
                return pool.map(execute_request, request_list, chunksize=self.chunksize)
            results: List[Optional[RunRecord]] = [None] * total
            done = 0
            # imap preserves input order, so `record` pairs with its index.
            for index, record in enumerate(
                pool.imap(execute_request, request_list, chunksize=self.chunksize)
            ):
                results[index] = record
                done += 1
                progress(done, total, record)
            return [record for record in results if record is not None]
