"""Distributed, work-stealing sweep execution over a shared cache directory.

The content-addressed :class:`~repro.orchestration.cache.ResultCache` already
makes results location-independent: a record stored under its ``request_id``
by *any* process is byte-identical to the record any other process would
produce.  This module adds the two missing pieces for running one sweep
across many workers -- on one host or on many hosts sharing the cache
directory -- without a coordinator process:

* a **grid manifest** (``<cache>/fleet/grid.json``): the sweep's request
  list in canonical encoding, published once so workers started on any host
  (``repro worker --cache DIR``) know what to execute;
* a **claim protocol** (:mod:`.claims`): workers claim points by
  ``request_id`` via atomic lease files, heartbeat while executing, and
  steal leases whose heartbeats have stopped (a SIGKILLed worker's in-flight
  points are re-executed by survivors after one TTL).

Workers are stateless and interchangeable: each loops over the grid, skips
points already in the cache, claims and executes misses, and exits when the
grid is fully cached.  :func:`run_fleet` is the convenience driver behind
``repro sweep --fleet N``: it publishes the manifest, spawns N local worker
processes, restarts crashed ones, and finishes with a **reconciliation
pass** built on the same :func:`~repro.orchestration.cache.plan_resume` that
``sweep --resume`` uses -- so a sweep interrupted at any point (mid-shard
write, mid-claim, mid-store rewrite) converges to an output store
byte-identical to a ``--jobs 1`` run of the same grid.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .cache import ResultCache, plan_resume
from .claims import DEFAULT_LEASE_TTL, ClaimBoard
from .request import RunRecord, RunRequest, canonical_json, execute_request, _sha256
from .runner import BatchRunner
from .store import RunStore, atomic_write_text

#: Seconds an idle worker sleeps before re-scanning the grid for newly
#: expired leases or newly cached results.
DEFAULT_POLL_INTERVAL = 0.2

#: Subdirectory of the cache root holding all fleet coordination state
#: (grid manifest, claim leases, per-worker stats).  Result shards stay at
#: the cache root, untouched, so a fleet cache is also a plain cache.
FLEET_DIRNAME = "fleet"


def fleet_dir(cache_root: Union[str, Path]) -> Path:
    return Path(cache_root) / FLEET_DIRNAME


def claims_dir(cache_root: Union[str, Path]) -> Path:
    return fleet_dir(cache_root) / "claims"


def manifest_path(cache_root: Union[str, Path]) -> Path:
    return fleet_dir(cache_root) / "grid.json"


def stats_dir(cache_root: Union[str, Path], sweep_id: str) -> Path:
    return fleet_dir(cache_root) / "stats" / sweep_id


def sweep_id_for(requests: Sequence[RunRequest]) -> str:
    """Stable identity of one grid: the hash of its ordered request ids."""
    return _sha256(canonical_json([request.request_id for request in requests]))[:12]


def publish_grid(cache_root: Union[str, Path], requests: Sequence[RunRequest]) -> str:
    """Write the grid manifest workers resolve their work-list from.

    Publishing is atomic and idempotent; re-publishing a *different* grid
    simply replaces the manifest (workers snapshot it at startup, and points
    of an older grid are addressed by ``request_id``, so stale workers can
    only ever contribute valid cache entries).
    """
    sweep_id = sweep_id_for(requests)
    payload = {
        "schema": 1,
        "sweep_id": sweep_id,
        "requests": [request.as_dict() for request in requests],
    }
    atomic_write_text(manifest_path(cache_root), canonical_json(payload) + "\n")
    return sweep_id


def load_grid(cache_root: Union[str, Path]) -> Tuple[str, List[RunRequest]]:
    """Read the published manifest back into (sweep_id, requests)."""
    path = manifest_path(cache_root)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no fleet manifest at {path}; publish one with "
            "`repro sweep ... --fleet N --cache DIR` before joining workers"
        ) from None
    requests = [RunRequest.from_dict(entry) for entry in payload["requests"]]
    return str(payload["sweep_id"]), requests


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------


@dataclass
class FleetWorkerStats:
    """What one worker did during a sweep (wall-clock included: these are
    operational diagnostics, never part of the deterministic result store)."""

    owner: str
    claimed: int = 0
    stolen: int = 0
    executed: int = 0
    deduped: int = 0
    released: int = 0
    lost: int = 0
    elapsed_seconds: float = 0.0

    @property
    def throughput(self) -> float:
        """Executed grid points per second of worker wall-clock."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.executed / self.elapsed_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "owner": self.owner,
            "claimed": self.claimed,
            "stolen": self.stolen,
            "executed": self.executed,
            "deduped": self.deduped,
            "released": self.released,
            "lost": self.lost,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FleetWorkerStats":
        return cls(
            owner=str(payload["owner"]),
            claimed=int(payload["claimed"]),
            stolen=int(payload["stolen"]),
            executed=int(payload["executed"]),
            deduped=int(payload["deduped"]),
            released=int(payload["released"]),
            lost=int(payload["lost"]),
            elapsed_seconds=float(payload["elapsed_seconds"]),
        )


class _HeartbeatPump:
    """Daemon thread renewing every lease the board currently owns.

    Runs independently of the worker's main loop so a long engine run cannot
    starve its own lease into stealability; a SIGKILL stops the pump with
    the process, which is exactly what lets survivors steal.
    """

    def __init__(self, board: ClaimBoard, interval: float) -> None:
        self._board = board
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="fleet-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            for request_id in list(self._board.owned):
                if request_id not in self._board.owned:
                    continue  # released while we iterated
                try:
                    self._board.heartbeat(request_id)
                except OSError:
                    pass  # transient shared-fs hiccup; retry next beat

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _rotation(owner: str, count: int) -> int:
    """Deterministic per-owner scan offset so workers start on different
    points instead of stampeding the same lease."""
    if count == 0:
        return 0
    return int(_sha256(owner)[:8], 16) % count


def run_worker(
    cache_dir: Union[str, Path],
    owner: Optional[str] = None,
    ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    heartbeat_interval: Optional[float] = None,
    kill_after: Optional[int] = None,
    requests: Optional[Sequence[RunRequest]] = None,
) -> FleetWorkerStats:
    """Join the sweep published in ``cache_dir`` and work until it is done.

    The loop is: skip points already cached (counted as *deduped*), claim or
    steal a miss, re-check the cache (the claim may have raced a completion),
    execute, store through the atomic cache shards, release.  The worker
    exits when every grid point is cached -- its own work plus everyone
    else's.

    ``kill_after`` is the crash-tolerance test hook used by CI: after that
    many successful executions the worker SIGKILLs itself *while holding its
    next claim*, leaving exactly the dangling lease the steal path must
    recover.  ``None`` (the default) disables it.

    ``requests`` overrides the manifest (used by in-process tests); normal
    workers load the published grid.
    """
    start = time.perf_counter()
    if requests is None:
        sweep_id, request_list = load_grid(cache_dir)
    else:
        request_list = list(requests)
        sweep_id = sweep_id_for(request_list)
    cache = ResultCache(cache_dir)
    board = ClaimBoard(
        claims_dir(cache_dir), owner=owner, ttl=ttl, steal_jitter=0.25
    )
    if heartbeat_interval is None:
        heartbeat_interval = max(ttl / 4.0, 0.02)
    pump = _HeartbeatPump(board, heartbeat_interval)
    pump.start()
    pending: Dict[str, RunRequest] = {
        request.request_id: request for request in request_list
    }
    executed_ids: set = set()
    deduped = 0
    try:
        while pending:
            progress = False
            order = list(pending)
            offset = _rotation(board.owner, len(order))
            for request_id in order[offset:] + order[:offset]:
                if request_id not in pending:
                    continue  # completed earlier in this same pass
                cache.refresh(request_id)
                if request_id in cache:
                    pending.pop(request_id)
                    deduped += 1
                    progress = True
                    continue
                if board.try_acquire(request_id) is None:
                    continue
                if kill_after is not None and len(executed_ids) >= kill_after:
                    _sigkill_self()
                # The lease may have raced a completion (claimer finished
                # and published between our cache probe and our steal).
                cache.refresh(request_id)
                if request_id in cache:
                    board.release(request_id)
                    pending.pop(request_id)
                    deduped += 1
                    progress = True
                    continue
                record = execute_request(pending[request_id])
                cache.put(record)
                board.release(request_id)
                executed_ids.add(request_id)
                pending.pop(request_id)
                progress = True
            if pending and not progress:
                time.sleep(poll_interval)
    finally:
        pump.stop()
    stats = FleetWorkerStats(
        owner=board.owner,
        claimed=board.stats.claimed,
        stolen=board.stats.stolen,
        executed=len(executed_ids),
        deduped=deduped,
        released=board.stats.released,
        lost=board.stats.lost,
        elapsed_seconds=time.perf_counter() - start,
    )
    _write_worker_stats(cache_dir, sweep_id, stats)
    return stats


def _sigkill_self() -> None:  # pragma: no cover - the point is not to return
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


def _write_worker_stats(
    cache_dir: Union[str, Path], sweep_id: str, stats: FleetWorkerStats
) -> None:
    atomic_write_text(
        stats_dir(cache_dir, sweep_id) / f"{stats.owner}.json",
        json.dumps(stats.as_dict(), sort_keys=True) + "\n",
    )


def load_worker_stats(
    cache_dir: Union[str, Path], sweep_id: str
) -> List[FleetWorkerStats]:
    """Every surviving worker's stats report for one sweep, by owner name.

    A SIGKILLed worker never writes its report; its contribution is visible
    only through the survivors' ``stolen`` counts, which is precisely the
    signal the crash-tolerance smoke asserts on.
    """
    directory = stats_dir(cache_dir, sweep_id)
    reports = []
    if directory.is_dir():
        for path in sorted(directory.glob("*.json")):
            try:
                reports.append(FleetWorkerStats.from_dict(json.loads(path.read_text())))
            except (ValueError, KeyError, TypeError):
                continue  # torn stats file from a crash mid-report
    return reports


def _worker_entry(
    cache_dir: str,
    owner: Optional[str],
    ttl: float,
    poll_interval: float,
    kill_after: Optional[int],
) -> None:
    """Module-level process target (must stay picklable for spawn contexts)."""
    run_worker(
        cache_dir,
        owner=owner,
        ttl=ttl,
        poll_interval=poll_interval,
        kill_after=kill_after,
    )


# ---------------------------------------------------------------------------
# Fleet driver: local spawn, supervision, reconciliation.
# ---------------------------------------------------------------------------


@dataclass
class FleetStats:
    """Summary of one fleet sweep: per-worker reports plus driver-side
    supervision and reconciliation counters."""

    sweep_id: str
    grid_points: int
    workers: List[FleetWorkerStats] = field(default_factory=list)
    restarts: int = 0
    reconcile_passes: int = 0
    reused_records: int = 0  # intact records recovered from a prior store
    executed_locally: int = 0  # reconciliation fallback executions
    torn_records: int = 0  # damaged store lines seen while reconciling
    reaped_leases: int = 0  # dangling leases of already-completed points

    def total(self, field_name: str) -> int:
        return sum(getattr(worker, field_name) for worker in self.workers)

    def summary(self) -> str:
        text = (
            f"fleet {self.sweep_id}: {self.grid_points} point(s), "
            f"{len(self.workers)} worker report(s), "
            f"{self.total('executed')} executed, "
            f"{self.total('deduped')} deduped, "
            f"{self.total('claimed')} claimed, "
            f"{self.total('stolen')} stolen, "
            f"{self.restarts} restart(s), "
            f"{self.reconcile_passes} reconciliation pass(es)"
        )
        if self.reused_records:
            text += f", {self.reused_records} reused from store"
        if self.executed_locally:
            text += f", {self.executed_locally} executed locally"
        if self.torn_records:
            text += f", {self.torn_records} torn record(s) dropped"
        if self.reaped_leases:
            text += f", {self.reaped_leases} dangling lease(s) reaped"
        return text


def reconcile(
    requests: Sequence[RunRequest],
    cache: ResultCache,
    store: Optional[RunStore] = None,
    stats: Optional[FleetStats] = None,
    max_passes: int = 3,
) -> List[RunRecord]:
    """Converge store + cache to exactly this grid, in grid order.

    Reuses :func:`plan_resume` against the (possibly absent, partial or
    torn) store, serves the missing points from the cache -- executing any
    true stragglers in-process, which makes reconciliation total even after
    a whole-fleet crash -- and rewrites the store atomically.  The result is
    byte-identical to an uninterrupted ``--jobs 1`` sweep of the same grid,
    whatever the interleaving of worker crashes that preceded it.
    """
    runner = BatchRunner(jobs=1)
    if store is None:
        before = cache.stats.snapshot()
        cache.refresh()
        records = runner.run(list(requests), cache=cache)
        if stats is not None:
            stats.reconcile_passes += 1
            stats.executed_locally += cache.stats.since(before).misses
        return records

    records: List[RunRecord] = []
    for _ in range(max_passes):
        if stats is not None:
            stats.reconcile_passes += 1
        plan = plan_resume(requests, store)
        if stats is not None:
            stats.torn_records += plan.skipped
            stats.reused_records = len(plan.reusable)
        before = cache.stats.snapshot()
        cache.refresh()
        executed = runner.run(plan.missing, cache=cache)
        if stats is not None:
            stats.executed_locally += cache.stats.since(before).misses
        by_id = dict(plan.reusable)
        for record in executed:
            by_id[record.request_id] = record
        records = [by_id[request.request_id] for request in requests]
        store.write(records)
        verify = plan_resume(requests, store)
        if not verify.missing and not verify.skipped and not verify.extra:
            break
    return records


def run_fleet(
    requests: Sequence[RunRequest],
    cache_dir: Union[str, Path],
    workers: int = 2,
    store: Optional[RunStore] = None,
    ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    kill_after: Optional[int] = None,
    max_restarts: Optional[int] = None,
    mp_context: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Tuple[List[RunRecord], FleetStats]:
    """Publish the grid, drive ``workers`` local workers, reconcile.

    ``workers=0`` spawns nothing: it publishes (or re-publishes) the
    manifest and reconciles whatever external workers have cached so far,
    executing any remainder in-process -- the "finalize now" mode for
    multi-host sweeps whose workers joined via ``repro worker``.

    Crashed workers (non-zero exit, e.g. SIGKILL) are restarted up to
    ``max_restarts`` times (default: one restart per worker); their leases
    are stolen by survivors after ``ttl``.  ``kill_after`` arms the crash
    hook on the *first* worker only -- see :func:`run_worker`.
    """
    request_list = list(requests)
    sweep_id = publish_grid(cache_dir, request_list)
    stats = FleetStats(sweep_id=sweep_id, grid_points=len(request_list))
    if max_restarts is None:
        max_restarts = max(1, workers)
    cache = ResultCache(cache_dir)
    wanted = [request.request_id for request in request_list]

    context = multiprocessing.get_context(mp_context)

    def spawn(index: int, hook: Optional[int]) -> multiprocessing.process.BaseProcess:
        process = context.Process(
            target=_worker_entry,
            args=(str(cache_dir), None, ttl, poll_interval, hook),
            name=f"fleet-worker-{index}",
            daemon=True,
        )
        process.start()
        return process

    processes = [spawn(index, kill_after if index == 0 else None)
                 for index in range(workers)]
    try:
        if processes:
            while True:
                cache.refresh()
                if all(request_id in cache for request_id in wanted):
                    break
                alive = 0
                for index, process in enumerate(processes):
                    if process.is_alive():
                        alive += 1
                        continue
                    if process.exitcode not in (0, None) and stats.restarts < max_restarts:
                        stats.restarts += 1
                        if log is not None:
                            log(
                                f"worker {process.name} exited with "
                                f"{process.exitcode}; restart "
                                f"{stats.restarts}/{max_restarts}"
                            )
                        processes[index] = spawn(workers + stats.restarts, None)
                        alive += 1
                if alive == 0:
                    # Whole fleet gone and restart budget spent: fall through,
                    # reconciliation executes the remainder in-process.
                    break
                time.sleep(poll_interval)
            for process in processes:
                process.join(timeout=max(10.0, 4 * ttl))
    finally:
        for process in processes:
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
                process.join(timeout=5.0)

    records = reconcile(request_list, cache, store=store, stats=stats)
    board = ClaimBoard(claims_dir(cache_dir), owner="reconciler", ttl=ttl)
    cache.refresh()
    stats.reaped_leases = board.sweep_completed(lambda rid: rid in cache)
    stats.workers = load_worker_stats(cache_dir, sweep_id)
    return records, stats
