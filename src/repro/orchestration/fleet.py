"""Distributed, work-stealing sweep execution over a shared cache directory.

The content-addressed :class:`~repro.orchestration.cache.ResultCache` already
makes results location-independent: a record stored under its ``request_id``
by *any* process is byte-identical to the record any other process would
produce.  This module adds the two missing pieces for running one sweep
across many workers -- on one host or on many hosts sharing the cache
directory -- without a coordinator process:

* a **grid manifest** (``<cache>/fleet/grid.json``): the sweep's request
  list in canonical encoding, published once so workers started on any host
  (``repro worker --cache DIR``) know what to execute;
* a **claim protocol** (:mod:`.claims`): workers claim points by
  ``request_id`` via atomic lease files, heartbeat while executing, and
  steal leases whose heartbeats have stopped (a SIGKILLed worker's in-flight
  points are re-executed by survivors after one TTL).

Workers are stateless and interchangeable: each loops over the grid, skips
points already in the cache, claims and executes misses, and exits when the
grid is fully cached.  :func:`run_fleet` is the convenience driver behind
``repro sweep --fleet N``: it publishes the manifest, spawns N local worker
processes, restarts crashed ones, and finishes with a **reconciliation
pass** built on the same :func:`~repro.orchestration.cache.plan_resume` that
``sweep --resume`` uses -- so a sweep interrupted at any point (mid-shard
write, mid-claim, mid-store rewrite) converges to an output store
byte-identical to a ``--jobs 1`` run of the same grid.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..channel.faults import ChannelDegradedError
from ..core.snapshot import AbortRun
from .cache import ResultCache, plan_resume
from .chaos import ChaosConfig, ChaosMonkey
from .claims import DEFAULT_LEASE_TTL, ClaimBoard
from .durable import CheckpointPolicy, DurableRunEvents, execute_request_durable
from .request import RunRecord, RunRequest, canonical_json, _sha256
from .runner import BatchRunner
from .store import RunStore, atomic_write_text
from .supervisor import RunFailure

#: Seconds an idle worker sleeps before re-scanning the grid for newly
#: expired leases or newly cached results.
DEFAULT_POLL_INTERVAL = 0.2

#: Subdirectory of the cache root holding all fleet coordination state
#: (grid manifest, claim leases, per-worker stats).  Result shards stay at
#: the cache root, untouched, so a fleet cache is also a plain cache.
FLEET_DIRNAME = "fleet"


def fleet_dir(cache_root: Union[str, Path]) -> Path:
    return Path(cache_root) / FLEET_DIRNAME


def claims_dir(cache_root: Union[str, Path]) -> Path:
    return fleet_dir(cache_root) / "claims"


def manifest_path(cache_root: Union[str, Path]) -> Path:
    return fleet_dir(cache_root) / "grid.json"


def stats_dir(cache_root: Union[str, Path], sweep_id: str) -> Path:
    return fleet_dir(cache_root) / "stats" / sweep_id


def snapshots_dir(cache_root: Union[str, Path]) -> Path:
    """Shared durable-snapshot directory, keyed by ``request_id``.

    Shared (not per-worker) on purpose: a worker stealing an expired lease
    finds the victim's last snapshot at the same path its own checkpoints
    would use, so the stolen point **resumes mid-run** instead of restarting
    at cycle 0.
    """
    return fleet_dir(cache_root) / "snapshots"


def chaos_state_dir(cache_root: Union[str, Path]) -> Path:
    """Shared fired-marker directory for the chaos harness (survives kills)."""
    return fleet_dir(cache_root) / "chaos"


def attempts_dir(cache_root: Union[str, Path], sweep_id: str) -> Path:
    """Cross-worker attempt ledger: one marker file per execution attempt."""
    return fleet_dir(cache_root) / "attempts" / sweep_id


def quarantine_dir(cache_root: Union[str, Path], sweep_id: str) -> Path:
    return fleet_dir(cache_root) / "quarantine" / sweep_id


def quarantine_path(
    cache_root: Union[str, Path], sweep_id: str, request_id: str
) -> Path:
    return quarantine_dir(cache_root, sweep_id) / f"{request_id}.json"


def write_quarantine(
    cache_root: Union[str, Path], sweep_id: str, failure: RunFailure
) -> None:
    """Quarantine one poison point: its failure record, atomically published.

    The file's existence is the signal -- every worker (and the fleet driver)
    treats a quarantined point as done, which is what stops a poisonous
    request from eating the whole fleet's restart budget.
    """
    atomic_write_text(
        quarantine_path(cache_root, sweep_id, failure.request_id),
        canonical_json(failure.as_dict()) + "\n",
    )


def load_quarantine(
    cache_root: Union[str, Path], sweep_id: str
) -> List[RunFailure]:
    """Every quarantined point of one sweep, sorted by request id."""
    directory = quarantine_dir(cache_root, sweep_id)
    failures = []
    if directory.is_dir():
        for path in sorted(directory.glob("*.json")):
            try:
                failures.append(RunFailure.from_dict(json.loads(path.read_text())))
            except (ValueError, KeyError, TypeError):
                continue  # torn quarantine file from a crash mid-write
    return failures


def _count_attempts(
    cache_root: Union[str, Path], sweep_id: str, request_id: str
) -> int:
    directory = attempts_dir(cache_root, sweep_id) / request_id
    if not directory.is_dir():
        return 0
    return sum(1 for _ in directory.glob("*.attempt"))


def _record_attempt(
    cache_root: Union[str, Path], sweep_id: str, request_id: str, owner: str
) -> None:
    """Durably mark "an execution of this point is starting".

    Written *before* executing, so an attempt that SIGKILLs its worker still
    counts -- that persistence is what lets the surviving workers recognise
    a poison point (attempt markers pile up without a cached record) and
    quarantine it instead of dying one by one forever.
    """
    directory = attempts_dir(cache_root, sweep_id) / request_id
    directory.mkdir(parents=True, exist_ok=True)
    fd, _ = tempfile.mkstemp(dir=str(directory), prefix=f"{owner}.", suffix=".attempt")
    os.close(fd)


def sweep_id_for(requests: Sequence[RunRequest]) -> str:
    """Stable identity of one grid: the hash of its ordered request ids."""
    return _sha256(canonical_json([request.request_id for request in requests]))[:12]


def publish_grid(cache_root: Union[str, Path], requests: Sequence[RunRequest]) -> str:
    """Write the grid manifest workers resolve their work-list from.

    Publishing is atomic and idempotent; re-publishing a *different* grid
    simply replaces the manifest (workers snapshot it at startup, and points
    of an older grid are addressed by ``request_id``, so stale workers can
    only ever contribute valid cache entries).
    """
    sweep_id = sweep_id_for(requests)
    payload = {
        "schema": 1,
        "sweep_id": sweep_id,
        "requests": [request.as_dict() for request in requests],
    }
    atomic_write_text(manifest_path(cache_root), canonical_json(payload) + "\n")
    return sweep_id


def load_grid(cache_root: Union[str, Path]) -> Tuple[str, List[RunRequest]]:
    """Read the published manifest back into (sweep_id, requests)."""
    path = manifest_path(cache_root)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no fleet manifest at {path}; publish one with "
            "`repro sweep ... --fleet N --cache DIR` before joining workers"
        ) from None
    requests = [RunRequest.from_dict(entry) for entry in payload["requests"]]
    return str(payload["sweep_id"]), requests


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------


@dataclass
class FleetWorkerStats:
    """What one worker did during a sweep (wall-clock included: these are
    operational diagnostics, never part of the deterministic result store)."""

    owner: str
    claimed: int = 0
    stolen: int = 0
    executed: int = 0
    deduped: int = 0
    released: int = 0
    lost: int = 0
    resumed: int = 0  # executions resumed from a durable snapshot
    retried: int = 0  # executions of points with a prior failed attempt
    quarantined: int = 0  # poison/degraded points this worker quarantined
    drained: int = 0  # leases released on a drain signal (SIGTERM/SIGINT)
    elapsed_seconds: float = 0.0

    @property
    def throughput(self) -> float:
        """Executed grid points per second of worker wall-clock."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.executed / self.elapsed_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "owner": self.owner,
            "claimed": self.claimed,
            "stolen": self.stolen,
            "executed": self.executed,
            "deduped": self.deduped,
            "released": self.released,
            "lost": self.lost,
            "resumed": self.resumed,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "drained": self.drained,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FleetWorkerStats":
        return cls(
            owner=str(payload["owner"]),
            claimed=int(payload["claimed"]),
            stolen=int(payload["stolen"]),
            executed=int(payload["executed"]),
            deduped=int(payload["deduped"]),
            released=int(payload["released"]),
            lost=int(payload["lost"]),
            # Durability counters arrived after the first stats schema; reports
            # written by older workers simply lack them.
            resumed=int(payload.get("resumed", 0)),
            retried=int(payload.get("retried", 0)),
            quarantined=int(payload.get("quarantined", 0)),
            drained=int(payload.get("drained", 0)),
            elapsed_seconds=float(payload["elapsed_seconds"]),
        )


class _HeartbeatPump:
    """Daemon thread renewing every lease the board currently owns.

    Runs independently of the worker's main loop so a long engine run cannot
    starve its own lease into stealability; a SIGKILL stops the pump with
    the process, which is exactly what lets survivors steal.

    ``progress`` + ``stall_after`` make the pump *progress-aware*: when the
    supplied monotonic progress stamp has not advanced for ``stall_after``
    seconds, the pump stops renewing -- a worker that is alive but **stuck**
    (hung engine, chaos hang, deadlocked I/O) then looks exactly like a dead
    one, and survivors steal its lease.  Legitimate long runs keep beating
    because the engine loop stamps progress at every safe point.  A steal
    provoked by a merely-slow cycle stays benign: runs are deterministic,
    both executions publish byte-identical records.
    """

    def __init__(
        self,
        board: ClaimBoard,
        interval: float,
        progress: Optional[Callable[[], float]] = None,
        stall_after: Optional[float] = None,
    ) -> None:
        self._board = board
        self._interval = interval
        self._progress = progress
        self._stall_after = stall_after
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="fleet-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if (
                self._progress is not None
                and self._stall_after is not None
                and time.monotonic() - self._progress() > self._stall_after
            ):
                continue  # stuck: let the lease age into stealability
            for request_id in list(self._board.owned):
                if request_id not in self._board.owned:
                    continue  # released while we iterated
                try:
                    self._board.heartbeat(request_id)
                except OSError:
                    pass  # transient shared-fs hiccup; retry next beat

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _rotation(owner: str, count: int) -> int:
    """Deterministic per-owner scan offset so workers start on different
    points instead of stampeding the same lease."""
    if count == 0:
        return 0
    return int(_sha256(owner)[:8], 16) % count


def _install_drain_handlers(drain: threading.Event) -> Optional[Dict[int, object]]:
    """Route SIGTERM/SIGINT into the drain event; ``None`` off the main thread.

    Signal handlers are a main-thread-only facility in CPython; a worker
    embedded in a test thread simply runs without them (its ``drain`` event
    can still be set programmatically).
    """
    if threading.current_thread() is not threading.main_thread():
        return None
    previous: Dict[int, object] = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(
            signum, lambda _signum, _frame: drain.set()
        )
    return previous


def _restore_handlers(previous: Optional[Dict[int, object]]) -> None:
    if previous is None:
        return
    for signum, handler in previous.items():
        try:
            signal.signal(signum, handler)
        except (TypeError, ValueError):  # pragma: no cover - exotic handler
            pass


def run_worker(
    cache_dir: Union[str, Path],
    owner: Optional[str] = None,
    ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    heartbeat_interval: Optional[float] = None,
    kill_after: Optional[int] = None,
    requests: Optional[Sequence[RunRequest]] = None,
    checkpoint: Optional[CheckpointPolicy] = None,
    chaos: Optional[ChaosConfig] = None,
    max_retries: int = 2,
    drain_on_signal: bool = False,
    drain: Optional[threading.Event] = None,
) -> FleetWorkerStats:
    """Join the sweep published in ``cache_dir`` and work until it is done.

    The loop is: skip points already cached (counted as *deduped*), claim or
    steal a miss, re-check the cache (the claim may have raced a completion),
    execute, store through the atomic cache shards, release.  The worker
    exits when every grid point is cached or quarantined -- its own work
    plus everyone else's.

    Execution is durable (:func:`~repro.orchestration.durable.
    execute_request_durable`): with a ``checkpoint`` policy the worker
    snapshots under its lease into the sweep's shared snapshot directory, so
    a worker stealing this point after a crash **resumes from the victim's
    last snapshot** instead of cycle 0.  A request whose attempts (recorded
    durably, across all workers) exceed ``max_retries`` extra tries is
    quarantined as a poison point rather than executed again; deterministic
    channel degradations are quarantined immediately, with no retry burned.

    ``drain_on_signal`` turns SIGTERM/SIGINT into a *graceful drain*: the
    engine loop stops at the next safe point (persisting a final snapshot
    when checkpointing is on), every owned lease is released, the heartbeat
    pump is joined and the stats report is written -- nothing is left for
    survivors to steal or re-execute beyond the snapshot handoff.  ``drain``
    exposes the same event programmatically.

    ``kill_after`` is the crash-tolerance test hook used by CI: after that
    many successful executions the worker SIGKILLs itself *while holding its
    next claim*, leaving exactly the dangling lease the steal path must
    recover.  ``None`` (the default) disables it.

    ``requests`` overrides the manifest (used by in-process tests); normal
    workers load the published grid.
    """
    start = time.perf_counter()
    if requests is None:
        sweep_id, request_list = load_grid(cache_dir)
    else:
        request_list = list(requests)
        sweep_id = sweep_id_for(request_list)
    cache = ResultCache(cache_dir)
    board = ClaimBoard(
        claims_dir(cache_dir), owner=owner, ttl=ttl, steal_jitter=0.25
    )
    if heartbeat_interval is None:
        heartbeat_interval = max(ttl / 4.0, 0.02)
    if drain is None:
        drain = threading.Event()
    previous_handlers = _install_drain_handlers(drain) if drain_on_signal else None
    snapshot_root = snapshots_dir(cache_dir)
    snapshot_root.mkdir(parents=True, exist_ok=True)
    monkey = (
        None
        if chaos is None
        else ChaosMonkey(chaos, state_dir=chaos_state_dir(cache_dir))
    )
    # The progress stamp feeds the stall-aware heartbeat pump: bumped by the
    # loop between points and by the engine at every safe point.  If it stops
    # moving the pump stops renewing and this worker's leases become
    # stealable -- a hung run must not be kept alive by its own heartbeat.
    progress_stamp = [time.monotonic()]

    def touch_progress(_committed: int = 0) -> None:
        progress_stamp[0] = time.monotonic()

    pump = _HeartbeatPump(
        board,
        heartbeat_interval,
        progress=lambda: progress_stamp[0],
        stall_after=max(ttl, 4.0 * heartbeat_interval),
    )
    pump.start()
    pending: Dict[str, RunRequest] = {
        request.request_id: request for request in request_list
    }
    executed_ids: set = set()
    stats = FleetWorkerStats(owner=board.owner)
    try:
        while pending and not drain.is_set():
            progress = False
            order = list(pending)
            offset = _rotation(board.owner, len(order))
            for request_id in order[offset:] + order[:offset]:
                if drain.is_set():
                    break
                if request_id not in pending:
                    continue  # completed earlier in this same pass
                touch_progress()
                if quarantine_path(cache_dir, sweep_id, request_id).exists():
                    pending.pop(request_id)
                    progress = True
                    continue
                cache.refresh(request_id)
                if request_id in cache:
                    pending.pop(request_id)
                    stats.deduped += 1
                    progress = True
                    continue
                if board.try_acquire(request_id) is None:
                    continue
                if kill_after is not None and len(executed_ids) >= kill_after:
                    _sigkill_self()
                # The lease may have raced a completion (claimer finished
                # and published between our cache probe and our steal).
                cache.refresh(request_id)
                if request_id in cache:
                    board.release(request_id)
                    pending.pop(request_id)
                    stats.deduped += 1
                    progress = True
                    continue
                request = pending[request_id]
                prior = _count_attempts(cache_dir, sweep_id, request_id)
                if prior > max_retries:
                    # 1 + max_retries attempts started and none produced a
                    # record: every execution died with its worker.  Poison.
                    write_quarantine(
                        cache_dir,
                        sweep_id,
                        RunFailure(
                            request_id=request_id,
                            label=request.display_label(),
                            scenario=request.scenario,
                            mode=request.mode,
                            kind="poison",
                            attempts=prior,
                            message=(
                                f"{prior} attempt(s) started without ever "
                                "publishing a record; quarantined as poison"
                            ),
                        ),
                    )
                    stats.quarantined += 1
                    board.release(request_id)
                    pending.pop(request_id)
                    progress = True
                    continue
                _record_attempt(cache_dir, sweep_id, request_id, board.owner)
                if prior:
                    stats.retried += 1
                events = DurableRunEvents()
                try:
                    record = execute_request_durable(
                        request,
                        snapshot_root,
                        policy=checkpoint or CheckpointPolicy(),
                        heartbeat=touch_progress,
                        chaos=monkey,
                        drain=drain.is_set,
                        events=events,
                    )
                except AbortRun:
                    # Drain fired mid-run; the final snapshot (if
                    # checkpointing) is already on disk for a successor.
                    break
                except ChannelDegradedError as exc:
                    write_quarantine(
                        cache_dir,
                        sweep_id,
                        RunFailure(
                            request_id=request_id,
                            label=request.display_label(),
                            scenario=request.scenario,
                            mode=request.mode,
                            kind="degraded",
                            attempts=prior + 1,
                            message=str(exc),
                        ),
                    )
                    stats.quarantined += 1
                    board.release(request_id)
                    pending.pop(request_id)
                    progress = True
                    continue
                except Exception as exc:
                    if prior + 1 > max_retries:
                        write_quarantine(
                            cache_dir,
                            sweep_id,
                            RunFailure(
                                request_id=request_id,
                                label=request.display_label(),
                                scenario=request.scenario,
                                mode=request.mode,
                                kind="poison",
                                attempts=prior + 1,
                                message=f"{type(exc).__name__}: {exc}",
                            ),
                        )
                        stats.quarantined += 1
                        pending.pop(request_id)
                    board.release(request_id)
                    progress = True
                    continue
                if events.resumed_from_cycle is not None:
                    stats.resumed += 1
                cache.put(record)
                board.release(request_id)
                executed_ids.add(request_id)
                pending.pop(request_id)
                progress = True
            if pending and not progress and not drain.is_set():
                time.sleep(poll_interval)
    finally:
        # Graceful shutdown for drain, KeyboardInterrupt and plain
        # completion alike: nothing may stay claimed, and the pump thread
        # must be joined before the process exits.
        for request_id in list(board.owned):
            board.release(request_id)
            if drain.is_set():
                stats.drained += 1
        pump.stop()
        _restore_handlers(previous_handlers)
    stats.claimed = board.stats.claimed
    stats.stolen = board.stats.stolen
    stats.executed = len(executed_ids)
    stats.released = board.stats.released
    stats.lost = board.stats.lost
    stats.elapsed_seconds = time.perf_counter() - start
    _write_worker_stats(cache_dir, sweep_id, stats)
    return stats


def _sigkill_self() -> None:  # pragma: no cover - the point is not to return
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


def _write_worker_stats(
    cache_dir: Union[str, Path], sweep_id: str, stats: FleetWorkerStats
) -> None:
    atomic_write_text(
        stats_dir(cache_dir, sweep_id) / f"{stats.owner}.json",
        json.dumps(stats.as_dict(), sort_keys=True) + "\n",
    )


def load_worker_stats(
    cache_dir: Union[str, Path], sweep_id: str
) -> List[FleetWorkerStats]:
    """Every surviving worker's stats report for one sweep, by owner name.

    A SIGKILLed worker never writes its report; its contribution is visible
    only through the survivors' ``stolen`` counts, which is precisely the
    signal the crash-tolerance smoke asserts on.
    """
    directory = stats_dir(cache_dir, sweep_id)
    reports = []
    if directory.is_dir():
        for path in sorted(directory.glob("*.json")):
            try:
                reports.append(FleetWorkerStats.from_dict(json.loads(path.read_text())))
            except (ValueError, KeyError, TypeError):
                continue  # torn stats file from a crash mid-report
    return reports


def _worker_entry(
    cache_dir: str,
    owner: Optional[str],
    ttl: float,
    poll_interval: float,
    kill_after: Optional[int],
    checkpoint: Optional[Tuple[Optional[int], Optional[float]]] = None,
    chaos_payload: Optional[Dict[str, object]] = None,
    max_retries: int = 2,
    drain_on_signal: bool = True,
) -> None:
    """Module-level process target (must stay picklable for spawn contexts)."""
    policy = None
    if checkpoint is not None:
        policy = CheckpointPolicy(
            every_cycles=checkpoint[0], every_seconds=checkpoint[1]
        )
    chaos = None if chaos_payload is None else ChaosConfig.from_dict(chaos_payload)
    run_worker(
        cache_dir,
        owner=owner,
        ttl=ttl,
        poll_interval=poll_interval,
        kill_after=kill_after,
        checkpoint=policy,
        chaos=chaos,
        max_retries=max_retries,
        drain_on_signal=drain_on_signal,
    )


# ---------------------------------------------------------------------------
# Fleet driver: local spawn, supervision, reconciliation.
# ---------------------------------------------------------------------------


@dataclass
class FleetStats:
    """Summary of one fleet sweep: per-worker reports plus driver-side
    supervision and reconciliation counters."""

    sweep_id: str
    grid_points: int
    workers: List[FleetWorkerStats] = field(default_factory=list)
    restarts: int = 0
    reconcile_passes: int = 0
    reused_records: int = 0  # intact records recovered from a prior store
    executed_locally: int = 0  # reconciliation fallback executions
    torn_records: int = 0  # damaged store lines seen while reconciling
    reaped_leases: int = 0  # dangling leases of already-completed points
    quarantined: int = 0  # points in the sweep's quarantine report

    def total(self, field_name: str) -> int:
        return sum(getattr(worker, field_name) for worker in self.workers)

    def summary(self) -> str:
        text = (
            f"fleet {self.sweep_id}: {self.grid_points} point(s), "
            f"{len(self.workers)} worker report(s), "
            f"{self.total('executed')} executed, "
            f"{self.total('deduped')} deduped, "
            f"{self.total('claimed')} claimed, "
            f"{self.total('stolen')} stolen, "
            f"{self.restarts} restart(s), "
            f"{self.reconcile_passes} reconciliation pass(es)"
        )
        if self.reused_records:
            text += f", {self.reused_records} reused from store"
        if self.executed_locally:
            text += f", {self.executed_locally} executed locally"
        if self.torn_records:
            text += f", {self.torn_records} torn record(s) dropped"
        if self.reaped_leases:
            text += f", {self.reaped_leases} dangling lease(s) reaped"
        if self.quarantined:
            text += f", {self.quarantined} point(s) quarantined"
        return text


def reconcile(
    requests: Sequence[RunRequest],
    cache: ResultCache,
    store: Optional[RunStore] = None,
    stats: Optional[FleetStats] = None,
    max_passes: int = 3,
) -> List[RunRecord]:
    """Converge store + cache to exactly this grid, in grid order.

    Reuses :func:`plan_resume` against the (possibly absent, partial or
    torn) store, serves the missing points from the cache -- executing any
    true stragglers in-process, which makes reconciliation total even after
    a whole-fleet crash -- and rewrites the store atomically.  The result is
    byte-identical to an uninterrupted ``--jobs 1`` sweep of the same grid,
    whatever the interleaving of worker crashes that preceded it.
    """
    runner = BatchRunner(jobs=1)
    if store is None:
        before = cache.stats.snapshot()
        cache.refresh()
        records = runner.run(list(requests), cache=cache)
        if stats is not None:
            stats.reconcile_passes += 1
            stats.executed_locally += cache.stats.since(before).misses
        return records

    records: List[RunRecord] = []
    for _ in range(max_passes):
        if stats is not None:
            stats.reconcile_passes += 1
        plan = plan_resume(requests, store)
        if stats is not None:
            stats.torn_records += plan.skipped
            stats.reused_records = len(plan.reusable)
        before = cache.stats.snapshot()
        cache.refresh()
        executed = runner.run(plan.missing, cache=cache)
        if stats is not None:
            stats.executed_locally += cache.stats.since(before).misses
        by_id = dict(plan.reusable)
        for record in executed:
            by_id[record.request_id] = record
        records = [by_id[request.request_id] for request in requests]
        store.write(records)
        verify = plan_resume(requests, store)
        if not verify.missing and not verify.skipped and not verify.extra:
            break
    return records


def run_fleet(
    requests: Sequence[RunRequest],
    cache_dir: Union[str, Path],
    workers: int = 2,
    store: Optional[RunStore] = None,
    ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    kill_after: Optional[int] = None,
    max_restarts: Optional[int] = None,
    mp_context: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    checkpoint: Optional[CheckpointPolicy] = None,
    chaos: Optional[ChaosConfig] = None,
    max_retries: int = 2,
) -> Tuple[List[RunRecord], FleetStats]:
    """Publish the grid, drive ``workers`` local workers, reconcile.

    ``workers=0`` spawns nothing: it publishes (or re-publishes) the
    manifest and reconciles whatever external workers have cached so far,
    executing any remainder in-process -- the "finalize now" mode for
    multi-host sweeps whose workers joined via ``repro worker``.

    Crashed workers (non-zero exit, e.g. SIGKILL) are restarted up to
    ``max_restarts`` times (default: one restart per worker); their leases
    are stolen by survivors after ``ttl``.  ``kill_after`` arms the crash
    hook on the *first* worker only -- see :func:`run_worker`.

    ``checkpoint`` enables durable snapshots under the leases, making every
    steal and restart a mid-run resume; ``chaos`` arms the deterministic
    failure-injection harness in every worker.  Points quarantined by the
    workers (poison or deterministically degraded) are excluded from the
    returned records and from the store; read their failure records with
    :func:`load_quarantine` (``stats.quarantined`` carries the count).
    Workers are spawned with ``drain_on_signal`` enabled, so the driver's
    terminate-on-teardown is a graceful drain, not a kill.
    """
    request_list = list(requests)
    sweep_id = publish_grid(cache_dir, request_list)
    stats = FleetStats(sweep_id=sweep_id, grid_points=len(request_list))
    if max_restarts is None:
        max_restarts = max(1, workers)
    cache = ResultCache(cache_dir)
    wanted = [request.request_id for request in request_list]
    checkpoint_spec = (
        None
        if checkpoint is None
        else (checkpoint.every_cycles, checkpoint.every_seconds)
    )
    chaos_payload = None if chaos is None else chaos.as_dict()

    def quarantined_ids() -> set:
        directory = quarantine_dir(cache_dir, sweep_id)
        if not directory.is_dir():
            return set()
        return {path.stem for path in directory.glob("*.json")}

    context = multiprocessing.get_context(mp_context)

    def spawn(index: int, hook: Optional[int]) -> multiprocessing.process.BaseProcess:
        process = context.Process(
            target=_worker_entry,
            args=(
                str(cache_dir),
                None,
                ttl,
                poll_interval,
                hook,
                checkpoint_spec,
                chaos_payload,
                max_retries,
                True,
            ),
            name=f"fleet-worker-{index}",
            daemon=True,
        )
        process.start()
        return process

    processes = [spawn(index, kill_after if index == 0 else None)
                 for index in range(workers)]
    try:
        if processes:
            while True:
                cache.refresh()
                done = quarantined_ids()
                if all(
                    request_id in cache or request_id in done
                    for request_id in wanted
                ):
                    break
                alive = 0
                for index, process in enumerate(processes):
                    if process.is_alive():
                        alive += 1
                        continue
                    if process.exitcode not in (0, None) and stats.restarts < max_restarts:
                        stats.restarts += 1
                        if log is not None:
                            log(
                                f"worker {process.name} exited with "
                                f"{process.exitcode}; restart "
                                f"{stats.restarts}/{max_restarts}"
                            )
                        processes[index] = spawn(workers + stats.restarts, None)
                        alive += 1
                if alive == 0:
                    # Whole fleet gone and restart budget spent: fall through,
                    # reconciliation executes the remainder in-process.
                    break
                time.sleep(poll_interval)
            for process in processes:
                process.join(timeout=max(10.0, 4 * ttl))
    finally:
        for process in processes:
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()  # workers drain: release leases, snapshot
                process.join(timeout=max(10.0, 4 * ttl))
            if process.is_alive():  # pragma: no cover - drain itself wedged
                process.kill()
                process.join(timeout=5.0)

    quarantined = quarantined_ids()
    stats.quarantined = len(quarantined)
    healthy = [
        request for request in request_list
        if request.request_id not in quarantined
    ]
    records = reconcile(healthy, cache, store=store, stats=stats)
    board = ClaimBoard(claims_dir(cache_dir), owner="reconciler", ttl=ttl)
    cache.refresh()
    stats.reaped_leases = board.sweep_completed(
        lambda rid: rid in cache or rid in quarantined
    )
    stats.workers = load_worker_stats(cache_dir, sweep_id)
    return records, stats
