"""Supervised execution: deadlines, retries, quarantine, exit codes.

The batch runner assumes every request runs to completion; one hung engine
stalls a sweep forever and one crash aborts it.  This module wraps the
durable executor (:mod:`repro.orchestration.durable`) in a parent-side
supervisor:

* each attempt runs in a **child process** with a wall-clock ``deadline``;
  a watchdog in the parent SIGKILLs the child when the deadline passes
  (the child's engine loop writes heartbeats, so the failure record can say
  how far it got);
* failed attempts are **retried with exponential backoff** -- and because
  the child checkpoints through the durable executor, a retry resumes from
  the latest snapshot instead of cycle 0;
* a request that exhausts its retries is **quarantined** as a *poison
  point*: the sweep keeps going and the failure lands in a structured
  :class:`RunFailure` written to a ``.failures`` sidecar next to the run
  store -- never into the store itself, whose bytes stay identical to a
  fully healthy serial sweep;
* failure kinds map to **distinct process exit codes** so shell scripts and
  CI can branch on what went wrong without parsing output.

Failure taxonomy (and exit codes):

======== ==== =======================================================
kind     exit  meaning
======== ==== =======================================================
timeout   10  the watchdog killed an attempt past its deadline
crash     11  the child died (signal or non-zero exit) on its own
poison    12  retries exhausted; the request is quarantined
degraded  13  the channel degraded deterministically (never retried:
              the same request always degrades the same way)
======== ==== =======================================================
"""

from __future__ import annotations

import json
import sys
import time
import traceback
import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..channel.faults import ChannelDegradedError
from .chaos import ChaosConfig, ChaosMonkey
from .durable import CheckpointPolicy, DurableRunEvents, execute_request_durable
from .request import RunRecord, RunRequest, canonical_json
from .store import atomic_write_text, parse_record_line

#: Exit code of a run killed by the watchdog for blowing its deadline.
EXIT_TIMEOUT = 10
#: Exit code of a run whose process died on its own (signal / exception).
EXIT_CRASH = 11
#: Exit code of a request quarantined after exhausting its retries.
EXIT_POISON = 12
#: Exit code of a deterministic channel degradation (retrying cannot help).
EXIT_DEGRADED = 13

#: Failure kind -> process exit code.
EXIT_CODES: Dict[str, int] = {
    "timeout": EXIT_TIMEOUT,
    "crash": EXIT_CRASH,
    "poison": EXIT_POISON,
    "degraded": EXIT_DEGRADED,
}

#: Quarantine severity, most severe first: a poison point means the sweep is
#: incomplete even after retries, a degradation is an *expected* outcome of
#: the modelled channel.
_SEVERITY = ("poison", "crash", "timeout", "degraded")


@dataclass(frozen=True)
class SupervisorPolicy:
    """How hard to try before declaring a request a poison point.

    Attributes:
        deadline: per-*attempt* wall-clock budget in seconds (``None`` waits
            forever -- only sensible when chaos cannot hang a run).
        max_retries: extra attempts after the first.  ``0`` disables retry;
            the failure then keeps its underlying kind instead of ``poison``.
        backoff_base / backoff_factor / backoff_max: exponential backoff
            between attempts, ``min(base * factor**n, max)`` seconds.
        checkpoint: snapshot cadence handed to the durable executor; with
            checkpoints enabled a retry resumes mid-run instead of replaying
            from cycle 0.
        poll_interval: watchdog polling period in seconds.
        mp_context: :mod:`multiprocessing` start method for attempt children
            (``None`` = platform default).
    """

    deadline: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    checkpoint: CheckpointPolicy = field(default_factory=CheckpointPolicy)
    poll_interval: float = 0.02
    mp_context: Optional[str] = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def backoff(self, failed_attempts: int) -> float:
        """Sleep before the next attempt, after ``failed_attempts`` failures."""
        return min(
            self.backoff_base * self.backoff_factor ** (failed_attempts - 1),
            self.backoff_max,
        )


@dataclass
class RunFailure:
    """One quarantined request: what was asked, what happened, how often.

    Deliberately wall-clock free (like :class:`RunRecord`): the same sweep
    under the same chaos schedule produces byte-identical failure sidecars.
    """

    request_id: str
    label: str
    scenario: str
    mode: str
    kind: str
    attempts: int
    message: str
    detail: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in EXIT_CODES:
            raise ValueError(f"unknown failure kind {self.kind!r}")

    @property
    def exit_code(self) -> int:
        return EXIT_CODES[self.kind]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "label": self.label,
            "scenario": self.scenario,
            "mode": self.mode,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
            "detail": list(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunFailure":
        try:
            return cls(**dict(payload))
        except TypeError as exc:
            raise ValueError(
                f"payload does not fit the failure schema: {exc}"
            ) from None


# --------------------------------------------------------------------------
# Child side: one attempt in its own process.
# --------------------------------------------------------------------------

def _heartbeat_writer(path: Path, min_interval: float = 0.02):
    """A rate-limited heartbeat: the child's committed cycle count on disk.

    Plain overwrite, not atomic -- a torn read in the parent merely delays
    one watchdog poll, and atomic renames at every safe point would dominate
    small runs.
    """
    last_beat = [0.0]

    def beat(committed: int) -> None:
        now = time.monotonic()
        if now - last_beat[0] < min_interval:
            return
        last_beat[0] = now
        try:
            path.write_text(f"{committed}\n", encoding="utf-8")
        except OSError:
            pass

    return beat


def _supervised_child(
    request_payload: Dict[str, Any],
    snapshot_dir: str,
    result_path: str,
    heartbeat_path: str,
    error_path: str,
    checkpoint: Tuple[Optional[int], Optional[float]],
    chaos_payload: Optional[Dict[str, Any]],
    chaos_state_dir: Optional[str],
) -> None:
    """Attempt entry point (module-level so ``spawn`` can import it).

    Protocol with the parent: exit ``0`` with the record at ``result_path``,
    exit :data:`EXIT_DEGRADED` with the message at ``error_path`` for a
    deterministic channel degradation, exit :data:`EXIT_CRASH` with a
    traceback at ``error_path`` for anything else.  A SIGKILL (chaos, or the
    parent's watchdog) leaves neither file -- the parent tells those two
    apart because it knows whether *it* fired.
    """
    # When the parent runs attempts from a thread pool and the start method
    # is fork, this child inherits the pool's thread registry -- and the
    # forking worker thread *is* this child's main thread.  Python 3.11's
    # concurrent.futures atexit hook would then try to join the current
    # thread and turn a clean exit into code 1 (3.12+ clears the registry
    # after fork itself).
    from concurrent.futures import thread as _cf_thread

    _cf_thread._threads_queues.clear()

    request = RunRequest.from_dict(request_payload)
    policy = CheckpointPolicy(every_cycles=checkpoint[0], every_seconds=checkpoint[1])
    chaos = None
    if chaos_payload is not None:
        chaos = ChaosMonkey(
            ChaosConfig.from_dict(chaos_payload),
            state_dir=chaos_state_dir,
        )
    try:
        record = execute_request_durable(
            request,
            snapshot_dir,
            policy=policy,
            heartbeat=_heartbeat_writer(Path(heartbeat_path)),
            chaos=chaos,
        )
    except ChannelDegradedError as exc:
        atomic_write_text(Path(error_path), f"{exc}\n")
        sys.exit(EXIT_DEGRADED)
    except BaseException:  # noqa: BLE001 - the whole point is to report it
        atomic_write_text(Path(error_path), traceback.format_exc())
        sys.exit(EXIT_CRASH)
    atomic_write_text(Path(result_path), canonical_json(record.as_dict()) + "\n")


# --------------------------------------------------------------------------
# Parent side: watchdog, retry loop, quarantine.
# --------------------------------------------------------------------------

def _read_heartbeat(path: Path) -> Optional[int]:
    try:
        return int(path.read_text(encoding="utf-8").strip())
    except (OSError, ValueError):
        return None


def _run_attempt(
    request: RunRequest,
    policy: SupervisorPolicy,
    snapshot_dir: Path,
    chaos_payload: Optional[Dict[str, Any]],
    chaos_state_dir: Optional[str],
    attempt: int,
) -> Tuple[str, Optional[RunRecord], Dict[str, Any]]:
    """One supervised attempt: ``(status, record, detail)``.

    ``status`` is ``"ok"`` or a failure kind from the taxonomy.  ``detail``
    is the per-attempt entry for the failure record (deterministic fields
    only).
    """
    scratch = snapshot_dir / f"{request.request_id}.attempt{attempt}"
    result_path = scratch.with_suffix(".result")
    heartbeat_path = scratch.with_suffix(".beat")
    error_path = scratch.with_suffix(".err")
    for path in (result_path, heartbeat_path, error_path):
        try:
            path.unlink()
        except OSError:
            pass

    context = multiprocessing.get_context(policy.mp_context)
    process = context.Process(
        target=_supervised_child,
        args=(
            request.as_dict(),
            str(snapshot_dir),
            str(result_path),
            str(heartbeat_path),
            str(error_path),
            (policy.checkpoint.every_cycles, policy.checkpoint.every_seconds),
            chaos_payload,
            chaos_state_dir,
        ),
        daemon=False,
    )
    process.start()
    start = time.monotonic()
    timed_out = False
    while process.is_alive():
        if (
            policy.deadline is not None
            and time.monotonic() - start > policy.deadline
        ):
            timed_out = True
            process.kill()
        process.join(timeout=policy.poll_interval)
    exitcode = process.exitcode

    detail: Dict[str, Any] = {
        "attempt": attempt,
        "exit_code": exitcode,
        "last_committed": _read_heartbeat(heartbeat_path),
    }
    try:
        heartbeat_path.unlink()
    except OSError:
        pass

    if timed_out:
        detail["status"] = "timeout"
        return "timeout", None, detail
    if exitcode == 0:
        try:
            record = parse_record_line(
                result_path.read_text(encoding="utf-8").strip()
            )
        except (OSError, ValueError) as exc:
            # Exit 0 without a readable record is a protocol violation --
            # treat it as a crash so it retries rather than vanishing.
            detail["status"] = "crash"
            detail["error"] = f"unreadable attempt result: {exc}"
            return "crash", None, detail
        finally:
            try:
                result_path.unlink()
            except OSError:
                pass
        detail["status"] = "ok"
        return "ok", record, detail
    status = "degraded" if exitcode == EXIT_DEGRADED else "crash"
    detail["status"] = status
    try:
        detail["error"] = error_path.read_text(encoding="utf-8").strip()
        error_path.unlink()
    except OSError:
        pass
    return status, None, detail


def run_supervised(
    request: RunRequest,
    snapshot_dir: Union[str, Path],
    policy: Optional[SupervisorPolicy] = None,
    chaos: Optional[ChaosConfig] = None,
    chaos_state_dir: Optional[Union[str, Path]] = None,
) -> Union[RunRecord, RunFailure]:
    """Execute one request under supervision.

    Returns the :class:`RunRecord` on (possibly retried) success, or a
    :class:`RunFailure` describing why the request is quarantined.  Never
    raises for run failures -- the caller decides whether a failure is fatal.
    """
    if policy is None:
        policy = SupervisorPolicy()
    snapshot_root = Path(snapshot_dir)
    snapshot_root.mkdir(parents=True, exist_ok=True)
    chaos_payload = None if chaos is None else chaos.as_dict()
    state_dir = None if chaos_state_dir is None else str(chaos_state_dir)

    details: List[Dict[str, Any]] = []
    kind = "crash"
    for attempt in range(policy.max_retries + 1):
        status, record, detail = _run_attempt(
            request, policy, snapshot_root, chaos_payload, state_dir, attempt
        )
        details.append(detail)
        if status == "ok":
            assert record is not None
            return record
        kind = status
        if status == "degraded":
            # Deterministic outcome of the modelled channel: every retry
            # replays the same degradation, so don't bother.
            break
        if attempt < policy.max_retries:
            time.sleep(policy.backoff(attempt + 1))

    if kind != "degraded" and policy.max_retries > 0:
        # Retries were available and all burned: the request is poison.
        kind = "poison"
    message = next(
        (d["error"] for d in reversed(details) if d.get("error")),
        f"{details[-1]['status']} after {len(details)} attempt(s)",
    )
    return RunFailure(
        request_id=request.request_id,
        label=request.display_label(),
        scenario=request.scenario,
        mode=request.mode,
        kind=kind,
        attempts=len(details),
        message=message,
        detail=details,
    )


def run_supervised_batch(
    requests: Sequence[RunRequest],
    snapshot_dir: Union[str, Path],
    policy: Optional[SupervisorPolicy] = None,
    jobs: int = 1,
    cache: Optional["Any"] = None,
    chaos: Optional[ChaosConfig] = None,
    chaos_state_dir: Optional[Union[str, Path]] = None,
    progress: Optional[Any] = None,
) -> Tuple[List[RunRecord], List[RunFailure]]:
    """Supervised counterpart of :meth:`BatchRunner.run`.

    Returns ``(records, failures)``, each in grid order; a request appears
    in exactly one of the two lists.  Cache hits bypass supervision entirely
    (a cached record needs no watchdog); fresh successes are written back.
    Parallelism uses threads -- each supervised run already occupies its own
    child process, the parent threads only wait on watchdogs.
    """
    request_list = list(requests)
    total = len(request_list)
    outcomes: List[Optional[Union[RunRecord, RunFailure]]] = [None] * total
    pending: List[Tuple[int, RunRequest]] = []
    for index, request in enumerate(request_list):
        hit = None if cache is None else cache.get(request)
        if hit is not None:
            outcomes[index] = hit
        else:
            pending.append((index, request))
    done = total - len(pending)
    if progress is not None:
        for index in range(total):
            record = outcomes[index]
            if record is not None:
                progress(index + 1, total, record)

    def supervise(item: Tuple[int, RunRequest]) -> Tuple[int, Union[RunRecord, RunFailure]]:
        index, request = item
        return index, run_supervised(
            request,
            snapshot_dir,
            policy=policy,
            chaos=chaos,
            chaos_state_dir=chaos_state_dir,
        )

    if pending:
        if jobs <= 1 or len(pending) == 1:
            completed = map(supervise, pending)
        else:
            pool = ThreadPoolExecutor(max_workers=min(jobs, len(pending)))
            completed = pool.map(supervise, pending)
        for index, outcome in completed:
            outcomes[index] = outcome
            done += 1
            if progress is not None:
                progress(done, total, outcome)
        if jobs > 1 and len(pending) > 1:
            pool.shutdown()

    records = [o for o in outcomes if isinstance(o, RunRecord)]
    failures = [o for o in outcomes if isinstance(o, RunFailure)]
    if cache is not None:
        fresh_ids = {request.request_id for _, request in pending}
        cache.put_many([r for r in records if r.request_id in fresh_ids])
    return records, failures


# --------------------------------------------------------------------------
# Quarantine sidecar: machine-readable failure reports next to the store.
# --------------------------------------------------------------------------

def failures_path(store_path: Union[str, Path]) -> Path:
    """The ``.failures`` sidecar for a run store.

    A *sidecar* rather than store content: the store's bytes must stay
    identical to a sweep where every point succeeded first try.
    """
    return Path(f"{store_path}.failures")


def write_failures(path: Union[str, Path], failures: Sequence[RunFailure]) -> None:
    """Persist failures as canonical JSONL (atomic; empty list removes it)."""
    target = Path(path)
    if not failures:
        try:
            target.unlink()
        except OSError:
            pass
        return
    lines = "".join(canonical_json(f.as_dict()) + "\n" for f in failures)
    atomic_write_text(target, lines)


def load_failures(path: Union[str, Path]) -> List[RunFailure]:
    """Read a ``.failures`` sidecar (missing file = no failures)."""
    target = Path(path)
    try:
        text = target.read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    failures = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            failures.append(RunFailure.from_dict(json.loads(line)))
    return failures


def quarantine_report(failures: Sequence[RunFailure]) -> Dict[str, Any]:
    """Machine-readable summary of a sweep's quarantine."""
    by_kind: Dict[str, int] = {}
    for failure in failures:
        by_kind[failure.kind] = by_kind.get(failure.kind, 0) + 1
    return {
        "total": len(failures),
        "by_kind": dict(sorted(by_kind.items())),
        "failures": [f.as_dict() for f in failures],
    }


def sweep_exit_code(failures: Sequence[RunFailure]) -> int:
    """The exit code a sweep should report: 0, or the most severe kind's."""
    kinds = {f.kind for f in failures}
    for kind in _SEVERITY:
        if kind in kinds:
            return EXIT_CODES[kind]
    return 0
