"""Half bus models (HBMS / HBMA) and the domain boundary value containers.

The paper splits the single target bus into two *half bus models*: one in the
simulation domain (HBMS) and one in the acceleration domain (HBMA).  Each
half bus has the structure of a complete bus -- its own arbiter and decoder --
and is connected to the bus components local to its domain.  The components
residing in the *other* domain are mimicked by the channel wrapper, which
supplies their signal values (read from the channel or predicted).

:class:`HalfBusModel` implements one half bus.  Its per-cycle protocol is the
same three-step drive / respond / commit sequence as the monolithic
:class:`~repro.ahb.bus.AhbBus`, but each step only evaluates *local*
components and declares which values must come from the remote domain
(:class:`NeededFields`).  The channel wrapper (see
:mod:`repro.core.wrapper`) is responsible for filling those in.

Because both half bus models embed an identical :class:`AhbBusCore` and are
committed with identical merged values, their registered state (grant, data
phase, latched requests) evolves identically -- unless the leader commits a
*predicted* value that later turns out to be wrong, which is exactly the
situation rollback repairs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..sim.component import ClockedComponent, Domain
from .arbiter import Arbiter, ArbitrationPolicy, FixedPriorityPolicy
from .bus import AhbBusCore, DataPhaseInfo, DriveValues
from .decoder import AddressDecoder
from .master import AhbMaster
from .monitor import AhbProtocolMonitor
from .signals import (
    AddressPhase,
    AhbError,
    BusCycleRecord,
    DataPhaseResult,
    HTrans,
)
from .slave import AhbSlave, DefaultSlave
from .transaction import CompletedBeat, TransactionRecorder


@dataclass(slots=True)
class BoundaryDrive:
    """One domain's contribution to the drive step of a target cycle.

    These are the values that may have to cross the simulator-accelerator
    channel: the local masters' bus requests, the active master's
    address/control phase (only if the granted master is local), the active
    write data (only if the data-phase owner is local and the transfer is a
    write) and any interrupt lines driven by local components.
    """

    cycle: int
    requests: Dict[int, bool] = field(default_factory=dict)
    address_phase: Optional[AddressPhase] = None
    hwdata: Optional[int] = None
    interrupts: Dict[str, bool] = field(default_factory=dict)


@dataclass(slots=True)
class BoundaryResponse:
    """One domain's contribution to the respond step of a target cycle."""

    cycle: int
    response: Optional[DataPhaseResult] = None


@dataclass(frozen=True, slots=True)
class NeededFields:
    """What a domain must obtain from the remote domain for one cycle."""

    remote_master_ids: tuple
    needs_remote_requests: bool
    needs_remote_address_phase: bool
    needs_remote_hwdata: bool
    needs_remote_response: bool
    response_is_read: bool
    granted_master_id: Optional[int] = None

    @property
    def needs_anything_non_predictable(self) -> bool:
        """True when a non-predictable MSABS value (data) must come from remote."""
        return self.needs_remote_hwdata or (self.needs_remote_response and self.response_is_read)


def merge_boundary_drives(drives: List[BoundaryDrive]) -> BoundaryDrive:
    """Fold several remote domains' drive contributions into one.

    In an N-domain topology a host sees N-1 remote contributions per cycle;
    master/slave ownership is disjoint across domains, so requests and
    interrupts union cleanly and at most one contribution carries an active
    address phase or write data.  With a single remote drive the input is
    returned unchanged, which keeps the two-domain path byte-identical.
    """
    if len(drives) == 1:
        return drives[0]
    if not drives:
        raise AhbError("cannot merge an empty set of boundary drives")
    requests: Dict[int, bool] = {}
    interrupts: Dict[str, bool] = {}
    address_phase = None
    hwdata = None
    for drive in drives:
        requests.update(drive.requests)
        interrupts.update(drive.interrupts)
        if address_phase is None:
            address_phase = drive.address_phase
        if hwdata is None:
            hwdata = drive.hwdata
    return BoundaryDrive(
        cycle=drives[0].cycle,
        requests=requests,
        address_phase=address_phase,
        hwdata=hwdata,
        interrupts=interrupts,
    )


#: How many recent cycle records a half bus retains.  Must exceed the
#: deepest speculative window (LOB depth + 1) so a rollback can trim
#: exactly the speculative records; generous enough for every depth the
#: experiments sweep while keeping 10M-cycle runs at constant memory.
RECORD_HISTORY = 8192


class HalfBusModel(ClockedComponent):
    """One domain's half of the split target bus."""

    snapshot_copy_free = True

    def __init__(
        self,
        name: str,
        domain: Domain,
        policy: Optional[ArbitrationPolicy] = None,
        default_master_id: Optional[int] = None,
        enable_monitor: bool = True,
    ) -> None:
        super().__init__(name)
        self.domain = domain
        self.local_masters: Dict[int, AhbMaster] = {}
        self.local_slaves: Dict[int, AhbSlave] = {}
        self.remote_master_ids: List[int] = []
        self.remote_slave_ids: List[int] = []
        self.decoder = AddressDecoder()
        self.default_slave = DefaultSlave(name=f"{name}_default_slave")
        self.decoder.default_slave_id = self.default_slave.slave_id
        self.local_slaves[self.default_slave.slave_id] = self.default_slave
        self._policy = policy
        self._default_master_id = default_master_id
        self.core: Optional[AhbBusCore] = None
        self.recorder = TransactionRecorder()
        # Recent cycle records only: long engine runs must hold constant
        # memory, and rollback never reaches further back than the LOB depth.
        # The monotone counter keeps snapshot/restore trimming exact even
        # though old records age out of the deque.
        self.records: Deque[BusCycleRecord] = deque(maxlen=RECORD_HISTORY)
        self._records_committed = 0
        self.monitor = AhbProtocolMonitor() if enable_monitor else None
        self.interrupt_outputs: Dict[str, bool] = {}
        # Preallocated hot-path structures, built by finalize().
        self._tick_order: List[ClockedComponent] = []
        self._request_template: Dict[int, bool] = {}
        self._remote_master_tuple: tuple = ()
        self._remote_master_set: frozenset = frozenset()
        self._remote_slave_set: frozenset = frozenset()

    # -- construction --------------------------------------------------------------
    def add_local_master(self, master: AhbMaster) -> AhbMaster:
        self._check_new_master(master.master_id)
        self.local_masters[master.master_id] = master
        return master

    def add_remote_master(self, master_id: int) -> None:
        self._check_new_master(master_id)
        self.remote_master_ids.append(master_id)

    def _check_new_master(self, master_id: int) -> None:
        if master_id in self.local_masters or master_id in self.remote_master_ids:
            raise AhbError(f"duplicate master id {master_id} in half bus {self.name!r}")

    def add_local_slave(self, slave: AhbSlave, base: int, size: int) -> AhbSlave:
        if slave.slave_id in self.local_slaves or slave.slave_id in self.remote_slave_ids:
            raise AhbError(f"duplicate slave id {slave.slave_id} in half bus {self.name!r}")
        self.local_slaves[slave.slave_id] = slave
        self.decoder.add_region(base, size, slave.slave_id, name=slave.name)
        return slave

    def add_remote_slave(self, slave_id: int, base: int, size: int, name: str = "") -> None:
        if slave_id in self.local_slaves or slave_id in self.remote_slave_ids:
            raise AhbError(f"duplicate slave id {slave_id} in half bus {self.name!r}")
        self.remote_slave_ids.append(slave_id)
        self.decoder.add_region(base, size, slave_id, name=name or f"remote_slave_{slave_id}")

    def finalize(self) -> None:
        """Build the arbiter / bus core once the component map is complete."""
        if self.core is not None:
            return
        master_ids = sorted(list(self.local_masters) + self.remote_master_ids)
        if not master_ids:
            raise AhbError(f"half bus {self.name!r} knows of no masters")
        default_master = (
            self._default_master_id if self._default_master_id is not None else master_ids[0]
        )
        policy = self._policy or FixedPriorityPolicy(master_ids)
        arbiter = Arbiter(policy=policy, default_master=default_master)
        self.core = AhbBusCore(arbiter=arbiter, decoder=self.decoder, master_ids=master_ids)
        # The component map is fixed from here on: precompute the structures
        # the per-cycle phase methods would otherwise rebuild every cycle.
        self._tick_order = list(self.local_masters.values()) + list(self.local_slaves.values())
        self._request_template = dict.fromkeys(master_ids, False)
        self._remote_master_tuple = tuple(self.remote_master_ids)
        self._remote_master_set = frozenset(self.remote_master_ids)
        self._remote_slave_set = frozenset(self.remote_slave_ids)

    # -- ClockedComponent --------------------------------------------------------------
    def evaluate(self, cycle: int) -> None:
        """The half bus is driven through its phase methods, not by a kernel."""
        return

    # -- per-cycle protocol ---------------------------------------------------------------
    def needed_fields(self) -> NeededFields:
        """Describe which remote values are required for the upcoming cycle."""
        assert self.core is not None, "finalize() must be called first"
        info = self.core.data_phase_info()
        granted = self.core.granted_master
        needs_addr = granted in self._remote_master_set
        needs_wdata = (
            info.active and info.is_write and info.owner_master_id in self._remote_master_set
        )
        needs_response = info.active and info.slave_id in self._remote_slave_set
        return NeededFields(
            remote_master_ids=self._remote_master_tuple,
            needs_remote_requests=bool(self._remote_master_tuple),
            needs_remote_address_phase=needs_addr,
            needs_remote_hwdata=needs_wdata,
            needs_remote_response=needs_response,
            response_is_read=info.active and not info.is_write,
            granted_master_id=granted,
        )

    def drive_phase(self, cycle: int) -> BoundaryDrive:
        """Evaluate local components and return this domain's drive contribution."""
        assert self.core is not None, "finalize() must be called first"
        core = self.core
        for component in self._tick_order:
            component.tick(cycle)
        info = core.data_phase_info()
        requests = {
            mid: master.drive_hbusreq(cycle) for mid, master in self.local_masters.items()
        }
        granted = core.granted_master
        address_phase = None
        local_masters = self.local_masters
        if granted in local_masters:
            address_phase = local_masters[granted].drive_address_phase(cycle, granted=True)
        hwdata = None
        if info.active and info.is_write and info.owner_master_id in local_masters:
            hwdata = local_masters[info.owner_master_id].drive_hwdata(info.address_phase)
        return BoundaryDrive(
            cycle=cycle,
            requests=requests,
            address_phase=address_phase,
            hwdata=hwdata,
            interrupts=dict(self.interrupt_outputs),
        )

    def merge_drive(self, local: BoundaryDrive, remote: BoundaryDrive) -> DriveValues:
        """Combine the local and remote contributions into full drive values."""
        assert self.core is not None
        requests = self._request_template.copy()
        requests.update(local.requests)
        requests.update(remote.requests)
        address_phase = local.address_phase or remote.address_phase
        if address_phase is None:
            address_phase = AddressPhase.idle_phase(self.core.granted_master)
        hwdata = local.hwdata if local.hwdata is not None else remote.hwdata
        interrupts = dict(remote.interrupts)
        interrupts.update(local.interrupts)
        return DriveValues(
            requests=requests,
            address_phase=address_phase,
            hwdata=hwdata,
            interrupts=interrupts,
        )

    def merge_drives(self, local: BoundaryDrive, remotes: List[BoundaryDrive]) -> DriveValues:
        """Combine the local contribution with any number of remote ones."""
        return self.merge_drive(local, merge_boundary_drives(remotes))

    def response_phase(self, cycle: int, drive: DriveValues) -> BoundaryResponse:
        """Compute the data-phase response if the active slave is local."""
        assert self.core is not None
        info = self.core.data_phase_info()
        if not info.active or info.slave_id not in self.local_slaves:
            return BoundaryResponse(cycle=cycle, response=None)
        slave = self.local_slaves[info.slave_id]
        response = slave.data_phase(cycle, info.address_phase, drive.hwdata, info.first_cycle)
        return BoundaryResponse(cycle=cycle, response=response)

    def commit_phase(
        self, cycle: int, drive: DriveValues, response: DataPhaseResult
    ) -> BusCycleRecord:
        """Notify local masters and advance the registered bus state."""
        assert self.core is not None
        core = self.core
        info = core.data_phase_info()
        if response.hready:
            if info.active and info.owner_master_id in self.local_masters:
                owner = self.local_masters[info.owner_master_id]
                owner.on_data_phase_done(cycle, info.address_phase, response)
            accepted = drive.address_phase
            if (
                accepted is not None
                and accepted.is_active
                and accepted.master_id in self.local_masters
            ):
                self.local_masters[accepted.master_id].on_address_accepted(cycle, accepted)
        record = core.commit_cycle(cycle, drive, response)
        self.records.append(record)
        self._records_committed += 1
        if self.monitor is not None:
            self.monitor.check(record)
        self._record_completed_beat(cycle, info, drive, response)
        return record

    def run_local_cycle(
        self,
        cycle: int,
        remote_drive: BoundaryDrive,
        remote_response: Optional[DataPhaseResult],
    ) -> tuple[BoundaryDrive, BoundaryResponse, BusCycleRecord]:
        """Convenience wrapper running all three steps of one cycle.

        ``remote_drive`` / ``remote_response`` contain the values obtained
        from (or predicted for) the other domain.  Returns this domain's own
        contributions plus the committed cycle record.
        """
        local_drive = self.drive_phase(cycle)
        merged = self.merge_drive(local_drive, remote_drive)
        local_response = self.response_phase(cycle, merged)
        response = local_response.response or remote_response or DataPhaseResult.okay()
        record = self.commit_phase(cycle, merged, response)
        return local_drive, local_response, record

    def _record_completed_beat(
        self,
        cycle: int,
        info: DataPhaseInfo,
        drive: DriveValues,
        response: DataPhaseResult,
    ) -> None:
        if not (info.active and response.hready):
            return
        phase = info.address_phase
        assert phase is not None
        self.recorder.record_beat(
            CompletedBeat(
                cycle=cycle,
                master_id=phase.master_id,
                address=phase.haddr,
                write=phase.hwrite,
                data=drive.hwdata if phase.hwrite else response.hrdata,
                hresp=response.hresp,
                hburst=phase.hburst,
                hsize=phase.hsize,
                first_beat=phase.htrans is HTrans.NONSEQ,
            )
        )

    # -- state management --------------------------------------------------------------------
    def local_components(self) -> List[ClockedComponent]:
        return list(self.local_masters.values()) + list(self.local_slaves.values())

    def all_local_masters_done(self) -> bool:
        done_flags = [
            master.done for master in self.local_masters.values() if hasattr(master, "done")
        ]
        return all(done_flags) if done_flags else True

    def reset(self) -> None:
        super().reset()
        for component in self.local_components():
            component.reset()
        if self.core is not None:
            self.core.reset()
        self.recorder = TransactionRecorder()
        self.records.clear()
        self._records_committed = 0
        if self.monitor is not None:
            self.monitor.reset()
        self.interrupt_outputs.clear()

    def snapshot_state(self) -> dict:
        assert self.core is not None
        return {
            "core": self.core.snapshot(),
            "masters": {mid: m.snapshot_state() for mid, m in self.local_masters.items()},
            "slaves": {sid: s.snapshot_state() for sid, s in self.local_slaves.items()},
            "recorder": self.recorder.snapshot(),
            "n_records": self._records_committed,
            "interrupts": dict(self.interrupt_outputs),
            "monitor": None if self.monitor is None else self.monitor.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        assert self.core is not None
        self.core.restore(state["core"])
        for mid, m_state in state["masters"].items():
            self.local_masters[mid].restore_state(m_state)
        for sid, s_state in state["slaves"].items():
            self.local_slaves[sid].restore_state(s_state)
        self.recorder.restore(state["recorder"])
        # Drop the speculative records from the right; records that aged out
        # of the bounded history were committed long ago and stay dropped.
        while self._records_committed > state["n_records"] and self.records:
            self.records.pop()
            self._records_committed -= 1
        self._records_committed = state["n_records"]
        self.interrupt_outputs = dict(state["interrupts"])
        if self.monitor is not None and state.get("monitor") is not None:
            self.monitor.restore(state["monitor"])

    def rollback_variable_count(self) -> int:
        total = 0
        for component in self.local_components():
            total += component.rollback_variable_count()
        return total + 8  # bus core registers
