"""Half bus models (HBMS / HBMA) and the domain boundary value containers.

The paper splits the single target bus into two *half bus models*: one in the
simulation domain (HBMS) and one in the acceleration domain (HBMA).  Each
half bus has the structure of a complete bus -- its own arbiter and decoder --
and is connected to the bus components local to its domain.  The components
residing in the *other* domain are mimicked by the channel wrapper, which
supplies their signal values (read from the channel or predicted).

:class:`HalfBusModel` implements one half bus.  Its per-cycle protocol is the
same three-step drive / respond / commit sequence as the monolithic
:class:`~repro.ahb.bus.AhbBus`, but each step only evaluates *local*
components and declares which values must come from the remote domain
(:class:`NeededFields`).  The channel wrapper (see
:mod:`repro.core.wrapper`) is responsible for filling those in.

Because both half bus models embed an identical :class:`AhbBusCore` and are
committed with identical merged values, their registered state (grant, data
phase, latched requests) evolves identically -- unless the leader commits a
*predicted* value that later turns out to be wrong, which is exactly the
situation rollback repairs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..sim.component import ClockedComponent, Domain
from .arbiter import Arbiter, ArbitrationPolicy, FixedPriorityPolicy, RoundRobinPolicy
from .bus import AhbBusCore, DataPhaseInfo, DriveValues
from .decoder import AddressDecoder
from .master import AhbMaster
from .monitor import AhbProtocolMonitor
from .signals import (
    AddressPhase,
    AhbError,
    BusCycleRecord,
    DataPhaseResult,
    HTrans,
)
from .slave import AhbSlave, DefaultSlave
from .transaction import CompletedBeat, TransactionRecorder


@dataclass(slots=True)
class BoundaryDrive:
    """One domain's contribution to the drive step of a target cycle.

    These are the values that may have to cross the simulator-accelerator
    channel: the local masters' bus requests, the active master's
    address/control phase (only if the granted master is local), the active
    write data (only if the data-phase owner is local and the transfer is a
    write) and any interrupt lines driven by local components.
    """

    cycle: int
    requests: Dict[int, bool] = field(default_factory=dict)
    address_phase: Optional[AddressPhase] = None
    hwdata: Optional[int] = None
    interrupts: Dict[str, bool] = field(default_factory=dict)


@dataclass(slots=True)
class BoundaryResponse:
    """One domain's contribution to the respond step of a target cycle."""

    cycle: int
    response: Optional[DataPhaseResult] = None


@dataclass(frozen=True, slots=True)
class NeededFields:
    """What a domain must obtain from the remote domain for one cycle."""

    remote_master_ids: tuple
    needs_remote_requests: bool
    needs_remote_address_phase: bool
    needs_remote_hwdata: bool
    needs_remote_response: bool
    response_is_read: bool
    granted_master_id: Optional[int] = None
    #: Precomputed ``not needs_anything_non_predictable`` (instances are
    #: interned per half bus, so paying this once at construction removes two
    #: attribute reads from every can-predict check).  Derived; excluded from
    #: eq/repr.
    data_free: bool = field(init=False, compare=False, repr=False, default=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "data_free",
            not (
                self.needs_remote_hwdata
                or (self.needs_remote_response and self.response_is_read)
            ),
        )

    @property
    def needs_anything_non_predictable(self) -> bool:
        """True when a non-predictable MSABS value (data) must come from remote."""
        return not self.data_free


def drives_functionally_equal(a: BoundaryDrive, b: BoundaryDrive) -> bool:
    """True when two drive contributions carry the same boundary information.

    The ``cycle`` stamp is deliberately ignored: the activity gate asks "did
    this domain's outputs change since they were last shipped?", and a drive
    that repeats the previous values verbatim carries no new information
    regardless of when it was sampled.
    """
    return (
        a.requests == b.requests
        and a.address_phase == b.address_phase
        and a.hwdata == b.hwdata
        and a.interrupts == b.interrupts
    )


def merge_boundary_drives(drives: List[BoundaryDrive]) -> BoundaryDrive:
    """Fold several remote domains' drive contributions into one.

    In an N-domain topology a host sees N-1 remote contributions per cycle;
    master/slave ownership is disjoint across domains, so requests and
    interrupts union cleanly and at most one contribution carries an active
    address phase or write data.  With a single remote drive the input is
    returned unchanged, which keeps the two-domain path byte-identical.
    """
    if len(drives) == 1:
        return drives[0]
    if not drives:
        raise AhbError("cannot merge an empty set of boundary drives")
    requests: Dict[int, bool] = {}
    interrupts: Dict[str, bool] = {}
    address_phase = None
    hwdata = None
    for drive in drives:
        requests.update(drive.requests)
        interrupts.update(drive.interrupts)
        if address_phase is None:
            address_phase = drive.address_phase
        if hwdata is None:
            hwdata = drive.hwdata
    return BoundaryDrive(
        cycle=drives[0].cycle,
        requests=requests,
        address_phase=address_phase,
        hwdata=hwdata,
        interrupts=interrupts,
    )


#: Interned parameterless OKAY response (module-level bind keeps the idle
#: cycle path free of a staticmethod dispatch).
_OKAY = DataPhaseResult.okay()


#: Shared empty interrupt map used for the (overwhelmingly common) cycles in
#: which a domain drives no interrupt lines.  Treated as immutable by every
#: consumer of a :class:`BoundaryDrive` / :class:`DriveValues`; code that
#: needs to mutate an interrupt map must copy it first.
_NO_INTERRUPTS: Dict[str, bool] = {}


#: Arbitration policies with the all-idle fixed point ``choose({all False})
#: == default_master`` regardless of internal state.  The batch-stepping
#: quiescence detector only fast-forwards buses running one of these; a
#: custom policy falls back to the scalar per-cycle path.
_STATIONARY_POLICIES = (FixedPriorityPolicy, RoundRobinPolicy)


#: How many recent cycle records a half bus retains.  Must exceed the
#: deepest speculative window (LOB depth + 1) so a rollback can trim
#: exactly the speculative records; generous enough for every depth the
#: experiments sweep while keeping 10M-cycle runs at constant memory.
RECORD_HISTORY = 8192


class HalfBusModel(ClockedComponent):
    """One domain's half of the split target bus."""

    snapshot_copy_free = True

    def __init__(
        self,
        name: str,
        domain: Domain,
        policy: Optional[ArbitrationPolicy] = None,
        default_master_id: Optional[int] = None,
        enable_monitor: bool = True,
    ) -> None:
        super().__init__(name)
        self.domain = domain
        self.local_masters: Dict[int, AhbMaster] = {}
        self.local_slaves: Dict[int, AhbSlave] = {}
        self.remote_master_ids: List[int] = []
        self.remote_slave_ids: List[int] = []
        self.decoder = AddressDecoder()
        self.default_slave = DefaultSlave(name=f"{name}_default_slave")
        self.decoder.default_slave_id = self.default_slave.slave_id
        self.local_slaves[self.default_slave.slave_id] = self.default_slave
        self._policy = policy
        self._default_master_id = default_master_id
        self.core: Optional[AhbBusCore] = None
        self.recorder = TransactionRecorder()
        # Recent cycle records only: long engine runs must hold constant
        # memory, and rollback never reaches further back than the LOB depth.
        # The monotone counter keeps snapshot/restore trimming exact even
        # though old records age out of the deque.
        self.records: Deque[BusCycleRecord] = deque(maxlen=RECORD_HISTORY)
        self._records_committed = 0
        self.monitor = AhbProtocolMonitor() if enable_monitor else None
        self.interrupt_outputs: Dict[str, bool] = {}
        # Preallocated hot-path structures, built by finalize().
        self._tick_order: List[ClockedComponent] = []
        self._tick_active: List[ClockedComponent] = []
        self._request_drivers: tuple = ()
        self._request_template: Dict[int, bool] = {}
        self._remote_master_tuple: tuple = ()
        self._remote_master_set: frozenset = frozenset()
        self._remote_slave_set: frozenset = frozenset()
        self._needed_cache: Optional[NeededFields] = None
        # Interning table for NeededFields: the value space is tiny (granted
        # master x a few booleans), so each distinct shape is built once per
        # half bus and reused for the lifetime of the run.
        self._needed_intern: Dict[tuple, NeededFields] = {}

    # -- construction --------------------------------------------------------------
    def add_local_master(self, master: AhbMaster) -> AhbMaster:
        self._check_new_master(master.master_id)
        self.local_masters[master.master_id] = master
        return master

    def add_remote_master(self, master_id: int) -> None:
        self._check_new_master(master_id)
        self.remote_master_ids.append(master_id)

    def _check_new_master(self, master_id: int) -> None:
        if master_id in self.local_masters or master_id in self.remote_master_ids:
            raise AhbError(f"duplicate master id {master_id} in half bus {self.name!r}")

    def add_local_slave(self, slave: AhbSlave, base: int, size: int) -> AhbSlave:
        if slave.slave_id in self.local_slaves or slave.slave_id in self.remote_slave_ids:
            raise AhbError(f"duplicate slave id {slave.slave_id} in half bus {self.name!r}")
        self.local_slaves[slave.slave_id] = slave
        self.decoder.add_region(base, size, slave.slave_id, name=slave.name)
        return slave

    def add_remote_slave(self, slave_id: int, base: int, size: int, name: str = "") -> None:
        if slave_id in self.local_slaves or slave_id in self.remote_slave_ids:
            raise AhbError(f"duplicate slave id {slave_id} in half bus {self.name!r}")
        self.remote_slave_ids.append(slave_id)
        self.decoder.add_region(base, size, slave_id, name=name or f"remote_slave_{slave_id}")

    def finalize(self) -> None:
        """Build the arbiter / bus core once the component map is complete."""
        if self.core is not None:
            return
        master_ids = sorted(list(self.local_masters) + self.remote_master_ids)
        if not master_ids:
            raise AhbError(f"half bus {self.name!r} knows of no masters")
        default_master = (
            self._default_master_id if self._default_master_id is not None else master_ids[0]
        )
        policy = self._policy or FixedPriorityPolicy(master_ids)
        arbiter = Arbiter(policy=policy, default_master=default_master)
        self.core = AhbBusCore(arbiter=arbiter, decoder=self.decoder, master_ids=master_ids)
        # The component map is fixed from here on: precompute the structures
        # the per-cycle phase methods would otherwise rebuild every cycle.
        self._tick_order = list(self.local_masters.values()) + list(self.local_slaves.values())
        # Only components with a real per-cycle evaluate() need a tick; the
        # base master/slave evaluates are bus-driven no-ops and skipping them
        # removes two function calls per component per cycle.  Detection is
        # exact (the class attribute must *be* one of the known no-ops), so
        # any subclass overriding evaluate() keeps its tick.
        noops = (AhbMaster.evaluate, AhbSlave.evaluate, ClockedComponent.evaluate)
        self._tick_active = [
            component for component in self._tick_order
            if type(component).evaluate not in noops
        ]
        self._request_drivers = tuple(
            (mid, master.drive_hbusreq) for mid, master in self.local_masters.items()
        )
        self._request_template = dict.fromkeys(master_ids, False)
        self._remote_master_tuple = tuple(self.remote_master_ids)
        self._remote_master_set = frozenset(self.remote_master_ids)
        self._remote_slave_set = frozenset(self.remote_slave_ids)

    # -- ClockedComponent --------------------------------------------------------------
    def evaluate(self, cycle: int) -> None:
        """The half bus is driven through its phase methods, not by a kernel."""
        return

    # -- per-cycle protocol ---------------------------------------------------------------
    def needed_fields(self) -> NeededFields:
        """Describe which remote values are required for the upcoming cycle.

        The result only depends on registered bus-core state, so it is
        memoized until the next commit / restore / reset (the same
        invalidation points as the core's data-phase info cache).
        """
        needed = self._needed_cache
        if needed is not None:
            return needed
        assert self.core is not None, "finalize() must be called first"
        info = self.core.data_phase_info()
        granted = self.core.arbiter.current_grant
        needs_addr = granted in self._remote_master_set
        needs_wdata = (
            info.active and info.is_write and info.owner_master_id in self._remote_master_set
        )
        needs_response = info.active and info.slave_id in self._remote_slave_set
        response_is_read = info.active and not info.is_write
        key = (granted, needs_addr, needs_wdata, needs_response, response_is_read)
        needed = self._needed_intern.get(key)
        if needed is None:
            needed = NeededFields(
                remote_master_ids=self._remote_master_tuple,
                needs_remote_requests=bool(self._remote_master_tuple),
                needs_remote_address_phase=needs_addr,
                needs_remote_hwdata=needs_wdata,
                needs_remote_response=needs_response,
                response_is_read=response_is_read,
                granted_master_id=granted,
            )
            self._needed_intern[key] = needed
        self._needed_cache = needed
        return needed

    def influence_lookahead(self, cycle: int) -> float:
        """Earliest future cycle at which this domain could initiate new bus
        activity of its own accord (Chandy-Misra-Bryant lookahead).

        Derived from the local masters' workload state: a domain whose
        masters are all drained can never initiate again (``inf``); one whose
        next transaction is queued for a future issue cycle is quiet until
        then; anything mid-flight yields the conservative ``cycle + 1``.
        Remote-triggered activity (responses of local slaves) is not counted
        -- the responder ships those explicitly while a data phase is active.
        """
        horizon = float("inf")
        for master in self.local_masters.values():
            candidate = master.activity_lookahead(cycle)
            if candidate < horizon:
                horizon = candidate
                if horizon <= cycle + 1:
                    break
        return horizon

    # -- batch-stepping quiescence support ----------------------------------------
    def idle_stationary(self) -> bool:
        """True when this half bus is at its structural idle fixed point.

        At the fixed point one committed idle cycle maps the registered state
        onto itself: no data phase is in flight, the grant is parked on the
        default master (where the stationary policies keep it under an
        all-False request vector), no local component needs a per-cycle tick
        and no interrupt line is asserted.  Whether the *masters* stay idle is
        a separate, per-cycle question answered by :meth:`next_local_activity`.
        """
        core = self.core
        return (
            core is not None
            and not self._tick_active
            and not self.interrupt_outputs
            and core.data_phase is None
            and core.data_phase_first_cycle
            and core.arbiter.current_grant == core.arbiter.default_master
            and type(core.arbiter.policy) in _STATIONARY_POLICIES
        )

    def trace_signature(self, cycle: int, horizon: int) -> Optional[tuple]:
        """Structural state digest of this half bus for the periodic trace
        cache (see :mod:`repro.core.trace`).

        Combines every local master's and slave's digest; two cycles with
        equal half-bus digests (plus the shared bus-core digest held by the
        trace controller) evolve identically for ``horizon`` cycles when fed
        the same bus-level schedule.  Returns ``None`` -- disabling trace
        replay for the topology -- when any component cannot be digested or
        an interrupt line is asserted (interrupt consumers are not covered).
        """
        parts = []
        for master_id in sorted(self.local_masters):
            sig = self.local_masters[master_id].trace_signature(cycle, horizon)
            if sig is None:
                return None
            parts.append((master_id, sig))
        for slave_id in sorted(self.local_slaves):
            sig = self.local_slaves[slave_id].trace_signature()
            if sig is None:
                return None
            parts.append((slave_id, sig))
        if self.interrupt_outputs:
            return None
        return tuple(parts)

    def next_local_activity(self, cycle: int) -> float:
        """Earliest cycle >= ``cycle`` at which a local master may be active.

        The quiescence horizon companion to :meth:`idle_stationary`: the bus
        stays at its idle fixed point for cycles ``[cycle, horizon)``.
        """
        horizon = float("inf")
        for master in self.local_masters.values():
            candidate = master.next_activity_cycle(cycle)
            if candidate < horizon:
                horizon = candidate
                if horizon <= cycle:
                    break
        return horizon

    def adopt_idle_records(
        self, records: List[BusCycleRecord], latched_requests: Dict[int, bool]
    ) -> None:
        """Adopt a proven-idle run of committed cycles in one step.

        The caller (the batch-stepping engine) has verified the bus is
        :meth:`idle_stationary` for the whole run and built the per-cycle
        records itself.  This applies exactly the state transitions ``len(
        records)`` idle :meth:`commit_phase` calls would have applied: records
        and the monotone commit counter advance, the monitor adopts the run,
        the arbiter books one parked all-idle decision per cycle (grant
        unchanged), the latched request vector becomes the all-False map, and
        the per-cycle caches are invalidated.  Masters receive no callbacks
        (HREADY is high but nothing is active) and the data-phase registers
        are already at their idle values.
        """
        core = self.core
        assert core is not None
        count = len(records)
        if count == 0:
            return
        self.records.extend(records)
        self._records_committed += count
        if self.monitor is not None:
            self.monitor.observe_idle_run(records[-1])
        core.arbiter.record_idle_cycles(count)
        core.latched_requests = latched_requests
        core._info_cache = None
        self._needed_cache = None

    def drive_phase(self, cycle: int) -> BoundaryDrive:
        """Evaluate local components and return this domain's drive contribution."""
        core = self.core
        assert core is not None, "finalize() must be called first"
        for component in self._tick_active:
            component.tick(cycle)
        info = core.data_phase_info()
        local_masters = self.local_masters
        requests = {mid: drive_req(cycle) for mid, drive_req in self._request_drivers}
        granted_master = local_masters.get(core.arbiter.current_grant)
        address_phase = (
            granted_master.drive_address_phase(cycle, granted=True)
            if granted_master is not None
            else None
        )
        hwdata = None
        if info.active and info.is_write and info.owner_master_id in local_masters:
            hwdata = local_masters[info.owner_master_id].drive_hwdata(info.address_phase)
        interrupts = self.interrupt_outputs
        return BoundaryDrive(
            cycle=cycle,
            requests=requests,
            address_phase=address_phase,
            hwdata=hwdata,
            interrupts=dict(interrupts) if interrupts else _NO_INTERRUPTS,
        )

    def merge_drive(self, local: BoundaryDrive, remote: BoundaryDrive) -> DriveValues:
        """Combine the local and remote contributions into full drive values."""
        assert self.core is not None
        requests = self._request_template.copy()
        requests.update(local.requests)
        requests.update(remote.requests)
        address_phase = local.address_phase or remote.address_phase
        if address_phase is None:
            address_phase = AddressPhase.idle_phase(self.core.granted_master)
        hwdata = local.hwdata if local.hwdata is not None else remote.hwdata
        if remote.interrupts or local.interrupts:
            interrupts = dict(remote.interrupts)
            interrupts.update(local.interrupts)
        else:
            interrupts = _NO_INTERRUPTS
        return DriveValues(
            requests=requests,
            address_phase=address_phase,
            hwdata=hwdata,
            interrupts=interrupts,
        )

    def merge_drives(self, local: BoundaryDrive, remotes: List[BoundaryDrive]) -> DriveValues:
        """Combine the local contribution with any number of remote ones."""
        return self.merge_drive(local, merge_boundary_drives(remotes))

    def response_phase(self, cycle: int, drive: DriveValues) -> BoundaryResponse:
        """Compute the data-phase response if the active slave is local."""
        assert self.core is not None
        info = self.core.data_phase_info()
        if not info.active or info.slave_id not in self.local_slaves:
            return BoundaryResponse(cycle=cycle, response=None)
        slave = self.local_slaves[info.slave_id]
        response = slave.data_phase(cycle, info.address_phase, drive.hwdata, info.first_cycle)
        return BoundaryResponse(cycle=cycle, response=response)

    def commit_phase(
        self, cycle: int, drive: DriveValues, response: DataPhaseResult
    ) -> BusCycleRecord:
        """Notify local masters and advance the registered bus state."""
        assert self.core is not None
        core = self.core
        info = core.data_phase_info()
        if response.hready:
            if info.active and info.owner_master_id in self.local_masters:
                owner = self.local_masters[info.owner_master_id]
                owner.on_data_phase_done(cycle, info.address_phase, response)
            accepted = drive.address_phase
            if (
                accepted is not None
                and accepted.is_active
                and accepted.master_id in self.local_masters
            ):
                self.local_masters[accepted.master_id].on_address_accepted(cycle, accepted)
        record = core.commit_cycle(cycle, drive, response)
        self._needed_cache = None
        self.records.append(record)
        self._records_committed += 1
        if self.monitor is not None:
            self.monitor.check(record)
        if info.active and response.hready:
            self._record_completed_beat(cycle, info, drive, response)
        return record

    def commit_lockstep(
        self,
        cycle: int,
        merged: DriveValues,
        response: DataPhaseResult,
        record: BusCycleRecord,
        beat: Optional[CompletedBeat],
    ) -> None:
        """Commit one N-domain lock-step cycle with shared pre-built objects.

        In lock step every replicated core commits the same merged values and
        therefore produces a value-identical cycle record and completed beat;
        the engine builds them once and every domain's half bus adopts them
        by reference.  Must stay behaviourally identical to
        :meth:`commit_phase` followed by the recorder update (the gating
        on/off equivalence tests enforce this).
        """
        core = self.core
        assert core is not None
        info = core._info_cache
        if info is None:
            info = core.data_phase_info()
        local_masters = self.local_masters
        if response.hready:
            if info.active and info.owner_master_id in local_masters:
                local_masters[info.owner_master_id].on_data_phase_done(
                    cycle, info.address_phase, response
                )
            accepted = merged.address_phase
            if accepted.is_active and accepted.master_id in local_masters:
                local_masters[accepted.master_id].on_address_accepted(cycle, accepted)
        core.commit_cycle(cycle, merged, response, record=record)
        self._needed_cache = None
        self.records.append(record)
        self._records_committed += 1
        if self.monitor is not None:
            self.monitor.check(record)
        if beat is not None:
            self.recorder.record_beat(beat)

    def run_local_cycle(
        self,
        cycle: int,
        remote_drive: BoundaryDrive,
        remote_response: Optional[DataPhaseResult],
    ) -> tuple[BoundaryDrive, Optional[DataPhaseResult], BusCycleRecord]:
        """Run all three steps of one cycle given the remote domain's values.

        ``remote_drive`` / ``remote_response`` contain the values obtained
        from (or predicted for) the other domain.  Returns this domain's own
        drive contribution, its local data-phase response (``None`` when the
        active slave is remote or the bus is idle) and the committed record.

        This is the engines' speculative hot path (leader run-ahead, lagger
        follow-up, roll-forth), so the drive / merge / respond / commit steps
        are inlined: one data-phase-info lookup serves the whole cycle and no
        intermediate containers are allocated.  The behaviour must remain
        identical to calling :meth:`drive_phase` / :meth:`merge_drive` /
        :meth:`response_phase` / :meth:`commit_phase` in sequence -- the
        golden regression suite enforces this.
        """
        core = self.core
        assert core is not None, "finalize() must be called first"
        # -- drive step ------------------------------------------------------
        for component in self._tick_active:
            component.tick(cycle)
        # Inline the data_phase_info cache hit (needed_fields usually ran
        # first this cycle and already computed it).
        info = core._info_cache
        if info is None:
            info = core.data_phase_info()
        info_active = info.active
        local_masters = self.local_masters
        requests = {mid: drive_req(cycle) for mid, drive_req in self._request_drivers}
        granted = core.arbiter.current_grant
        granted_master = local_masters.get(granted)
        address_phase = (
            granted_master.drive_address_phase(cycle, granted=True)
            if granted_master is not None
            else None
        )
        hwdata = None
        if info_active and info.is_write and info.owner_master_id in local_masters:
            hwdata = local_masters[info.owner_master_id].drive_hwdata(info.address_phase)
        interrupt_outputs = self.interrupt_outputs
        local_interrupts = dict(interrupt_outputs) if interrupt_outputs else _NO_INTERRUPTS
        local_drive = BoundaryDrive(
            cycle=cycle,
            requests=requests,
            address_phase=address_phase,
            hwdata=hwdata,
            interrupts=local_interrupts,
        )
        # -- merge (same rules as merge_drive) -------------------------------
        remote_requests = remote_drive.requests
        if not remote_requests and len(requests) == len(self._request_template):
            # Every master is local and the remote side contributes nothing:
            # the merged vector is just the local one (fresh copy -- the
            # commit takes ownership of it).
            merged_requests = requests.copy()
        else:
            merged_requests = self._request_template.copy()
            merged_requests.update(requests)
            merged_requests.update(remote_requests)
        merged_phase = address_phase if address_phase is not None else remote_drive.address_phase
        if merged_phase is None:
            merged_phase = AddressPhase.idle_phase(granted)
        merged_hwdata = hwdata if hwdata is not None else remote_drive.hwdata
        remote_interrupts = remote_drive.interrupts
        if remote_interrupts or local_interrupts:
            merged_interrupts = dict(remote_interrupts)
            merged_interrupts.update(local_interrupts)
        else:
            merged_interrupts = _NO_INTERRUPTS
        merged = DriveValues(
            requests=merged_requests,
            address_phase=merged_phase,
            hwdata=merged_hwdata,
            interrupts=merged_interrupts,
        )
        # -- respond step (same rules as response_phase) ---------------------
        local_response: Optional[DataPhaseResult] = None
        if info_active:
            slave = self.local_slaves.get(info.slave_id)
            if slave is not None:
                local_response = slave.data_phase(
                    cycle, info.address_phase, merged_hwdata, info.first_cycle
                )
        response = local_response or remote_response or _OKAY
        # -- commit step (same rules as commit_phase) ------------------------
        if response.hready:
            if info_active and info.owner_master_id in local_masters:
                local_masters[info.owner_master_id].on_data_phase_done(
                    cycle, info.address_phase, response
                )
            if merged_phase.is_active and merged_phase.master_id in local_masters:
                local_masters[merged_phase.master_id].on_address_accepted(cycle, merged_phase)
        record = core.commit_cycle(cycle, merged, response)
        self._needed_cache = None
        self.records.append(record)
        self._records_committed += 1
        if self.monitor is not None:
            self.monitor.check(record)
        if info_active and response.hready:
            self._record_completed_beat(cycle, info, merged, response)
        return local_drive, local_response, record

    def _record_completed_beat(
        self,
        cycle: int,
        info: DataPhaseInfo,
        drive: DriveValues,
        response: DataPhaseResult,
    ) -> None:
        # Caller guarantees ``info.active and response.hready``.
        phase = info.address_phase
        assert phase is not None
        self.recorder.record_beat(
            CompletedBeat(
                cycle=cycle,
                master_id=phase.master_id,
                address=phase.haddr,
                write=phase.hwrite,
                data=drive.hwdata if phase.hwrite else response.hrdata,
                hresp=response.hresp,
                hburst=phase.hburst,
                hsize=phase.hsize,
                first_beat=phase.htrans is HTrans.NONSEQ,
            )
        )

    # -- state management --------------------------------------------------------------------
    def local_components(self) -> List[ClockedComponent]:
        return list(self.local_masters.values()) + list(self.local_slaves.values())

    def all_local_masters_done(self) -> bool:
        done_flags = [
            master.done for master in self.local_masters.values() if hasattr(master, "done")
        ]
        return all(done_flags) if done_flags else True

    def reset(self) -> None:
        super().reset()
        for component in self.local_components():
            component.reset()
        if self.core is not None:
            self.core.reset()
        self.recorder = TransactionRecorder()
        self.records.clear()
        self._records_committed = 0
        self._needed_cache = None
        if self.monitor is not None:
            self.monitor.reset()
        self.interrupt_outputs.clear()

    def snapshot_state(self) -> dict:
        assert self.core is not None
        return {
            "core": self.core.snapshot(),
            "masters": {mid: m.snapshot_state() for mid, m in self.local_masters.items()},
            "slaves": {sid: s.snapshot_state() for sid, s in self.local_slaves.items()},
            "recorder": self.recorder.snapshot(),
            "n_records": self._records_committed,
            "interrupts": dict(self.interrupt_outputs),
            "monitor": None if self.monitor is None else self.monitor.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        assert self.core is not None
        self._needed_cache = None
        self.core.restore(state["core"])
        for mid, m_state in state["masters"].items():
            self.local_masters[mid].restore_state(m_state)
        for sid, s_state in state["slaves"].items():
            self.local_slaves[sid].restore_state(s_state)
        self.recorder.restore(state["recorder"])
        self._trim_records(state["n_records"])
        self.interrupt_outputs = dict(state["interrupts"])
        if self.monitor is not None and state.get("monitor") is not None:
            self.monitor.restore(state["monitor"])

    def _trim_records(self, n_records: int) -> None:
        # Drop the speculative records from the right; records that aged out
        # of the bounded history were committed long ago and stay dropped.
        while self._records_committed > n_records and self.records:
            self.records.pop()
            self._records_committed -= 1
        self._records_committed = n_records

    # -- incremental checkpointing (checkpoint windows) -------------------------
    #: The half bus is window-aware: slaves with their own journal (memories)
    #: open sub-windows, everything else contributes its (owned, fast-copy)
    #: snapshot.  This keeps per-transition rb_store cost proportional to the
    #: registered/control state instead of to total memory size.
    supports_checkpoint_window = True

    def open_checkpoint_window(self) -> dict:
        assert self.core is not None
        return {
            "core": self.core.snapshot(),
            "masters": {mid: m.snapshot_state() for mid, m in self.local_masters.items()},
            "slaves": {
                sid: (
                    slave.open_checkpoint_window()
                    if slave.supports_checkpoint_window
                    else slave.snapshot_state()
                )
                for sid, slave in self.local_slaves.items()
            },
            "recorder": self.recorder.snapshot(),
            "n_records": self._records_committed,
            "interrupts": dict(self.interrupt_outputs),
            "monitor": None if self.monitor is None else self.monitor.snapshot(),
        }

    def rewind_checkpoint_window(self, token: dict) -> None:
        assert self.core is not None
        self._needed_cache = None
        self.core.restore(token["core"])
        for mid, m_state in token["masters"].items():
            self.local_masters[mid].restore_state(m_state)
        for sid, s_state in token["slaves"].items():
            slave = self.local_slaves[sid]
            if slave.supports_checkpoint_window:
                slave.rewind_checkpoint_window(s_state)
            else:
                slave.restore_state(s_state)
        self.recorder.restore(token["recorder"])
        self._trim_records(token["n_records"])
        self.interrupt_outputs = dict(token["interrupts"])
        if self.monitor is not None and token.get("monitor") is not None:
            self.monitor.restore(token["monitor"])

    def close_checkpoint_window(self, token: dict) -> None:
        for sid, s_state in token["slaves"].items():
            slave = self.local_slaves[sid]
            if slave.supports_checkpoint_window:
                slave.close_checkpoint_window(s_state)

    def rollback_variable_count(self) -> int:
        total = 0
        for component in self.local_components():
            total += component.rollback_variable_count()
        return total + 8  # bus core registers
