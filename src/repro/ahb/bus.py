"""The AHB bus interconnect.

Two layers live here:

* :class:`AhbBusCore` -- the registered protocol state (granted master, data
  phase, latched requests) and the state-update rules.  Both the monolithic
  reference bus and the two half bus models of the split co-emulated system
  embed an identical core, which is what guarantees that the two halves of a
  split bus make identical arbitration/decoding decisions from identical
  inputs (the paper's argument for excluding arbiter/decoder outputs from the
  exchanged signal set).

* :class:`AhbBus` -- the monolithic reference interconnect that owns all
  masters and slaves locally.  It is used as the golden model in functional
  equivalence tests: the split, co-emulated system must produce the same
  transaction stream.

The per-cycle protocol is evaluated in three steps, which is also the way
values cross the simulator-accelerator boundary in the split model:

1. **drive** -- every master drives HBUSREQ; the granted master drives its
   address/control phase; the owner of the current data phase drives HWDATA
   if it is a write.
2. **respond** -- the slave selected by the data-phase address produces
   HREADY / HRESP / HRDATA.
3. **commit** -- masters are notified of accepted address phases and
   completed data phases, and the registered state advances (data phase
   register, arbitration, latched requests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.component import ClockedComponent
from .arbiter import Arbiter, ArbitrationPolicy, FixedPriorityPolicy
from .decoder import AddressDecoder
from .master import AhbMaster
from .monitor import AhbProtocolMonitor
from .signals import (
    AddressPhase,
    AhbError,
    BusCycleRecord,
    DataPhaseResult,
    HBurst,
    HTrans,
)
from .slave import AhbSlave, DefaultSlave
from .transaction import CompletedBeat, TransactionRecorder


@dataclass(slots=True)
class DriveValues:
    """Everything driven onto the bus before the slave responds."""

    requests: Dict[int, bool]
    address_phase: AddressPhase
    hwdata: Optional[int] = None
    interrupts: Dict[str, bool] = field(default_factory=dict)


class DataPhaseInfo:
    """Static facts about the current cycle's data phase, derived from
    registered state at the start of the cycle.

    Immutable by convention; a plain ``__slots__`` class because one is
    built per active cycle on the engine hot path (frozen-dataclass
    construction pays ``object.__setattr__`` per field).
    """

    __slots__ = (
        "active",
        "owner_master_id",
        "slave_id",
        "is_write",
        "first_cycle",
        "address_phase",
    )

    def __init__(
        self,
        active: bool,
        owner_master_id: Optional[int],
        slave_id: Optional[int],
        is_write: bool,
        first_cycle: bool,
        address_phase: Optional[AddressPhase],
    ) -> None:
        self.active = active
        self.owner_master_id = owner_master_id
        self.slave_id = slave_id
        self.is_write = is_write
        self.first_cycle = first_cycle
        self.address_phase = address_phase


#: Shared instance for cycles with no active data phase (the most common
#: shape); ``DataPhaseInfo`` is frozen so reuse is safe.
_INACTIVE_DATA_PHASE_INFO = DataPhaseInfo(
    active=False,
    owner_master_id=None,
    slave_id=None,
    is_write=False,
    first_cycle=True,
    address_phase=None,
)


class AhbBusCore:
    """Registered AHB state shared by the monolithic and half bus models."""

    def __init__(
        self,
        arbiter: Arbiter,
        decoder: AddressDecoder,
        master_ids: List[int],
    ) -> None:
        self.arbiter = arbiter
        self.decoder = decoder
        self.master_ids = list(master_ids)
        self.data_phase: Optional[AddressPhase] = None
        self.data_phase_first_cycle = True
        self.latched_requests: Dict[int, bool] = {mid: False for mid in master_ids}
        self._burst_beats_done = 0
        self._info_cache: Optional[DataPhaseInfo] = None

    # -- introspection at the start of a cycle --------------------------------
    @property
    def granted_master(self) -> int:
        return self.arbiter.current_grant

    def data_phase_info(self) -> DataPhaseInfo:
        """Describe the data phase that will be serviced this cycle.

        The result only depends on registered state, so it is computed once
        per cycle and memoized; :meth:`commit_cycle` (and any state mutation:
        reset / restore) invalidates the cache.
        """
        info = self._info_cache
        if info is not None:
            return info
        phase = self.data_phase
        if phase is None or not phase.is_active:
            info = _INACTIVE_DATA_PHASE_INFO
        else:
            info = DataPhaseInfo(
                active=True,
                owner_master_id=phase.master_id,
                slave_id=self.decoder.select(phase.haddr),
                is_write=phase.hwrite,
                first_cycle=self.data_phase_first_cycle,
                address_phase=phase,
            )
        self._info_cache = info
        return info

    # -- state update at the end of a cycle ------------------------------------
    def commit_cycle(
        self,
        cycle: int,
        drive: DriveValues,
        response: DataPhaseResult,
        record: Optional[BusCycleRecord] = None,
    ) -> BusCycleRecord:
        """Advance registered state; returns the cycle record.

        Takes ownership of ``drive.requests``: the merged request dict is
        built fresh for every cycle by the merge step, is never mutated after
        commit, and serves both the cycle record and the latched-request
        register without a defensive copy.

        ``record`` may be a pre-built cycle record shared across the
        replicated cores of a lock-step N-domain commit (all cores agree on
        every field); when omitted the record is built here.
        """
        requests_copy = drive.requests
        if record is None:
            record = BusCycleRecord(
                cycle=cycle,
                granted_master=self.arbiter.current_grant,
                address_phase=drive.address_phase,
                data_phase=self.data_phase,
                hwdata=drive.hwdata,
                response=response,
                requests=requests_copy,
            )
        if response.hready:
            accepted = drive.address_phase
            if accepted is not None and accepted.is_active:
                # Inlined _track_burst (hot path: once per accepted beat).
                htrans = accepted.htrans
                if htrans is HTrans.NONSEQ:
                    self._burst_beats_done = 1
                elif htrans is HTrans.SEQ:
                    self._burst_beats_done += 1
                self.data_phase = accepted
            else:
                self.data_phase = None
            self.data_phase_first_cycle = True
            if self._may_rearbitrate(accepted, drive.requests):
                self.arbiter.arbitrate(drive.requests)
        else:
            self.data_phase_first_cycle = False
        self.latched_requests = requests_copy
        self._info_cache = None
        return record

    def _track_burst(self, accepted: AddressPhase) -> None:
        if accepted.htrans is HTrans.NONSEQ:
            self._burst_beats_done = 1
        elif accepted.htrans is HTrans.SEQ:
            self._burst_beats_done += 1

    def _may_rearbitrate(self, accepted: Optional[AddressPhase], requests: Dict[int, bool]) -> bool:
        """Re-arbitration is allowed at burst boundaries and on idle cycles."""
        if accepted is None or not accepted.is_active:
            return True
        fixed_beats = accepted.hburst.beats
        if fixed_beats is not None and self._burst_beats_done >= fixed_beats:
            return True
        if accepted.hburst in (HBurst.SINGLE,):
            return True
        # Undefined-length INCR bursts release the bus when the master stops
        # requesting.
        if accepted.hburst is HBurst.INCR and not requests.get(accepted.master_id, False):
            return True
        return False

    # -- reset / rollback --------------------------------------------------------
    def reset(self) -> None:
        self.arbiter.reset()
        self.data_phase = None
        self.data_phase_first_cycle = True
        self.latched_requests = {mid: False for mid in self.master_ids}
        self._burst_beats_done = 0
        self._info_cache = None

    def snapshot(self) -> dict:
        """Owned payload (fast-copy protocol): the ``AddressPhase`` is frozen
        and stored by reference; the request dict is a fresh copy."""
        return {
            "arbiter": self.arbiter.snapshot(),
            "data_phase": self.data_phase,
            "data_phase_first_cycle": self.data_phase_first_cycle,
            "latched_requests": dict(self.latched_requests),
            "burst_beats_done": self._burst_beats_done,
        }

    def restore(self, state: dict) -> None:
        self.arbiter.restore(state["arbiter"])
        self.data_phase = state["data_phase"]
        self.data_phase_first_cycle = state["data_phase_first_cycle"]
        self.latched_requests = dict(state["latched_requests"])
        self._burst_beats_done = state["burst_beats_done"]
        self._info_cache = None


class AhbBus(ClockedComponent):
    """The monolithic reference bus: all masters and slaves are local."""

    snapshot_copy_free = True

    def __init__(
        self,
        name: str = "ahb_bus",
        policy: Optional[ArbitrationPolicy] = None,
        default_master_id: Optional[int] = None,
        enable_monitor: bool = True,
    ) -> None:
        super().__init__(name)
        self.masters: Dict[int, AhbMaster] = {}
        self.slaves: Dict[int, AhbSlave] = {}
        self.decoder = AddressDecoder()
        self.default_slave = DefaultSlave()
        self.decoder.default_slave_id = self.default_slave.slave_id
        self.slaves[self.default_slave.slave_id] = self.default_slave
        self._policy = policy
        self._default_master_id = default_master_id
        self.core: Optional[AhbBusCore] = None
        self.recorder = TransactionRecorder()
        self.records: List[BusCycleRecord] = []
        self.monitor = AhbProtocolMonitor() if enable_monitor else None
        self._tick_order: List[ClockedComponent] = []

    # -- construction -------------------------------------------------------------
    def add_master(self, master: AhbMaster) -> AhbMaster:
        if master.master_id in self.masters:
            raise AhbError(f"duplicate master id {master.master_id}")
        self.masters[master.master_id] = master
        return master

    def add_slave(self, slave: AhbSlave, base: int, size: int) -> AhbSlave:
        if slave.slave_id in self.slaves:
            raise AhbError(f"duplicate slave id {slave.slave_id}")
        self.slaves[slave.slave_id] = slave
        self.decoder.add_region(base, size, slave.slave_id, name=slave.name)
        return slave

    def finalize(self) -> None:
        """Build the arbiter / core once all masters and slaves are added."""
        if self.core is not None:
            return
        if not self.masters:
            raise AhbError("bus has no masters")
        master_ids = sorted(self.masters)
        default_master = (
            self._default_master_id if self._default_master_id is not None else master_ids[0]
        )
        policy = self._policy or FixedPriorityPolicy(master_ids)
        arbiter = Arbiter(policy=policy, default_master=default_master)
        self.core = AhbBusCore(arbiter=arbiter, decoder=self.decoder, master_ids=master_ids)
        self._tick_order = list(self.masters.values()) + list(self.slaves.values())

    # -- per-cycle protocol ----------------------------------------------------------
    def evaluate(self, cycle: int) -> None:
        if self.core is None:
            self.finalize()
        assert self.core is not None
        core = self.core

        for component in self._tick_order:
            component.tick(cycle)

        info = core.data_phase_info()
        drive = self._collect_drive(cycle, core, info)
        response = self._collect_response(cycle, info, drive)
        self._notify_masters(cycle, core, info, drive, response)
        record = core.commit_cycle(cycle, drive, response)
        self.records.append(record)
        if self.monitor is not None:
            self.monitor.check(record)
        self._record_completed_beat(cycle, info, drive, response)

    def _collect_drive(self, cycle: int, core: AhbBusCore, info: DataPhaseInfo) -> DriveValues:
        requests = {mid: master.drive_hbusreq(cycle) for mid, master in self.masters.items()}
        granted = core.granted_master
        address_phase = self.masters[granted].drive_address_phase(cycle, granted=True)
        hwdata = None
        if info.active and info.is_write:
            owner = self.masters[info.owner_master_id]
            hwdata = owner.drive_hwdata(info.address_phase)
        return DriveValues(requests=requests, address_phase=address_phase, hwdata=hwdata)

    def _collect_response(
        self, cycle: int, info: DataPhaseInfo, drive: DriveValues
    ) -> DataPhaseResult:
        if not info.active:
            return DataPhaseResult.okay()
        slave = self.slaves[info.slave_id]
        return slave.data_phase(cycle, info.address_phase, drive.hwdata, info.first_cycle)

    def _notify_masters(
        self,
        cycle: int,
        core: AhbBusCore,
        info: DataPhaseInfo,
        drive: DriveValues,
        response: DataPhaseResult,
    ) -> None:
        if not response.hready:
            return
        if info.active:
            owner = self.masters[info.owner_master_id]
            owner.on_data_phase_done(cycle, info.address_phase, response)
        accepted = drive.address_phase
        if accepted is not None and accepted.is_active:
            self.masters[accepted.master_id].on_address_accepted(cycle, accepted)

    def _record_completed_beat(
        self,
        cycle: int,
        info: DataPhaseInfo,
        drive: DriveValues,
        response: DataPhaseResult,
    ) -> None:
        if not (info.active and response.hready):
            return
        phase = info.address_phase
        assert phase is not None
        self.recorder.record_beat(
            CompletedBeat(
                cycle=cycle,
                master_id=phase.master_id,
                address=phase.haddr,
                write=phase.hwrite,
                data=drive.hwdata if phase.hwrite else response.hrdata,
                hresp=response.hresp,
                hburst=phase.hburst,
                hsize=phase.hsize,
                first_beat=phase.htrans is HTrans.NONSEQ,
            )
        )

    # -- helpers ------------------------------------------------------------------------
    def all_masters_done(self) -> bool:
        """True when every master reporting a ``done`` property is done."""
        done_flags = [
            master.done for master in self.masters.values() if hasattr(master, "done")
        ]
        return all(done_flags) if done_flags else True

    def reset(self) -> None:
        super().reset()
        for component in list(self.masters.values()) + list(self.slaves.values()):
            component.reset()
        if self.core is not None:
            self.core.reset()
        self.recorder = TransactionRecorder()
        self.records.clear()
        if self.monitor is not None:
            self.monitor.reset()

    def snapshot_state(self) -> dict:
        assert self.core is not None
        return {
            "core": self.core.snapshot(),
            "masters": {mid: m.snapshot_state() for mid, m in self.masters.items()},
            "slaves": {sid: s.snapshot_state() for sid, s in self.slaves.items()},
            "recorder": self.recorder.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        assert self.core is not None
        self.core.restore(state["core"])
        for mid, m_state in state["masters"].items():
            self.masters[mid].restore_state(m_state)
        for sid, s_state in state["slaves"].items():
            self.slaves[sid].restore_state(s_state)
        self.recorder.restore(state["recorder"])
