"""Transaction-level representations of bus activity.

A :class:`BusTransaction` is the unit of work a bus master wants to perform:
a read or write burst of one or more beats.  Masters turn transactions into
pin-level address/data phases; the :class:`TransactionRecorder` performs the
inverse, re-assembling completed beats into transactions.  Comparing the
recorded transaction streams of two system models (monolithic bus vs. split
co-emulated bus, conservative vs. optimistic synchronisation) is the golden
functional-equivalence check used throughout the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .signals import AhbError, HBurst, HResp, HSize
from .burst import beat_count


@dataclass
class BusTransaction:
    """A read or write burst requested by a master.

    Attributes:
        master_id: identifier of the issuing master.
        address: byte address of the first beat (must be HSIZE aligned).
        write: True for a write burst, False for a read burst.
        data: write data words (writes) -- must have one entry per beat.
        hburst: AHB burst type.
        hsize: transfer size.
        beats: number of beats; inferred from ``hburst`` when possible.
        issue_cycle: earliest target cycle at which the master may request
            the bus for this transaction.
    """

    master_id: int
    address: int
    write: bool
    hburst: HBurst = HBurst.SINGLE
    hsize: HSize = HSize.WORD
    data: List[int] = field(default_factory=list)
    beats: Optional[int] = None
    issue_cycle: int = 0

    def __post_init__(self) -> None:
        if self.beats is None:
            self.beats = beat_count(self.hburst, len(self.data) or None)
        if self.write:
            if len(self.data) != self.beats:
                raise AhbError(
                    f"write transaction has {len(self.data)} data words "
                    f"but {self.beats} beats"
                )
        if self.address % self.hsize.bytes != 0:
            raise AhbError(
                f"transaction address {self.address:#x} not aligned to {self.hsize.name}"
            )

    @property
    def n_beats(self) -> int:
        return int(self.beats)


@dataclass(slots=True)
class CompletedBeat:
    """One completed data phase, as observed on the bus (hot-path object:
    one per committed beat, hence ``__slots__``)."""

    cycle: int
    master_id: int
    address: int
    write: bool
    data: Optional[int]
    hresp: HResp
    hburst: HBurst
    hsize: HSize
    first_beat: bool

    def key(self) -> tuple:
        """Order-sensitive functional summary (cycle excluded on purpose).

        The optimistic scheme changes *when* things happen in wall-clock
        terms but must not change the order or content of completed beats,
        so equivalence checks compare keys without the cycle number only if
        requested by the caller.
        """
        return (
            self.master_id,
            self.address,
            self.write,
            self.data,
            int(self.hresp),
            int(self.hburst),
            int(self.hsize),
            self.first_beat,
        )


@dataclass
class CompletedTransaction:
    """A fully completed burst, reassembled from its beats."""

    master_id: int
    address: int
    write: bool
    hburst: HBurst
    hsize: HSize
    data: List[int]
    start_cycle: int
    end_cycle: int
    responses: List[HResp] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(resp is HResp.OKAY for resp in self.responses)


class TransactionRecorder:
    """Re-assembles completed beats into transactions.

    The recorder groups consecutive beats from the same master: a beat marked
    ``first_beat`` starts a new transaction, subsequent beats extend it until
    the expected beat count is reached.
    """

    def __init__(self) -> None:
        self.beats: List[CompletedBeat] = []
        self.transactions: List[CompletedTransaction] = []
        self._open: dict[int, CompletedTransaction] = {}
        self._open_expected: dict[int, int] = {}

    def record_beat(self, beat: CompletedBeat) -> None:
        """Record one completed data phase."""
        self.beats.append(beat)
        if beat.first_beat:
            self._start_transaction(beat)
        else:
            self._extend_transaction(beat)

    def _start_transaction(self, beat: CompletedBeat) -> None:
        # If the master had an unfinished transaction, close it as-is (an
        # ERROR response aborts the remainder of a burst).
        self._close(beat.master_id)
        txn = CompletedTransaction(
            master_id=beat.master_id,
            address=beat.address,
            write=beat.write,
            hburst=beat.hburst,
            hsize=beat.hsize,
            data=[] if beat.data is None else [beat.data],
            start_cycle=beat.cycle,
            end_cycle=beat.cycle,
            responses=[beat.hresp],
        )
        expected = beat.hburst.beats or 1
        if beat.hburst is HBurst.INCR:
            expected = -1  # unknown length; closed by the next first_beat
        if expected == 1:
            self.transactions.append(txn)
        else:
            self._open[beat.master_id] = txn
            self._open_expected[beat.master_id] = expected

    def _extend_transaction(self, beat: CompletedBeat) -> None:
        txn = self._open.get(beat.master_id)
        if txn is None:
            # A SEQ beat without an open transaction: treat as a new single.
            self._start_transaction(
                CompletedBeat(
                    cycle=beat.cycle,
                    master_id=beat.master_id,
                    address=beat.address,
                    write=beat.write,
                    data=beat.data,
                    hresp=beat.hresp,
                    hburst=HBurst.SINGLE,
                    hsize=beat.hsize,
                    first_beat=True,
                )
            )
            return
        if beat.data is not None:
            txn.data.append(beat.data)
        txn.responses.append(beat.hresp)
        txn.end_cycle = beat.cycle
        expected = self._open_expected[beat.master_id]
        if expected > 0 and len(txn.responses) >= expected:
            self._close(beat.master_id)

    def _close(self, master_id: int) -> None:
        txn = self._open.pop(master_id, None)
        self._open_expected.pop(master_id, None)
        if txn is not None:
            self.transactions.append(txn)

    def finalize(self) -> List[CompletedTransaction]:
        """Close any open transactions and return the full list."""
        for master_id in list(self._open):
            self._close(master_id)
        return self.transactions

    def beat_keys(self) -> List[tuple]:
        """Functional summary of the beat stream (for equivalence checks)."""
        return [beat.key() for beat in self.beats]

    def snapshot(self) -> dict:
        """Snapshot for rollback: index counters only (beats are append-only)."""
        return {
            "n_beats": len(self.beats),
            "n_transactions": len(self.transactions),
        }

    def restore(self, state: dict) -> None:
        del self.beats[state["n_beats"]:]
        del self.transactions[state["n_transactions"]:]
        self._open.clear()
        self._open_expected.clear()
