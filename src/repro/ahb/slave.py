"""AHB bus slaves.

Slaves service data phases: given the registered address phase (and the
write data for writes) they produce ``HREADY`` / ``HRESP`` / ``HRDATA``.

Concrete slaves provided:

* :class:`MemorySlave` -- a word-addressed RAM with configurable wait states.
* :class:`FifoPeripheralSlave` -- a producer/consumer style peripheral whose
  readiness follows a simple fill/drain model.  This is the behaviour the
  paper exploits when it argues that active-slave responses are predictable
  ("they just represent whether the active bus slave can handle [the] bus
  transaction at a particular target time, which can be modeled with a simple
  producer-consumer model").
* :class:`DefaultSlave` -- responds with ERROR to any active transfer, used
  for unmapped address space.

All slaves are snapshotable so they can live in the leader domain.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.component import AbstractionLevel, ClockedComponent
from .signals import AddressPhase, AhbError, DataPhaseResult


class AhbSlave(ClockedComponent):
    """Interface every bus slave implements.

    ``snapshot_copy_free`` is deliberately *not* set here: each concrete
    slave opts into the fast-copy checkpoint protocol individually once its
    payload is audited; unaudited subclasses keep the safe deep-copy path.
    """

    def __init__(self, name: str, slave_id: int, level: AbstractionLevel = AbstractionLevel.TL) -> None:
        super().__init__(name)
        self.slave_id = slave_id
        self.level = level

    def evaluate(self, cycle: int) -> None:  # housekeeping hook
        return

    def data_phase(
        self,
        cycle: int,
        address_phase: AddressPhase,
        hwdata: Optional[int],
        first_cycle: bool,
    ) -> DataPhaseResult:
        """Service one cycle of the data phase for ``address_phase``.

        Called once per cycle while the beat occupies the data phase;
        ``first_cycle`` is True the first time this beat is presented.  The
        slave inserts wait states by returning ``hready=False``.
        """
        raise NotImplementedError

    def trace_signature(self) -> Optional[tuple]:
        """Structural state digest for the periodic trace cache.

        Must cover every piece of state that influences *response shape*
        (wait states, hready/hresp sequencing); payload words are excluded.
        ``None`` (the conservative base implementation) disables trace
        replay for the whole topology.
        """
        return None


@dataclass
class SlaveStats:
    """Per-slave activity counters."""

    reads: int = 0
    writes: int = 0
    wait_states: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "wait_states": self.wait_states,
            "errors": self.errors,
        }


class MemorySlave(AhbSlave):
    """A simple word-addressed memory with configurable wait states.

    The memory stores 32-bit words in a compact ``array('I')`` (plain Python
    ints on access -- much cheaper than per-word numpy scalar boxing on the
    engine hot path).  Sub-word transfer sizes are accepted but are performed
    at word granularity (adequate for the word-oriented traffic the workloads
    generate).

    The memory also implements *dirty-word tracking* for incremental
    checkpointing: while a checkpoint window is open (see
    :meth:`~repro.sim.component.ClockedComponent.open_checkpoint_window`)
    every first write to a word journals its pre-write value, so rolling the
    window back costs O(words touched) instead of O(memory size).
    """

    #: Fast-copy snapshot protocol: the words array is freshly copied on
    #: store and treated as read-only on restore.
    snapshot_copy_free = True

    def __init__(
        self,
        name: str,
        slave_id: int,
        base_address: int,
        size_bytes: int,
        read_wait_states: int = 0,
        write_wait_states: int = 0,
        level: AbstractionLevel = AbstractionLevel.TL,
    ) -> None:
        super().__init__(name, slave_id, level)
        if size_bytes <= 0 or size_bytes % 4 != 0:
            raise AhbError(f"memory size must be a positive multiple of 4, got {size_bytes}")
        self.base_address = base_address
        self.size_bytes = size_bytes
        self.read_wait_states = read_wait_states
        self.write_wait_states = write_wait_states
        self._words = array("I", bytes(size_bytes))
        self._wait_remaining = 0
        self.stats = SlaveStats()
        #: Undo journal of the open checkpoint window ({index: pre-write
        #: value}), ``None`` when no window is open.
        self._undo: Optional[Dict[int, int]] = None

    # -- direct access (used by tests and workload setup) --------------------
    def _index(self, address: int) -> int:
        offset = address - self.base_address
        if offset < 0 or offset >= self.size_bytes:
            raise AhbError(
                f"address {address:#x} outside memory {self.name!r} "
                f"[{self.base_address:#x}, {self.base_address + self.size_bytes:#x})"
            )
        return offset // 4

    def read_word(self, address: int) -> int:
        return self._words[self._index(address)]

    def write_word(self, address: int, value: int) -> None:
        index = self._index(address)
        undo = self._undo
        if undo is not None and index not in undo:
            undo[index] = self._words[index]
        self._words[index] = value & 0xFFFFFFFF

    def load(self, address: int, values: list[int]) -> None:
        """Bulk-initialise memory starting at ``address``."""
        for offset, value in enumerate(values):
            self.write_word(address + 4 * offset, value)

    # -- AhbSlave interface ----------------------------------------------------
    def data_phase(
        self,
        cycle: int,
        address_phase: AddressPhase,
        hwdata: Optional[int],
        first_cycle: bool,
    ) -> DataPhaseResult:
        wait_states = self.write_wait_states if address_phase.hwrite else self.read_wait_states
        if first_cycle:
            self._wait_remaining = wait_states
        if self._wait_remaining > 0:
            self._wait_remaining -= 1
            self.stats.wait_states += 1
            return DataPhaseResult.wait()
        if address_phase.hwrite:
            if hwdata is None:
                raise AhbError(f"memory {self.name!r}: write beat without write data")
            self.write_word(address_phase.haddr, hwdata)
            self.stats.writes += 1
            return DataPhaseResult.okay()
        value = self.read_word(address_phase.haddr)
        self.stats.reads += 1
        return DataPhaseResult.okay(hrdata=value)

    def trace_signature(self) -> Optional[tuple]:
        # Response shape depends only on hwrite (per-slave constant wait
        # counts) and the wait countdown; memory contents flow through the
        # live read/write calls during replay.
        return (self._wait_remaining,)

    # -- rollback support -------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "words": self._words[:],
            "wait_remaining": self._wait_remaining,
            "stats": self.stats.as_dict(),
        }

    def restore_state(self, state: dict) -> None:
        # An open undo journal deliberately survives a full restore: a full
        # snapshot restored while a window is open was necessarily taken
        # *after* the window opened (the checkpoint stack is LIFO and
        # incremental windows only exist at depth 0), so the journal still
        # maps every index dirtied since window-open to its window-open value
        # and a later rewind lands exactly on the window-open state.
        self._words = state["words"][:]
        self._wait_remaining = state["wait_remaining"]
        self.stats = SlaveStats(**state["stats"])

    def rollback_variable_count(self) -> int:
        return len(self._words) + 1

    # -- incremental checkpointing (dirty-word journal) -------------------------
    supports_checkpoint_window = True

    def open_checkpoint_window(self) -> dict:
        """Start journalling writes; returns the scalar sidecar state."""
        self._undo = {}
        return {
            "wait_remaining": self._wait_remaining,
            "stats": self.stats.as_dict(),
        }

    def rewind_checkpoint_window(self, token: dict) -> None:
        """Undo every write since :meth:`open_checkpoint_window` (reverse
        delta) and restore the scalar sidecar; the window is closed."""
        undo = self._undo
        if undo is None:
            raise AhbError(f"memory {self.name!r}: no checkpoint window open")
        words = self._words
        for index, value in undo.items():
            words[index] = value
        self._undo = None
        self._wait_remaining = token["wait_remaining"]
        self.stats = SlaveStats(**token["stats"])

    def close_checkpoint_window(self, token: dict) -> None:
        """Drop the journal, keeping the current state (window committed)."""
        self._undo = None

    def reset(self) -> None:
        super().reset()
        self._words = array("I", bytes(self.size_bytes))
        self._wait_remaining = 0
        self.stats = SlaveStats()
        self._undo = None


class FifoPeripheralSlave(AhbSlave):
    """A producer/consumer peripheral.

    Reads pop from an internal FIFO that refills at ``produce_period`` (one
    new word every N cycles); writes push into the FIFO which drains at
    ``consume_period``.  When the FIFO cannot service the access the slave
    inserts wait states.  The resulting HREADY pattern is exactly the kind of
    behaviour the paper's producer-consumer response predictor targets.
    """

    snapshot_copy_free = True  # payload is scalars + a fresh stats dict

    def __init__(
        self,
        name: str,
        slave_id: int,
        depth: int = 8,
        produce_period: int = 4,
        consume_period: int = 4,
        initial_fill: int = 0,
        level: AbstractionLevel = AbstractionLevel.RTL,
    ) -> None:
        super().__init__(name, slave_id, level)
        if depth <= 0:
            raise AhbError("FIFO depth must be positive")
        self.depth = depth
        self.produce_period = max(1, produce_period)
        self.consume_period = max(1, consume_period)
        self.fill = min(initial_fill, depth)
        self._produce_counter = 0
        self._consume_counter = 0
        self._next_value = 0
        self.stats = SlaveStats()

    def evaluate(self, cycle: int) -> None:
        """Per-cycle producer/consumer housekeeping."""
        self._produce_counter += 1
        if self._produce_counter >= self.produce_period:
            self._produce_counter = 0
            if self.fill < self.depth:
                self.fill += 1
        self._consume_counter += 1
        if self._consume_counter >= self.consume_period:
            self._consume_counter = 0
            if self.fill > 0 and self._pending_drain:
                self.fill -= 1

    @property
    def _pending_drain(self) -> bool:
        # Written data is drained by the consumer side; model keeps it simple
        # by always draining when non-empty.
        return True

    def data_phase(
        self,
        cycle: int,
        address_phase: AddressPhase,
        hwdata: Optional[int],
        first_cycle: bool,
    ) -> DataPhaseResult:
        if address_phase.hwrite:
            if self.fill >= self.depth:
                self.stats.wait_states += 1
                return DataPhaseResult.wait()
            self.fill += 1
            self.stats.writes += 1
            return DataPhaseResult.okay()
        if self.fill <= 0:
            self.stats.wait_states += 1
            return DataPhaseResult.wait()
        self.fill -= 1
        self.stats.reads += 1
        value = self._next_value
        self._next_value = (self._next_value + 1) & 0xFFFFFFFF
        return DataPhaseResult.okay(hrdata=value)

    def snapshot_state(self) -> dict:
        return {
            "fill": self.fill,
            "produce_counter": self._produce_counter,
            "consume_counter": self._consume_counter,
            "next_value": self._next_value,
            "stats": self.stats.as_dict(),
        }

    def restore_state(self, state: dict) -> None:
        self.fill = state["fill"]
        self._produce_counter = state["produce_counter"]
        self._consume_counter = state["consume_counter"]
        self._next_value = state["next_value"]
        self.stats = SlaveStats(**state["stats"])

    def reset(self) -> None:
        super().reset()
        self.fill = 0
        self._produce_counter = 0
        self._consume_counter = 0
        self._next_value = 0
        self.stats = SlaveStats()


class DefaultSlave(AhbSlave):
    """The default slave: ERROR response to any active transfer.

    AHB requires a two-cycle ERROR response (first cycle HREADY low with
    HRESP=ERROR, second cycle HREADY high with HRESP=ERROR).
    """

    snapshot_copy_free = True  # payload is a scalar + a fresh stats dict

    def __init__(self, name: str = "default_slave", slave_id: int = -1) -> None:
        super().__init__(name, slave_id, AbstractionLevel.TL)
        self._in_second_cycle = False
        self.stats = SlaveStats()

    def data_phase(
        self,
        cycle: int,
        address_phase: AddressPhase,
        hwdata: Optional[int],
        first_cycle: bool,
    ) -> DataPhaseResult:
        if first_cycle:
            self._in_second_cycle = False
        if not self._in_second_cycle:
            self._in_second_cycle = True
            self.stats.errors += 1
            return DataPhaseResult.error_first_cycle()
        self._in_second_cycle = False
        return DataPhaseResult.error_second_cycle()

    def trace_signature(self) -> Optional[tuple]:
        # ``_in_second_cycle`` is fully determined by the bus-core state the
        # trace controller already digests (data-phase route + first_cycle),
        # and a period whose data phase reaches the default slave is rejected
        # at template build; the digest itself is therefore constant.
        return ()

    def snapshot_state(self) -> dict:
        return {"in_second_cycle": self._in_second_cycle, "stats": self.stats.as_dict()}

    def restore_state(self, state: dict) -> None:
        self._in_second_cycle = state["in_second_cycle"]
        self.stats = SlaveStats(**state["stats"])

    def reset(self) -> None:
        super().reset()
        self._in_second_cycle = False
        self.stats = SlaveStats()
