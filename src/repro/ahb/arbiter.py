"""AHB bus arbitration.

The arbiter decides which master owns the address phase each cycle.  The
paper assumes the arbitration priority is statically defined, which is what
removes the arbiter's output from the minimal set of active bus signals: the
arbitration *result* can be recomputed on both sides of the channel from the
request vector, and -- crucially for the prediction scheme -- it "tends to
change only occasionally" so the leader predicts it from its previous value.

Two policies are provided: fixed priority (the paper's assumption) and
round-robin (useful for stress-testing the predictors with a harder-to-
predict arbitration pattern).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Sequence


class ArbitrationError(ValueError):
    """Raised for malformed arbitration inputs."""


class ArbitrationPolicy(ABC):
    """Strategy object choosing the next granted master."""

    @abstractmethod
    def choose(
        self,
        requests: Dict[int, bool],
        current_grant: int,
        default_master: int,
    ) -> int:
        """Pick the master to grant given the latched request vector."""

    def reset(self) -> None:
        """Clear any internal fairness state."""


class FixedPriorityPolicy(ArbitrationPolicy):
    """Grant the requesting master with the highest static priority.

    Priority is given by position in ``priority_order`` (earlier = higher).
    When nobody requests, the grant goes to the default master (AHB keeps the
    bus parked on a default master driving IDLE transfers).
    """

    def __init__(self, priority_order: Sequence[int]) -> None:
        if len(set(priority_order)) != len(priority_order):
            raise ArbitrationError("priority order contains duplicate master ids")
        self.priority_order = list(priority_order)

    def choose(self, requests: Dict[int, bool], current_grant: int, default_master: int) -> int:
        for master_id in self.priority_order:
            if requests.get(master_id, False):
                return master_id
        return default_master

    def reset(self) -> None:  # stateless
        return


class RoundRobinPolicy(ArbitrationPolicy):
    """Rotating-priority arbitration.

    The master after the currently granted one (in id order) has the highest
    priority.  Deterministic given the same request history, so the two half
    bus models stay in agreement.
    """

    def __init__(self, master_ids: Sequence[int]) -> None:
        if not master_ids:
            raise ArbitrationError("round-robin policy needs at least one master")
        self.master_ids = sorted(set(master_ids))

    def choose(self, requests: Dict[int, bool], current_grant: int, default_master: int) -> int:
        if not any(requests.get(master_id, False) for master_id in self.master_ids):
            return default_master
        try:
            start = self.master_ids.index(current_grant) + 1
        except ValueError:
            start = 0
        order = self.master_ids[start:] + self.master_ids[:start]
        for master_id in order:
            if requests.get(master_id, False):
                return master_id
        return default_master

    def reset(self) -> None:  # stateless (rotation derives from current grant)
        return


@dataclass
class ArbiterStats:
    """Counters describing arbitration activity."""

    decisions: int = 0
    grant_changes: int = 0
    cycles_parked: int = 0

    def as_dict(self) -> dict:
        return {
            "decisions": self.decisions,
            "grant_changes": self.grant_changes,
            "cycles_parked": self.cycles_parked,
        }


@dataclass
class Arbiter:
    """The bus arbiter.

    The arbiter is *not* a clocked component of its own: the bus core invokes
    it at the end of every cycle in which re-arbitration is allowed (HREADY
    high and no fixed-length burst in progress).  Both half bus models run an
    identical arbiter over an identical request vector, so their decisions
    always agree -- this is the paper's justification for excluding the
    arbitration result from the exchanged signal set.
    """

    policy: ArbitrationPolicy
    default_master: int
    current_grant: int = field(default=-1)
    stats: ArbiterStats = field(default_factory=ArbiterStats)

    def __post_init__(self) -> None:
        if self.current_grant < 0:
            self.current_grant = self.default_master

    def arbitrate(self, requests: Dict[int, bool]) -> int:
        """Choose the granted master for the next cycle."""
        chosen = self.policy.choose(requests, self.current_grant, self.default_master)
        self.stats.decisions += 1
        if chosen != self.current_grant:
            self.stats.grant_changes += 1
        if not any(requests.values()):
            self.stats.cycles_parked += 1
        self.current_grant = chosen
        return chosen

    def record_idle_cycles(self, count: int) -> None:
        """Account for ``count`` all-idle arbitration decisions at once.

        Equivalent to ``count`` calls to :meth:`arbitrate` with an all-False
        request vector while already parked on the default master: every such
        call bumps ``decisions`` and ``cycles_parked`` and leaves the grant
        unchanged (both built-in policies return the default master when
        nobody requests).  Used by the batch-stepping fast-forward path.
        """
        self.stats.decisions += count
        self.stats.cycles_parked += count

    def reset(self) -> None:
        self.current_grant = self.default_master
        self.policy.reset()
        self.stats = ArbiterStats()

    def snapshot(self) -> dict:
        return {"current_grant": self.current_grant}

    def restore(self, state: dict) -> None:
        self.current_grant = state["current_grant"]
