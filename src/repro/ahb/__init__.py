"""AMBA AHB bus substrate.

The bus model comes in two flavours:

* :class:`~repro.ahb.bus.AhbBus` -- the monolithic reference interconnect,
  used as the golden model for functional-equivalence checks.
* :class:`~repro.ahb.half_bus.HalfBusModel` -- one half of the split bus used
  for co-emulation (HBMS / HBMA in the paper), glued together by the channel
  wrappers in :mod:`repro.core`.
"""

from .arbiter import (
    Arbiter,
    ArbiterStats,
    ArbitrationError,
    ArbitrationPolicy,
    FixedPriorityPolicy,
    RoundRobinPolicy,
)
from .burst import (
    BurstTracker,
    beat_count,
    burst_addresses,
    iter_burst_addresses,
    next_beat_address,
    wrap_boundary,
)
from .bus import AhbBus, AhbBusCore, DataPhaseInfo, DriveValues
from .decoder import AddressDecoder, AddressRegion, DecodeError
from .half_bus import BoundaryDrive, BoundaryResponse, HalfBusModel, NeededFields
from .master import AhbMaster, IdleMaster, MasterStats, TrafficMaster
from .monitor import AhbProtocolMonitor, ProtocolViolation
from .signals import (
    AddressPhase,
    AhbError,
    BusCycleRecord,
    DataPhaseResult,
    HBurst,
    HResp,
    HSize,
    HTrans,
    MasterRequest,
    MSABS_CLASSIFICATION,
    SignalClass,
    WORDS_PER_ADDRESS_PHASE,
    WORDS_PER_READ_DATA,
    WORDS_PER_REQUEST_VECTOR,
    WORDS_PER_RESPONSE,
    WORDS_PER_WRITE_DATA,
    is_predictable,
)
from .slave import AhbSlave, DefaultSlave, FifoPeripheralSlave, MemorySlave, SlaveStats
from .transaction import (
    BusTransaction,
    CompletedBeat,
    CompletedTransaction,
    TransactionRecorder,
)

__all__ = [
    "AddressDecoder",
    "AddressPhase",
    "AddressRegion",
    "AhbBus",
    "AhbBusCore",
    "AhbError",
    "AhbMaster",
    "AhbProtocolMonitor",
    "AhbSlave",
    "Arbiter",
    "ArbiterStats",
    "ArbitrationError",
    "ArbitrationPolicy",
    "BoundaryDrive",
    "BoundaryResponse",
    "BurstTracker",
    "BusCycleRecord",
    "BusTransaction",
    "CompletedBeat",
    "CompletedTransaction",
    "DataPhaseInfo",
    "DataPhaseResult",
    "DecodeError",
    "DefaultSlave",
    "DriveValues",
    "FifoPeripheralSlave",
    "FixedPriorityPolicy",
    "HBurst",
    "HResp",
    "HSize",
    "HTrans",
    "HalfBusModel",
    "IdleMaster",
    "MSABS_CLASSIFICATION",
    "MasterRequest",
    "MasterStats",
    "MemorySlave",
    "NeededFields",
    "ProtocolViolation",
    "RoundRobinPolicy",
    "SignalClass",
    "SlaveStats",
    "TrafficMaster",
    "TransactionRecorder",
    "WORDS_PER_ADDRESS_PHASE",
    "WORDS_PER_READ_DATA",
    "WORDS_PER_REQUEST_VECTOR",
    "WORDS_PER_RESPONSE",
    "WORDS_PER_WRITE_DATA",
    "beat_count",
    "burst_addresses",
    "is_predictable",
    "iter_burst_addresses",
    "next_beat_address",
    "wrap_boundary",
]
