"""AMBA AHB signal definitions and MSABS classification.

The reproduction models the subset of the AHB specification the paper relies
on: a single shared address/data bus with pipelined address and data phases,
a central arbiter and decoder, multiple masters and slaves, incrementing and
wrapping bursts, and OKAY/ERROR/RETRY/SPLIT responses.

The paper's key observation is a *classification* of bus signals
(Section 3 / Figure 1):

* **Set of bus signals** -- every signal in the specification.
* **Set of active bus signals** -- signals that influence the bus operation
  this cycle: those driven by the active master, the active slave, the
  arbiter/decoder, plus all masters' bus-request signals.
* **MSABS** (minimal set of active bus signals) -- the subset whose values
  exclusively define the bus operation with no redundancy: address + control
  + write data of the active master, response + read data of the active
  slave, and the bus-request signals of all masters.  Arbiter / decoder
  outputs are excluded because they can be recomputed from the request and
  address values (arbitration priority and the address map are static).
* Within MSABS, address/control and slave responses are **predictable**,
  read/write data are **non-predictable**, and bus requests are
  non-predictable individually but the *arbitration result* they feed is
  predictable from its previous value.

This module provides the enums, the per-phase value containers and the
classification helpers used by the prediction core.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum, IntEnum
from typing import Optional


class AhbError(ValueError):
    """Raised for malformed AHB phase values."""


class HTrans(IntEnum):
    """Transfer type (HTRANS)."""

    IDLE = 0
    BUSY = 1
    NONSEQ = 2
    SEQ = 3

    @property
    def is_active(self) -> bool:
        """True for transfer types that address a slave (NONSEQ / SEQ)."""
        return self._value_ >= 2


class HBurst(IntEnum):
    """Burst type (HBURST)."""

    SINGLE = 0
    INCR = 1
    WRAP4 = 2
    INCR4 = 3
    WRAP8 = 4
    INCR8 = 5
    WRAP16 = 6
    INCR16 = 7

    @property
    def beats(self) -> Optional[int]:
        """Number of beats for fixed-length bursts, None for SINGLE/INCR."""
        return _BURST_BEATS_BY_VALUE[self._value_]

    @property
    def is_wrapping(self) -> bool:
        return self._value_ in (2, 4, 6)  # WRAP4 / WRAP8 / WRAP16


#: Beat counts indexed by HBurst value (tuple indexing beats enum-key
#: hashing on the per-cycle paths that read ``hburst.beats``).
_BURST_BEATS_BY_VALUE = (1, None, 4, 4, 8, 8, 16, 16)


class HSize(IntEnum):
    """Transfer size (HSIZE); value is log2 of the number of bytes."""

    BYTE = 0
    HALFWORD = 1
    WORD = 2
    DOUBLEWORD = 3

    @property
    def bytes(self) -> int:
        return 1 << int(self)


class HResp(IntEnum):
    """Slave response (HRESP)."""

    OKAY = 0
    ERROR = 1
    RETRY = 2
    SPLIT = 3


class SignalClass(str, Enum):
    """Prediction classification of an MSABS element (Figure 1)."""

    PREDICTABLE = "predictable"
    NON_PREDICTABLE = "non_predictable"


#: Classification of the MSABS signal groups (paper Section 3, Figure 1).
MSABS_CLASSIFICATION: dict[str, SignalClass] = {
    # address and control of the active bus master: deducible from the values
    # at the start of a burst (linear increment or constant).
    "haddr": SignalClass.PREDICTABLE,
    "htrans": SignalClass.PREDICTABLE,
    "hwrite": SignalClass.PREDICTABLE,
    "hsize": SignalClass.PREDICTABLE,
    "hburst": SignalClass.PREDICTABLE,
    "hprot": SignalClass.PREDICTABLE,
    # responses of the active bus slave: producer-consumer model.
    "hready": SignalClass.PREDICTABLE,
    "hresp": SignalClass.PREDICTABLE,
    "hsplit": SignalClass.PREDICTABLE,
    # data signals: non-predictable.
    "hwdata": SignalClass.NON_PREDICTABLE,
    "hrdata": SignalClass.NON_PREDICTABLE,
    # individual bus requests are non-predictable, but the arbitration result
    # is predicted from its previous value.
    "hbusreq": SignalClass.NON_PREDICTABLE,
    "arbitration_result": SignalClass.PREDICTABLE,
    # non-bus signals crossing the boundary (interrupts) are treated like
    # MSABS elements and predicted (last value).
    "interrupt": SignalClass.PREDICTABLE,
}


def is_predictable(signal_name: str) -> bool:
    """Return True if the named MSABS element is classified as predictable."""
    try:
        return MSABS_CLASSIFICATION[signal_name] is SignalClass.PREDICTABLE
    except KeyError as exc:
        raise AhbError(f"unknown MSABS signal {signal_name!r}") from exc


@dataclass(frozen=True, slots=True)
class AddressPhase:
    """The address/control signals driven by the active master for one beat.

    The object is created on the engine's per-cycle hot path, so it carries
    ``__slots__`` and precomputes the ``is_active`` flag once at construction
    instead of re-deriving it from ``htrans`` on every read.  Being frozen,
    instances are safely shared by reference across LOB entries, checkpoint
    payloads and predictor state.
    """

    master_id: int
    haddr: int = 0
    htrans: HTrans = HTrans.IDLE
    hwrite: bool = False
    hsize: HSize = HSize.WORD
    hburst: HBurst = HBurst.SINGLE
    hprot: int = 0
    #: Precomputed ``htrans.is_active`` (derived; excluded from eq/repr).
    is_active: bool = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.haddr < 0:
            raise AhbError(f"negative address {self.haddr:#x}")
        if self.haddr % self.hsize.bytes != 0:
            raise AhbError(
                f"address {self.haddr:#x} is not aligned to HSIZE={self.hsize.name}"
            )
        object.__setattr__(self, "is_active", self.htrans._value_ >= 2)

    def idle(self) -> "AddressPhase":
        """A copy of this phase with the transfer type forced to IDLE."""
        return replace(self, htrans=HTrans.IDLE)

    @staticmethod
    def idle_phase(master_id: int) -> "AddressPhase":
        """The default IDLE phase for ``master_id``.

        Idle phases carry no per-cycle information, so one interned instance
        per master id is shared by every caller (the phase is frozen); this
        keeps parked-master cycles allocation-free on the engine hot path.
        """
        phase = _IDLE_PHASES.get(master_id)
        if phase is None:
            phase = AddressPhase(master_id=master_id, htrans=HTrans.IDLE)
            _IDLE_PHASES[master_id] = phase
        return phase


#: Interned idle phases, one per master id (see :meth:`AddressPhase.idle_phase`).
_IDLE_PHASES: dict[int, "AddressPhase"] = {}


@dataclass(frozen=True, slots=True)
class DataPhaseResult:
    """The response of the active slave for one data-phase cycle."""

    hready: bool = True
    hresp: HResp = HResp.OKAY
    hrdata: Optional[int] = None

    @staticmethod
    def okay(hrdata: Optional[int] = None) -> "DataPhaseResult":
        if hrdata is None:
            return _OKAY_RESULT
        return DataPhaseResult(hready=True, hresp=HResp.OKAY, hrdata=hrdata)

    @staticmethod
    def wait() -> "DataPhaseResult":
        """One wait state: HREADY low, response must be OKAY."""
        return _WAIT_RESULT

    @staticmethod
    def error_first_cycle() -> "DataPhaseResult":
        """First cycle of a two-cycle ERROR response (HREADY low)."""
        return _ERROR_FIRST_RESULT

    @staticmethod
    def error_second_cycle() -> "DataPhaseResult":
        """Second cycle of a two-cycle ERROR response (HREADY high)."""
        return _ERROR_SECOND_RESULT


#: Interned instances of the parameterless responses.  ``DataPhaseResult`` is
#: frozen, so sharing one object per shape is safe and keeps the idle-cycle
#: fast path allocation-free.
_OKAY_RESULT = DataPhaseResult(hready=True, hresp=HResp.OKAY, hrdata=None)
_WAIT_RESULT = DataPhaseResult(hready=False, hresp=HResp.OKAY, hrdata=None)
_ERROR_FIRST_RESULT = DataPhaseResult(hready=False, hresp=HResp.ERROR, hrdata=None)
_ERROR_SECOND_RESULT = DataPhaseResult(hready=True, hresp=HResp.ERROR, hrdata=None)


@dataclass(frozen=True, slots=True)
class MasterRequest:
    """Arbitration request signals driven by one master (HBUSREQx, HLOCKx)."""

    master_id: int
    hbusreq: bool = False
    hlock: bool = False


class BusCycleRecord:
    """Everything that happened on the bus in one target clock cycle.

    Used by the protocol monitor, the transaction recorder and the golden
    equivalence tests between the monolithic and split bus models.  Records
    are committed history, shared by reference between the record deque, the
    protocol monitor and checkpoint payloads; they are immutable by
    convention.  A hand-written ``__slots__`` class rather than a frozen
    dataclass: one record is built per committed cycle and the per-field
    ``object.__setattr__`` cost of frozen dataclass construction is
    measurable on the engine hot path.
    """

    __slots__ = (
        "cycle",
        "granted_master",
        "address_phase",
        "data_phase",
        "hwdata",
        "response",
        "requests",
    )

    def __init__(
        self,
        cycle: int,
        granted_master: int,
        address_phase: Optional[AddressPhase],
        data_phase: Optional[AddressPhase],
        hwdata: Optional[int],
        response: DataPhaseResult,
        requests: Optional[dict[int, bool]] = None,
    ) -> None:
        self.cycle = cycle
        self.granted_master = granted_master
        self.address_phase = address_phase
        self.data_phase = data_phase
        self.hwdata = hwdata
        self.response = response
        self.requests = {} if requests is None else requests

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BusCycleRecord(cycle={self.cycle}, granted_master={self.granted_master}, "
            f"address_phase={self.address_phase!r}, data_phase={self.data_phase!r}, "
            f"hwdata={self.hwdata!r}, response={self.response!r}, requests={self.requests!r})"
        )

    def key(self) -> tuple:
        """A hashable summary used for stream equivalence checks."""
        addr = self.address_phase
        data = self.data_phase
        return (
            self.cycle,
            self.granted_master,
            None if addr is None else (addr.master_id, addr.haddr, int(addr.htrans), addr.hwrite),
            None if data is None else (data.master_id, data.haddr, int(data.htrans), data.hwrite),
            self.hwdata,
            self.response.hready,
            int(self.response.hresp),
            self.response.hrdata,
        )


#: Words on the channel used to encode each MSABS group (used by the
#: packetizer and the channel-traffic accounting).  These match the paper's
#: observation that a single cycle's exchange does not exceed five words.
WORDS_PER_ADDRESS_PHASE = 2  # HADDR + packed control
WORDS_PER_WRITE_DATA = 1
WORDS_PER_RESPONSE = 1  # packed HREADY/HRESP (+ HSPLIT)
WORDS_PER_READ_DATA = 1
WORDS_PER_REQUEST_VECTOR = 1  # HBUSREQx bitmap (+ interrupts)
