"""AHB address decoding / memory map.

The decoder selects the active slave from the high-order address bits.  The
paper assumes the address map is statically defined, which (like the static
arbitration priority) removes the decoder output from the minimal set of
active bus signals: both verification domains hold an identical copy of the
map and recompute the selection locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


class DecodeError(ValueError):
    """Raised for malformed or overlapping address maps."""


@dataclass(frozen=True)
class AddressRegion:
    """A contiguous address region assigned to one slave."""

    base: int
    size: int
    slave_id: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.base < 0:
            raise DecodeError(f"negative base address {self.base:#x}")
        if self.size <= 0:
            raise DecodeError(f"region size must be positive, got {self.size}")

    @property
    def end(self) -> int:
        """First byte address after the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "AddressRegion") -> bool:
        return self.base < other.end and other.base < self.end


class AddressDecoder:
    """Maps byte addresses to slave identifiers.

    A ``default_slave_id`` may be supplied to receive accesses that hit no
    region (AHB requires a default slave that responds with ERROR to
    non-IDLE transfers); otherwise unmapped accesses raise
    :class:`DecodeError`.
    """

    def __init__(self, default_slave_id: Optional[int] = None) -> None:
        self.regions: List[AddressRegion] = []
        self.default_slave_id = default_slave_id
        # Flat (base, end, slave_id) tuples mirroring ``regions``: the decode
        # happens several times per target cycle, so ``select`` scans plain
        # ints instead of calling methods on region objects.
        self._spans: List[tuple[int, int, int]] = []

    def add_region(self, base: int, size: int, slave_id: int, name: str = "") -> AddressRegion:
        """Register a region; overlapping regions are rejected."""
        region = AddressRegion(base=base, size=size, slave_id=slave_id, name=name)
        for existing in self.regions:
            if existing.overlaps(region):
                raise DecodeError(
                    f"region {name or hex(base)} overlaps existing region "
                    f"{existing.name or hex(existing.base)}"
                )
        self.regions.append(region)
        self._spans.append((region.base, region.end, region.slave_id))
        return region

    def region_for(self, address: int) -> Optional[AddressRegion]:
        """Return the region containing ``address`` or None."""
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def select(self, address: int) -> int:
        """Return the slave id selected by ``address``."""
        for base, end, slave_id in self._spans:
            if base <= address < end:
                return slave_id
        if self.default_slave_id is not None:
            return self.default_slave_id
        raise DecodeError(f"address {address:#x} hits no region and no default slave is set")

    def slave_ids(self) -> List[int]:
        """All slave ids present in the map (excluding the default slave)."""
        return sorted({region.slave_id for region in self.regions})

    def copy(self) -> "AddressDecoder":
        """An independent decoder with the same map (for the second HBM)."""
        clone = AddressDecoder(default_slave_id=self.default_slave_id)
        clone.regions = list(self.regions)
        clone._spans = list(self._spans)
        return clone
