"""Burst address sequencing.

AHB bursts are the reason the paper can predict address/control signals: the
address either increments linearly or wraps within an aligned boundary, and
the control signals stay constant for the duration of the burst.  This module
generates and checks those sequences; it is used by bus masters (to drive
bursts), by the address/control predictor (to predict the remaining beats of
a burst from its first beat) and by the protocol monitor (to check SEQ beats).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from .signals import AhbError, HBurst, HSize


def beat_count(hburst: HBurst, requested_beats: int | None = None) -> int:
    """Number of beats in a burst.

    For fixed-length bursts the count comes from the burst type; for SINGLE it
    is one; for INCR (undefined length) the caller must supply
    ``requested_beats``.
    """
    fixed = hburst.beats
    if fixed is not None:
        return fixed
    if hburst is HBurst.INCR:
        if requested_beats is None or requested_beats < 1:
            raise AhbError("INCR bursts require an explicit positive beat count")
        return requested_beats
    raise AhbError(f"unsupported burst type {hburst!r}")


def wrap_boundary(start_addr: int, hburst: HBurst, hsize: HSize) -> tuple[int, int]:
    """Return the (low, high) byte addresses of the wrap window for a burst.

    Only meaningful for wrapping bursts; the window size is
    ``beats * transfer_size`` bytes and is aligned to its own size.
    """
    if not hburst.is_wrapping:
        raise AhbError(f"{hburst!r} is not a wrapping burst")
    window = hburst.beats * hsize.bytes
    low = (start_addr // window) * window
    return low, low + window


def next_beat_address(addr: int, hburst: HBurst, hsize: HSize, start_addr: int | None = None) -> int:
    """Compute the address of the beat following the beat at ``addr``.

    Incrementing bursts add the transfer size; wrapping bursts wrap at the
    window boundary computed from ``start_addr`` (defaults to ``addr``).
    """
    step = hsize.bytes
    if hburst.is_wrapping:
        low, high = wrap_boundary(start_addr if start_addr is not None else addr, hburst, hsize)
        nxt = addr + step
        if nxt >= high:
            nxt = low + (nxt - high)
        return nxt
    return addr + step


def burst_addresses(
    start_addr: int,
    hburst: HBurst,
    hsize: HSize,
    beats: int | None = None,
) -> List[int]:
    """Return the full list of beat addresses for a burst.

    Args:
        start_addr: address of the first beat (must be size-aligned).
        hburst: burst type.
        hsize: transfer size.
        beats: beat count, required for INCR bursts.
    """
    if start_addr % hsize.bytes != 0:
        raise AhbError(f"start address {start_addr:#x} not aligned to {hsize.name}")
    count = beat_count(hburst, beats)
    addresses = [start_addr]
    addr = start_addr
    for _ in range(count - 1):
        addr = next_beat_address(addr, hburst, hsize, start_addr)
        addresses.append(addr)
    return addresses


def iter_burst_addresses(
    start_addr: int,
    hburst: HBurst,
    hsize: HSize,
    beats: int | None = None,
) -> Iterator[int]:
    """Iterator variant of :func:`burst_addresses`."""
    return iter(burst_addresses(start_addr, hburst, hsize, beats))


@dataclass
class BurstTracker:
    """Tracks progress through a burst one accepted beat at a time.

    Masters use this to sequence SEQ beats; the address/control predictor
    uses an identical tracker to extrapolate the remaining beats of an
    observed burst (this is exactly why the paper classifies address and
    control signals as predictable).
    """

    start_addr: int
    hburst: HBurst
    hsize: HSize
    total_beats: int
    beats_done: int = 0
    #: Memoized address of the next beat (derived from the fields above;
    #: ``None`` forces recomputation, e.g. after ``from_snapshot``).
    _next_addr_cache: int | None = field(default=None, repr=False, compare=False)

    @classmethod
    def from_first_beat(
        cls,
        start_addr: int,
        hburst: HBurst,
        hsize: HSize,
        beats: int | None = None,
    ) -> "BurstTracker":
        return cls(
            start_addr=start_addr,
            hburst=hburst,
            hsize=hsize,
            total_beats=beat_count(hburst, beats),
        )

    @property
    def complete(self) -> bool:
        return self.beats_done >= self.total_beats

    @property
    def remaining_beats(self) -> int:
        return max(0, self.total_beats - self.beats_done)

    @property
    def current_address(self) -> int:
        """Address of the next beat to be issued."""
        if self.complete:
            raise AhbError("burst already complete")
        if self._next_addr_cache is None:
            addr = self.start_addr
            for _ in range(self.beats_done):
                addr = next_beat_address(addr, self.hburst, self.hsize, self.start_addr)
            self._next_addr_cache = addr
        return self._next_addr_cache

    @property
    def is_first_beat(self) -> bool:
        return self.beats_done == 0

    def accept_beat(self) -> int:
        """Record that the current beat's address phase was accepted.

        Returns the address of the accepted beat.
        """
        addr = self.current_address
        self.beats_done += 1
        self._next_addr_cache = (
            next_beat_address(addr, self.hburst, self.hsize, self.start_addr)
            if not self.complete
            else None
        )
        return addr

    def remaining_addresses(self) -> List[int]:
        """Addresses of all beats not yet accepted."""
        addresses = []
        addr = None
        for index in range(self.beats_done, self.total_beats):
            if addr is None:
                addr = self.start_addr
                for _ in range(index):
                    addr = next_beat_address(addr, self.hburst, self.hsize, self.start_addr)
            else:
                addr = next_beat_address(addr, self.hburst, self.hsize, self.start_addr)
            addresses.append(addr)
        return addresses

    def snapshot(self) -> dict:
        return {
            "start_addr": self.start_addr,
            "hburst": int(self.hburst),
            "hsize": int(self.hsize),
            "total_beats": self.total_beats,
            "beats_done": self.beats_done,
        }

    @classmethod
    def from_snapshot(cls, state: dict) -> "BurstTracker":
        return cls(
            start_addr=state["start_addr"],
            hburst=HBurst(state["hburst"]),
            hsize=HSize(state["hsize"]),
            total_beats=state["total_beats"],
            beats_done=state["beats_done"],
        )
