"""AHB protocol monitor.

A lightweight checker that observes :class:`~repro.ahb.signals.BusCycleRecord`
objects and flags protocol violations.  It is attached to both the monolithic
reference bus and the half bus models; the test suite asserts that no
violations are reported in any configuration, which guards against the split
co-emulated bus drifting away from legal AHB behaviour.

Checked invariants (a pragmatic subset of the specification):

* ``SEQ`` transfers continue the burst of the preceding active transfer by
  the same master, with the expected incremented/wrapped address.
* The first active transfer of a burst is ``NONSEQ``.
* When ``HREADY`` is low the address phase must be held stable.
* Wait-state responses carry ``HRESP == OKAY`` (except for the first cycle
  of a two-cycle ERROR/RETRY/SPLIT response).
* Only the granted master drives active transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .burst import next_beat_address
from .signals import AddressPhase, BusCycleRecord, HResp, HTrans


@dataclass
class ProtocolViolation:
    """A single detected protocol violation."""

    cycle: int
    rule: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"cycle {self.cycle}: [{self.rule}] {self.message}"


@dataclass
class AhbProtocolMonitor:
    """Streaming protocol checker over bus cycle records."""

    violations: List[ProtocolViolation] = field(default_factory=list)
    _previous: Optional[BusCycleRecord] = None
    _burst_start: Optional[AddressPhase] = None
    _last_accepted: Optional[AddressPhase] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def reset(self) -> None:
        self.violations.clear()
        self._previous = None
        self._burst_start = None
        self._last_accepted = None

    def snapshot(self) -> dict:
        """Snapshot for rollback support.

        The monitor is part of the leader domain's state: after a rollback the
        leader re-executes the committed prefix, and the monitor must compare
        those cycles against the pre-run-ahead history rather than against the
        discarded speculative cycles.
        """
        return {
            "n_violations": len(self.violations),
            "previous": self._previous,
            "burst_start": self._burst_start,
            "last_accepted": self._last_accepted,
        }

    def restore(self, state: dict) -> None:
        del self.violations[state["n_violations"]:]
        self._previous = state["previous"]
        self._burst_start = state["burst_start"]
        self._last_accepted = state["last_accepted"]

    def check(self, record: BusCycleRecord) -> None:
        """Check one bus cycle; violations accumulate in :attr:`violations`.

        The four rules (GRANT, RESP, STABLE, BURST) are inlined into one
        method: the monitor runs on every committed cycle of every half bus,
        so the per-rule dispatch overhead of separate methods is measurable
        on the engine hot path.
        """
        phase = record.address_phase
        response = record.response
        phase_active = phase is not None and phase.is_active

        # GRANT: only the granted master drives active transfers.
        if phase_active and phase.master_id != record.granted_master:
            self._flag(
                record,
                "GRANT",
                f"master {phase.master_id} drove an active transfer while master "
                f"{record.granted_master} was granted",
            )

        # RESP: HREADY low requires HRESP=OKAY, except for the first cycle of
        # a two-cycle ERROR/RETRY/SPLIT response inside an active data phase.
        if (
            not response.hready
            and response.hresp is not HResp.OKAY
            and not (record.data_phase is not None and record.data_phase.is_active)
        ):
            self._flag(
                record,
                "RESP",
                f"HREADY low with HRESP={response.hresp.name} outside an active data phase",
            )

        # STABLE: the address phase must be held while HREADY is low.
        previous = self._previous
        if previous is not None and not previous.response.hready:
            prev_phase = previous.address_phase
            if prev_phase is not None and prev_phase.is_active:
                if phase is None or (
                    phase.haddr != prev_phase.haddr
                    or phase.htrans != prev_phase.htrans
                    or phase.hwrite != prev_phase.hwrite
                ):
                    current_addr = "none" if phase is None else f"{phase.haddr:#x}"
                    self._flag(
                        record,
                        "STABLE",
                        "address phase changed while HREADY was low "
                        f"({prev_phase.haddr:#x} -> {current_addr})",
                    )

        # BURST: accepted transfers must follow the burst sequencing rules.
        if phase_active and response.hready:
            htrans = phase.htrans
            if htrans is HTrans.NONSEQ:
                self._burst_start = phase
                self._last_accepted = phase
            elif htrans is HTrans.SEQ:
                last = self._last_accepted
                start = self._burst_start
                if last is None or start is None:
                    self._flag(record, "BURST", "SEQ transfer without a preceding NONSEQ")
                elif phase.master_id != last.master_id:
                    self._flag(
                        record,
                        "BURST",
                        f"SEQ transfer by master {phase.master_id} continues a burst "
                        f"started by master {last.master_id}",
                    )
                else:
                    expected = next_beat_address(
                        last.haddr, start.hburst, start.hsize, start.haddr
                    )
                    if phase.haddr != expected:
                        self._flag(
                            record,
                            "BURST",
                            f"SEQ address {phase.haddr:#x} does not follow {last.haddr:#x} "
                            f"(expected {expected:#x})",
                        )
                    if phase.hburst != start.hburst or phase.hwrite != start.hwrite:
                        self._flag(record, "BURST", "burst control signals changed mid-burst")
                    self._last_accepted = phase

        self._previous = record

    def observe_idle_run(self, record: BusCycleRecord) -> None:
        """Adopt a run of idle cycles ending in ``record`` without re-checking.

        Used by the batch-stepping fast-forward path for stretches the engine
        has already proven quiescent (no active address/data phase, HREADY
        high, grant parked).  Under those preconditions every rule body in
        :meth:`check` provably falls through -- GRANT and BURST need an active
        phase, RESP needs HREADY low, STABLE needs the *previous* cycle's
        HREADY low (and the stretch is only entered from an HREADY-high
        cycle) -- so the only state transition is ``_previous`` advancing to
        the last record of the run.
        """
        self._previous = record

    def _flag(self, record: BusCycleRecord, rule: str, message: str) -> None:
        self.violations.append(ProtocolViolation(cycle=record.cycle, rule=rule, message=message))
