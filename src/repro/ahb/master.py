"""AHB bus masters.

A bus master requests the bus, drives address/control phases for the beats
of its transactions, supplies write data during write data phases and
collects read data during read data phases.

The central concrete implementation is :class:`TrafficMaster`, which executes
a queue of :class:`~repro.ahb.transaction.BusTransaction` objects.  Workload
generators (see :mod:`repro.workloads`) produce those queues.  Every master is
fully snapshotable so it can live in the leader domain and be rolled back.
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass
from typing import List, Optional

from ..sim.component import AbstractionLevel, ClockedComponent
from .burst import BurstTracker, next_beat_address
from .signals import AddressPhase, AhbError, DataPhaseResult, HResp, HTrans
from .transaction import BusTransaction, CompletedTransaction


class AhbMaster(ClockedComponent):
    """Interface every bus master implements.

    The bus calls these methods in a fixed per-cycle order:

    1. :meth:`drive_hbusreq` -- does the master want the bus?
    2. :meth:`drive_address_phase` -- address/control for this cycle
       (only the granted master's values reach the bus).
    3. :meth:`drive_hwdata` -- write data, called during the data phase of a
       write beat owned by this master.
    4. :meth:`on_address_accepted` -- the address phase presented this cycle
       was accepted (HREADY high).
    5. :meth:`on_data_phase_done` -- a data phase owned by this master
       finished (HREADY high), carrying the slave response / read data.

    Note on checkpointing: ``snapshot_copy_free`` is deliberately *not* set
    on this base class.  Each concrete master opts in individually once its
    payload has been audited against the fast-copy ownership contract; a new
    subclass written in the legacy aliasing style stays on the safe
    deep-copy path by default.
    """

    def __init__(self, name: str, master_id: int, level: AbstractionLevel = AbstractionLevel.TL) -> None:
        super().__init__(name)
        self.master_id = master_id
        self.level = level

    def evaluate(self, cycle: int) -> None:  # housekeeping hook; masters are bus-driven
        return

    @abstractmethod
    def drive_hbusreq(self, cycle: int) -> bool:
        """Return True if the master requests the bus this cycle."""

    @abstractmethod
    def drive_address_phase(self, cycle: int, granted: bool) -> AddressPhase:
        """Drive address/control for this cycle.

        Must return an IDLE phase when not granted or when there is nothing
        to transfer.  The same values must be returned on consecutive cycles
        until :meth:`on_address_accepted` is called (HREADY extension).
        """

    def drive_hwdata(self, address_phase: AddressPhase) -> int:
        """Write data for the data phase of ``address_phase`` (writes only)."""
        raise AhbError(f"master {self.name!r} was asked for write data it does not have")

    def on_address_accepted(self, cycle: int, address_phase: AddressPhase) -> None:
        """The address phase driven this cycle was accepted by the bus."""

    def on_data_phase_done(
        self, cycle: int, address_phase: AddressPhase, response: DataPhaseResult
    ) -> None:
        """A data phase owned by this master completed."""

    def activity_lookahead(self, cycle: int) -> float:
        """Earliest future cycle at which this master could start new bus
        activity (Chandy-Misra-Bryant lookahead for the sync gate).

        The base implementation is conservatively ``cycle + 1`` (no
        lookahead); workload-driven masters refine it from their queues.
        """
        return cycle + 1

    def next_activity_cycle(self, cycle: int) -> float:
        """Earliest cycle (>= ``cycle``) at which this master may *be* active.

        Unlike :meth:`activity_lookahead` -- which answers "when can my
        outputs next change?" for the sync gate and may legitimately return
        ``inf`` while a bus request is pending -- this is the quiescence
        horizon for the batch-stepping kernel: the first cycle at which the
        master may request the bus, own a burst, or carry an outstanding data
        phase.  Returning ``cycle`` means "possibly active right now" and
        disables fast-forwarding.  The base implementation is conservative.
        """
        return cycle

    def trace_signature(self, cycle: int, horizon: int) -> Optional[tuple]:
        """Structural state digest for the periodic trace cache.

        Two cycles with equal signatures must make identical *control*
        decisions (bus request, burst progress, phase shape) for the next
        ``horizon`` cycles given identical bus behaviour; data values are
        deliberately excluded (trace replay feeds them through the real
        calls).  ``None`` means this master's state cannot be digested, which
        disables trace replay for the whole topology.  The base
        implementation is conservative.
        """
        return None


class IdleMaster(AhbMaster):
    """A master that never requests the bus.

    Used as the default (parked) master and as a placeholder in domains that
    contain no local masters.
    """

    snapshot_copy_free = True  # stateless: the empty payload owns itself

    def drive_hbusreq(self, cycle: int) -> bool:
        return False

    def drive_address_phase(self, cycle: int, granted: bool) -> AddressPhase:
        return AddressPhase.idle_phase(self.master_id)

    def activity_lookahead(self, cycle: int) -> float:
        return float("inf")  # never requests the bus

    def next_activity_cycle(self, cycle: int) -> float:
        return float("inf")  # never active

    def trace_signature(self, cycle: int, horizon: int) -> Optional[tuple]:
        return ("idle",)  # stateless: any two cycles are interchangeable


@dataclass(slots=True)
class _OutstandingBeat:
    """A beat whose address phase was accepted and whose data phase is pending."""

    address_phase: AddressPhase
    beat_index: int
    transaction_index: int


@dataclass
class MasterStats:
    """Per-master activity counters."""

    transactions_issued: int = 0
    transactions_completed: int = 0
    beats_completed: int = 0
    wait_cycles: int = 0
    error_responses: int = 0

    def as_dict(self) -> dict:
        return {
            "transactions_issued": self.transactions_issued,
            "transactions_completed": self.transactions_completed,
            "beats_completed": self.beats_completed,
            "wait_cycles": self.wait_cycles,
            "error_responses": self.error_responses,
        }


class TrafficMaster(AhbMaster):
    """Executes a queue of :class:`BusTransaction` objects beat by beat."""

    #: Fast-copy snapshot protocol: payloads are owned (fresh containers +
    #: frozen ``AddressPhase`` references), never aliases of live state.
    snapshot_copy_free = True

    def __init__(
        self,
        name: str,
        master_id: int,
        transactions: Optional[List[BusTransaction]] = None,
        level: AbstractionLevel = AbstractionLevel.TL,
    ) -> None:
        super().__init__(name, master_id, level)
        self.queue: List[BusTransaction] = list(transactions or [])
        self.stats = MasterStats()
        # Mutable execution state (all snapshotable).
        self._next_txn_index = 0
        self._tracker: Optional[BurstTracker] = None
        self._active_txn_index: Optional[int] = None
        self._outstanding: List[_OutstandingBeat] = []
        self._read_data: dict[int, List[int]] = {}
        self._completed: List[CompletedTransaction] = []
        self._aborted_txns: set[int] = set()
        # Derived-only cache: the address phases of a transaction's beats are
        # fully determined by the (immutable) transaction, so they are built
        # once per transaction and shared across wait-state extensions and
        # post-rollback replays.  Not part of the snapshot (pure function of
        # the queue).
        self._txn_phases: dict[int, List[AddressPhase]] = {}

    # -- queue management ----------------------------------------------------
    def enqueue(self, transaction: BusTransaction) -> None:
        if transaction.master_id != self.master_id:
            raise AhbError(
                f"transaction for master {transaction.master_id} enqueued on master {self.master_id}"
            )
        self.queue.append(transaction)

    @property
    def completed_transactions(self) -> List[CompletedTransaction]:
        return self._completed

    @property
    def done(self) -> bool:
        """True when every queued transaction has completed (or aborted)."""
        return (
            self._next_txn_index >= len(self.queue)
            and self._tracker is None
            and not self._outstanding
        )

    # -- helpers ---------------------------------------------------------------
    def _current_txn(self) -> Optional[BusTransaction]:
        if self._active_txn_index is None:
            return None
        return self.queue[self._active_txn_index]

    def _ready_txn_available(self, cycle: int) -> bool:
        return (
            self._next_txn_index < len(self.queue)
            and self.queue[self._next_txn_index].issue_cycle <= cycle
        )

    def _start_next_txn(self) -> None:
        txn = self.queue[self._next_txn_index]
        self._active_txn_index = self._next_txn_index
        self._next_txn_index += 1
        self._tracker = BurstTracker.from_first_beat(
            start_addr=txn.address,
            hburst=txn.hburst,
            hsize=txn.hsize,
            beats=txn.n_beats,
        )
        self._read_data[self._active_txn_index] = []
        self.stats.transactions_issued += 1

    # -- AhbMaster interface ---------------------------------------------------
    def drive_hbusreq(self, cycle: int) -> bool:
        # Called once per master per cycle: _ready_txn_available and the
        # tracker.complete property are inlined.
        tracker = self._tracker
        if tracker is not None and tracker.beats_done < tracker.total_beats:
            return True
        index = self._next_txn_index
        queue = self.queue
        return index < len(queue) and queue[index].issue_cycle <= cycle

    def _beat_phases(self, txn_index: int) -> List[AddressPhase]:
        """The (frozen, shared) address phases of one transaction's beats."""
        phases = self._txn_phases.get(txn_index)
        if phases is None:
            txn = self.queue[txn_index]
            addr = txn.address
            phases = []
            for beat in range(txn.n_beats):
                phases.append(
                    AddressPhase(
                        master_id=self.master_id,
                        haddr=addr,
                        htrans=HTrans.NONSEQ if beat == 0 else HTrans.SEQ,
                        hwrite=txn.write,
                        hsize=txn.hsize,
                        hburst=txn.hburst,
                    )
                )
                addr = next_beat_address(addr, txn.hburst, txn.hsize, txn.address)
            self._txn_phases[txn_index] = phases
        return phases

    def drive_address_phase(self, cycle: int, granted: bool) -> AddressPhase:
        if not granted:
            return AddressPhase.idle_phase(self.master_id)
        tracker = self._tracker
        if tracker is None or tracker.complete:
            if tracker is not None and tracker.complete:
                self._tracker = None
            if not self._ready_txn_available(cycle):
                return AddressPhase.idle_phase(self.master_id)
            self._start_next_txn()
            tracker = self._tracker
        assert tracker is not None and self._active_txn_index is not None
        return self._beat_phases(self._active_txn_index)[tracker.beats_done]

    def activity_lookahead(self, cycle: int) -> float:
        if self._tracker is not None or self._outstanding:
            # Mid-burst / data phases in flight: outputs can change next
            # cycle (those changes are caught by change detection anyway).
            return cycle + 1
        index = self._next_txn_index
        queue = self.queue
        if index < len(queue):
            issue = queue[index].issue_cycle
            if issue <= cycle:
                # The bus request is already raised and visible to every
                # peer; the next output change (the address phase once the
                # arbiter grants us) is derivable from shared state and is
                # broadcast by change detection when it happens.  Until then
                # the outputs are provably stable.
                return float("inf")
            return issue
        return float("inf")

    def next_activity_cycle(self, cycle: int) -> float:
        if self._tracker is not None or self._outstanding:
            return cycle  # burst in progress / data phases in flight
        index = self._next_txn_index
        queue = self.queue
        if index < len(queue):
            issue = queue[index].issue_cycle
            return cycle if issue <= cycle else issue
        return float("inf")  # drained

    def trace_signature(self, cycle: int, horizon: int) -> Optional[tuple]:
        """Structural digest: burst FSM + queue position, with *relative*
        transaction indices and the next-issue delay clamped to ``horizon``
        (anything further away cannot influence the next ``horizon`` cycles).
        Addresses and data words are excluded on purpose: replay re-executes
        the real master/slave calls, so only the control shape must recur.
        """
        tracker = self._tracker
        next_index = self._next_txn_index
        queue = self.queue
        if next_index < len(queue):
            delta = queue[next_index].issue_cycle - cycle
            if delta < 0:
                delta = 0
            elif delta > horizon:
                delta = horizon
        else:
            delta = -1  # drained: no future issue
        active = self._active_txn_index
        return (
            None if tracker is None else (tracker.beats_done, tracker.total_beats),
            tuple(
                (beat.beat_index, beat.transaction_index - next_index)
                for beat in self._outstanding
            ),
            None if active is None else active - next_index,
            delta,
        )

    def on_address_accepted(self, cycle: int, address_phase: AddressPhase) -> None:
        tracker = self._tracker
        if tracker is None or self._active_txn_index is None:
            raise AhbError(f"master {self.name!r}: address accepted with no burst in progress")
        beat_index = tracker.beats_done
        # Inlined tracker.accept_beat() minus the address bookkeeping: the
        # beat addresses come from the precomputed per-transaction phase list,
        # so the tracker only has to count beats (current_address recomputes
        # lazily if anything else asks for it).
        tracker.beats_done = beat_index + 1
        tracker._next_addr_cache = None
        self._outstanding.append(
            _OutstandingBeat(
                address_phase=address_phase,
                beat_index=beat_index,
                transaction_index=self._active_txn_index,
            )
        )
        if tracker.beats_done >= tracker.total_beats:
            self._tracker = None
            self._active_txn_index = None

    def drive_hwdata(self, address_phase: AddressPhase) -> int:
        beat = self._find_outstanding(address_phase)
        txn = self.queue[beat.transaction_index]
        if not txn.write:
            raise AhbError(f"master {self.name!r}: write data requested for a read beat")
        return txn.data[beat.beat_index]

    def on_data_phase_done(
        self, cycle: int, address_phase: AddressPhase, response: DataPhaseResult
    ) -> None:
        # Fused find-and-remove with an identity fast path (the data-phase
        # register holds the exact interned phase object that was driven).
        outstanding = self._outstanding
        beat = None
        for index, candidate in enumerate(outstanding):
            if candidate.address_phase is address_phase:
                beat = candidate
                del outstanding[index]
                break
        if beat is None:
            beat = self._find_outstanding(address_phase)
            outstanding.remove(beat)
        txn = self.queue[beat.transaction_index]
        self.stats.beats_completed += 1
        if response.hresp is not HResp.OKAY:
            self.stats.error_responses += 1
            self._aborted_txns.add(beat.transaction_index)
        if not txn.write and response.hrdata is not None:
            read_buffer = self._read_data.get(beat.transaction_index)
            if read_buffer is None:
                read_buffer = self._read_data[beat.transaction_index] = []
            read_buffer.append(response.hrdata)
        if beat.beat_index + 1 == txn.n_beats:
            self._finish_txn(cycle, beat.transaction_index)

    def _finish_txn(self, cycle: int, txn_index: int) -> None:
        txn = self.queue[txn_index]
        data = list(txn.data) if txn.write else list(self._read_data.get(txn_index, []))
        # The read buffer is only needed while the transaction is in flight;
        # dropping it here keeps snapshot size proportional to outstanding
        # work instead of to the total transactions ever issued.
        self._read_data.pop(txn_index, None)
        self._completed.append(
            CompletedTransaction(
                master_id=self.master_id,
                address=txn.address,
                write=txn.write,
                hburst=txn.hburst,
                hsize=txn.hsize,
                data=data,
                start_cycle=txn.issue_cycle,
                end_cycle=cycle,
                responses=[
                    HResp.ERROR if txn_index in self._aborted_txns else HResp.OKAY
                ],
            )
        )
        self.stats.transactions_completed += 1

    def _find_outstanding(self, address_phase: AddressPhase) -> _OutstandingBeat:
        # Identity hit first: phases are interned per transaction beat, so the
        # accepted phase object is normally the exact object driven earlier.
        for beat in self._outstanding:
            if beat.address_phase is address_phase:
                return beat
        for beat in self._outstanding:
            if beat.address_phase == address_phase:
                return beat
        # Fall back to address matching (the phase object may have been
        # reconstructed on the remote side of the channel).
        for beat in self._outstanding:
            if (
                beat.address_phase.haddr == address_phase.haddr
                and beat.address_phase.hwrite == address_phase.hwrite
            ):
                return beat
        raise AhbError(
            f"master {self.name!r}: no outstanding beat matches address "
            f"{address_phase.haddr:#x}"
        )

    # -- rollback support -------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Owned payload: ``AddressPhase`` objects are frozen and stored by
        reference, everything else lives in freshly built containers."""
        return {
            "next_txn_index": self._next_txn_index,
            "active_txn_index": self._active_txn_index,
            "tracker": None if self._tracker is None else self._tracker.snapshot(),
            "outstanding": [
                (b.address_phase, b.beat_index, b.transaction_index)
                for b in self._outstanding
            ],
            "read_data": {k: list(v) for k, v in self._read_data.items()},
            "n_completed": len(self._completed),
            "aborted": sorted(self._aborted_txns),
            "stats": self.stats.as_dict(),
        }

    def restore_state(self, state: dict) -> None:
        self._next_txn_index = state["next_txn_index"]
        self._active_txn_index = state["active_txn_index"]
        self._tracker = (
            None if state["tracker"] is None else BurstTracker.from_snapshot(state["tracker"])
        )
        self._outstanding = [
            _OutstandingBeat(
                address_phase=phase,
                beat_index=beat_index,
                transaction_index=txn_index,
            )
            for phase, beat_index, txn_index in state["outstanding"]
        ]
        self._read_data = {k: list(v) for k, v in state["read_data"].items()}
        del self._completed[state["n_completed"]:]
        self._aborted_txns = set(state["aborted"])
        stats = state["stats"]
        self.stats = MasterStats(**stats)

    def reset(self) -> None:
        super().reset()
        self._next_txn_index = 0
        self._tracker = None
        self._active_txn_index = None
        self._outstanding.clear()
        self._read_data.clear()
        self._completed.clear()
        self._aborted_txns.clear()
        self.stats = MasterStats()
