"""RTL block bookkeeping for the emulated accelerator.

The paper's accelerator (iPROVE) maps RTL sub-blocks of the SoC into FPGA
hardware; the remaining transaction-level blocks stay in the software
simulator.  The reproduction has no FPGA, so RTL blocks are ordinary Python
components marked :class:`~repro.sim.component.AbstractionLevel.RTL` -- but
the accelerator substrate still tracks, for each mapped block, the kind of
information a real emulator needs: an estimated gate count (capacity
planning), a register count (contributing to the rollback-variable budget)
and per-block activity counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ahb.master import AhbMaster
from ..ahb.slave import FifoPeripheralSlave, MemorySlave
from ..sim.component import AbstractionLevel, ClockedComponent


#: Very rough synthesis-cost heuristics (gates per element) used to size the
#: emulated FPGA.  The absolute values do not matter for any experiment; they
#: only have to produce plausible, monotone capacity numbers.
GATES_PER_MEMORY_BIT = 1.5
GATES_PER_FIFO_ENTRY = 400
GATES_PER_MASTER = 12_000
GATES_PER_GENERIC_BLOCK = 5_000
REGISTERS_PER_MASTER = 96
REGISTERS_PER_FIFO_ENTRY = 33
REGISTERS_PER_GENERIC_BLOCK = 64


@dataclass
class RtlBlockInfo:
    """Mapping record of one RTL block hosted by the accelerator."""

    component: ClockedComponent
    gate_estimate: int
    register_estimate: int
    cycles_emulated: int = 0

    @property
    def name(self) -> str:
        return self.component.name


def estimate_gates(component: ClockedComponent) -> int:
    """Heuristic gate count for one component."""
    if isinstance(component, MemorySlave):
        return int(component.size_bytes * 8 * GATES_PER_MEMORY_BIT)
    if isinstance(component, FifoPeripheralSlave):
        return int(component.depth * GATES_PER_FIFO_ENTRY)
    if isinstance(component, AhbMaster):
        return GATES_PER_MASTER
    return GATES_PER_GENERIC_BLOCK


def estimate_registers(component: ClockedComponent) -> int:
    """Heuristic register (flip-flop) count for one component.

    Registers are what the accelerator must shadow to support the
    ``rb_store`` / ``rb_restore`` operations, so this feeds the rollback
    variable budget.
    """
    if isinstance(component, MemorySlave):
        # Memory contents are stored in block RAM; the rollback snapshot of a
        # memory is handled word-wise by the component itself.
        return int(component.size_bytes // 4)
    if isinstance(component, FifoPeripheralSlave):
        return int(component.depth * REGISTERS_PER_FIFO_ENTRY)
    if isinstance(component, AhbMaster):
        return REGISTERS_PER_MASTER
    return REGISTERS_PER_GENERIC_BLOCK


@dataclass
class RtlBlockRegistry:
    """All RTL blocks mapped onto one accelerator."""

    blocks: List[RtlBlockInfo] = field(default_factory=list)

    def register(self, component: ClockedComponent) -> RtlBlockInfo:
        info = RtlBlockInfo(
            component=component,
            gate_estimate=estimate_gates(component),
            register_estimate=estimate_registers(component),
        )
        self.blocks.append(info)
        return info

    def register_all(self, components) -> None:
        for component in components:
            if getattr(component, "level", AbstractionLevel.TL) is AbstractionLevel.RTL:
                self.register(component)

    @property
    def total_gates(self) -> int:
        return sum(block.gate_estimate for block in self.blocks)

    @property
    def total_registers(self) -> int:
        return sum(block.register_estimate for block in self.blocks)

    def tick_all(self, cycles: int = 1) -> None:
        for block in self.blocks:
            block.cycles_emulated += cycles

    def utilisation(self, capacity_gates: int) -> float:
        if capacity_gates <= 0:
            return float("inf")
        return self.total_gates / capacity_gates

    def by_name(self, name: str) -> Optional[RtlBlockInfo]:
        for block in self.blocks:
            if block.name == name:
                return block
        return None

    def as_dict(self) -> Dict[str, dict]:
        return {
            block.name: {
                "gates": block.gate_estimate,
                "registers": block.register_estimate,
                "cycles_emulated": block.cycles_emulated,
            }
            for block in self.blocks
        }
