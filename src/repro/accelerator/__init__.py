"""The emulated simulation accelerator (substitute for the paper's iPROVE)."""

from .emulator import AcceleratorError, AcceleratorSpec, EmulatedAccelerator
from .rtl_block import (
    RtlBlockInfo,
    RtlBlockRegistry,
    estimate_gates,
    estimate_registers,
)

__all__ = [
    "AcceleratorError",
    "AcceleratorSpec",
    "EmulatedAccelerator",
    "RtlBlockInfo",
    "RtlBlockRegistry",
    "estimate_gates",
    "estimate_registers",
]
