"""The emulated simulation accelerator.

This is the substitution for the paper's PCI-attached iPROVE accelerator: a
software model of an FPGA-based cycle emulator.  It owns the accelerator-
domain half bus model, tracks the RTL blocks mapped onto it, models its clock
rating (cycles per second -- constant regardless of design size, as the paper
notes for hardware accelerators) and provides the hardware-side state
store/restore used for rollback.

The co-emulation engines in :mod:`repro.core` operate on
:class:`~repro.core.domain.DomainHost` objects; :class:`EmulatedAccelerator`
is a thin, inspectable wrapper that produces the accelerator-side host
configuration and capacity report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ahb.half_bus import HalfBusModel
from ..core.topology import DomainKind, Topology
from ..sim.checkpoint import ACCELERATOR_STATE_COSTS, StateCostModel
from ..sim.component import Domain
from ..sim.time_model import DEFAULT_ACCELERATOR_SPEED, DomainSpeed
from .rtl_block import RtlBlockRegistry


class AcceleratorError(RuntimeError):
    """Raised for invalid accelerator configuration (capacity exceeded)."""


@dataclass(frozen=True)
class AcceleratorSpec:
    """Static description of the emulated accelerator hardware.

    Attributes:
        cycles_per_second: emulation clock rating.  The paper uses
            10 Mcycles/s and notes it is independent of design size.
        capacity_gates: usable logic capacity.  Exceeding it raises an error
            when the design is mapped, mirroring a real emulator flow.
        state_costs: per-variable store/restore cost of the hardware
            checkpointing mechanism (shadow registers / on-board copy).
    """

    cycles_per_second: float = DEFAULT_ACCELERATOR_SPEED.cycles_per_second
    capacity_gates: int = 5_000_000
    state_costs: StateCostModel = ACCELERATOR_STATE_COSTS

    @property
    def speed(self) -> DomainSpeed:
        return DomainSpeed(self.cycles_per_second)


@dataclass
class EmulatedAccelerator:
    """An accelerator instance with a mapped accelerator-domain half bus."""

    spec: AcceleratorSpec = field(default_factory=AcceleratorSpec)
    hbm: Optional[HalfBusModel] = None
    blocks: RtlBlockRegistry = field(default_factory=RtlBlockRegistry)

    def map_design(
        self,
        hbm: HalfBusModel,
        domain: Optional[Domain] = None,
        topology: Optional[Topology] = None,
    ) -> "EmulatedAccelerator":
        """Map an accelerator-domain half bus (and its RTL blocks) onto the
        emulator, checking capacity.

        ``domain`` pins this emulator to one accelerator domain of a
        multi-domain topology (one :class:`EmulatedAccelerator` instance per
        farm member).  Pass the ``topology`` to have the domain's declared
        *kind* checked too -- the half bus alone only carries the id, so
        without it the guard can only reject the canonical simulator domain.
        """
        if domain is not None and hbm.domain != Domain(domain):
            raise AcceleratorError(
                f"this accelerator emulates domain {Domain(domain).value!r} but the "
                f"half bus belongs to {hbm.domain.value!r}"
            )
        if topology is not None and (
            topology.spec_for(hbm.domain).kind is not DomainKind.ACCELERATOR
        ):
            raise AcceleratorError(
                f"domain {hbm.domain.value!r} is declared kind="
                f"{topology.spec_for(hbm.domain).kind.value!r}; only accelerator-kind "
                "domains can be mapped onto the accelerator"
            )
        if hbm.domain is Domain.SIMULATOR:
            raise AcceleratorError(
                "only an accelerator-domain half bus can be mapped onto the accelerator"
            )
        self.hbm = hbm
        self.blocks = RtlBlockRegistry()
        self.blocks.register_all(hbm.local_components())
        if self.blocks.total_gates > self.spec.capacity_gates:
            raise AcceleratorError(
                f"design needs ~{self.blocks.total_gates} gates but the accelerator "
                f"only offers {self.spec.capacity_gates}"
            )
        return self

    # -- reporting -----------------------------------------------------------------
    @property
    def utilisation(self) -> float:
        """Fraction of the logic capacity used by the mapped design."""
        return self.blocks.utilisation(self.spec.capacity_gates)

    def rollback_register_estimate(self) -> int:
        """Registers the hardware must shadow for ``rb_store``/``rb_restore``."""
        return self.blocks.total_registers

    def capacity_report(self) -> dict:
        return {
            "cycles_per_second": self.spec.cycles_per_second,
            "capacity_gates": self.spec.capacity_gates,
            "used_gates": self.blocks.total_gates,
            "utilisation": self.utilisation,
            "rollback_registers": self.rollback_register_estimate(),
            "blocks": self.blocks.as_dict(),
        }
