"""Channel traffic accounting.

Every channel access performed by either synchronisation scheme is recorded
here.  The statistics are the primary *measured* quantity of the
reproduction's mechanism-level experiments: the optimistic scheme's whole
point is to reduce the number of channel accesses (and therefore the total
startup overhead paid) for the same number of target cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .phy import ChannelDirection, ChannelTimingParams


@dataclass
class ChannelAccessRecord:
    """One channel access (a single startup-overhead payment)."""

    index: int
    direction: ChannelDirection
    words: int
    purpose: str
    target_cycle: int
    time: float


@dataclass
class FaultStats:
    """Fault-injection and reliability-layer counters for one link.

    ``attempts`` counts wire transmissions (including retransmissions and
    duplicate copies are counted separately); the time fields hold modelled
    seconds spent on top of the ideal access costs, so the ideal
    :class:`ChannelStats` arithmetic (startup vs payload split) stays exact.
    """

    attempts: int = 0
    drops: int = 0
    corruptions: int = 0
    duplicates: int = 0
    duplicates_suppressed: int = 0
    reorder_events: int = 0
    max_reorder_depth: int = 0
    retransmissions: int = 0
    rto_events: int = 0
    buffer_overflows: int = 0
    ack_losses: int = 0
    jitter_time: float = 0.0
    rto_wait_time: float = 0.0
    reorder_wait_time: float = 0.0

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "drops": self.drops,
            "corruptions": self.corruptions,
            "duplicates": self.duplicates,
            "duplicates_suppressed": self.duplicates_suppressed,
            "reorder_events": self.reorder_events,
            "max_reorder_depth": self.max_reorder_depth,
            "retransmissions": self.retransmissions,
            "rto_events": self.rto_events,
            "buffer_overflows": self.buffer_overflows,
            "ack_losses": self.ack_losses,
            "jitter_time": self.jitter_time,
            "rto_wait_time": self.rto_wait_time,
            "reorder_wait_time": self.reorder_wait_time,
        }

    def merge(self, other: "FaultStats") -> None:
        self.attempts += other.attempts
        self.drops += other.drops
        self.corruptions += other.corruptions
        self.duplicates += other.duplicates
        self.duplicates_suppressed += other.duplicates_suppressed
        self.reorder_events += other.reorder_events
        self.max_reorder_depth = max(self.max_reorder_depth, other.max_reorder_depth)
        self.retransmissions += other.retransmissions
        self.rto_events += other.rto_events
        self.buffer_overflows += other.buffer_overflows
        self.ack_losses += other.ack_losses
        self.jitter_time += other.jitter_time
        self.rto_wait_time += other.rto_wait_time
        self.reorder_wait_time += other.reorder_wait_time

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0.0 if isinstance(getattr(self, name), float) else 0)


@dataclass
class ChannelStats:
    """Aggregated channel traffic counters."""

    params: ChannelTimingParams
    accesses: int = 0
    words: int = 0
    total_time: float = 0.0
    per_direction_accesses: Dict[ChannelDirection, int] = field(
        default_factory=lambda: {d: 0 for d in ChannelDirection}
    )
    per_direction_words: Dict[ChannelDirection, int] = field(
        default_factory=lambda: {d: 0 for d in ChannelDirection}
    )
    per_purpose_accesses: Dict[str, int] = field(default_factory=dict)
    log: List[ChannelAccessRecord] = field(default_factory=list)
    keep_log: bool = True
    #: Fault/reliability counters; ``None`` on an ideal channel, so ideal
    #: stats dicts (and the record digests derived from them) are unchanged.
    faults: Optional[FaultStats] = None

    def record_access(
        self,
        direction: ChannelDirection,
        words: int,
        purpose: str = "",
        target_cycle: int = -1,
    ) -> float:
        """Account one access; returns the modelled time it took."""
        time = self.params.access_time(direction, words)
        self.accesses += 1
        self.words += words
        self.total_time += time
        self.per_direction_accesses[direction] += 1
        self.per_direction_words[direction] += words
        self.per_purpose_accesses[purpose] = self.per_purpose_accesses.get(purpose, 0) + 1
        if self.keep_log:
            self.log.append(
                ChannelAccessRecord(
                    index=self.accesses - 1,
                    direction=direction,
                    words=words,
                    purpose=purpose,
                    target_cycle=target_cycle,
                    time=time,
                )
            )
        return time

    # -- derived metrics ------------------------------------------------------
    @property
    def startup_time(self) -> float:
        """Portion of the total time that is pure startup overhead."""
        return self.accesses * self.params.startup_overhead

    @property
    def payload_time(self) -> float:
        return self.total_time - self.startup_time

    def words_per_access(self) -> float:
        return self.words / self.accesses if self.accesses else 0.0

    def accesses_per_cycle(self, committed_cycles: int) -> float:
        return self.accesses / committed_cycles if committed_cycles else 0.0

    def time_per_cycle(self, committed_cycles: int) -> float:
        return self.total_time / committed_cycles if committed_cycles else 0.0

    def as_dict(self) -> dict:
        result = {
            "accesses": self.accesses,
            "words": self.words,
            "total_time": self.total_time,
            "startup_time": self.startup_time,
            "payload_time": self.payload_time,
            "words_per_access": self.words_per_access(),
            "sim_to_acc_accesses": self.per_direction_accesses[ChannelDirection.SIM_TO_ACC],
            "acc_to_sim_accesses": self.per_direction_accesses[ChannelDirection.ACC_TO_SIM],
            "per_purpose": dict(self.per_purpose_accesses),
        }
        if self.faults is not None:
            result["faults"] = self.faults.as_dict()
        return result

    def reset(self) -> None:
        self.accesses = 0
        self.words = 0
        self.total_time = 0.0
        self.per_direction_accesses = {d: 0 for d in ChannelDirection}
        self.per_direction_words = {d: 0 for d in ChannelDirection}
        self.per_purpose_accesses = {}
        self.log.clear()
        if self.faults is not None:
            self.faults.reset()


def compare_traffic(
    baseline: ChannelStats, optimized: ChannelStats, committed_cycles: Optional[int] = None
) -> dict:
    """Summarise the traffic reduction of ``optimized`` relative to ``baseline``."""
    result = {
        "baseline_accesses": baseline.accesses,
        "optimized_accesses": optimized.accesses,
        "access_reduction": (
            1.0 - optimized.accesses / baseline.accesses if baseline.accesses else 0.0
        ),
        "baseline_time": baseline.total_time,
        "optimized_time": optimized.total_time,
        "time_reduction": (
            1.0 - optimized.total_time / baseline.total_time if baseline.total_time else 0.0
        ),
        "baseline_words_per_access": baseline.words_per_access(),
        "optimized_words_per_access": optimized.words_per_access(),
    }
    if committed_cycles:
        result["baseline_accesses_per_cycle"] = baseline.accesses_per_cycle(committed_cycles)
        result["optimized_accesses_per_cycle"] = optimized.accesses_per_cycle(committed_cycles)
    return result
