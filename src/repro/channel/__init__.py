"""Simulator-accelerator channel substrate: timing model, packetizing,
message transport and traffic accounting."""

from .driver import ChannelError, ChannelMessage, LayerTimes, SimulatorAcceleratorChannel
from .packet import BoundaryPacketizer, CycleRecordPacket, PacketError
from .phy import (
    ChannelDirection,
    ChannelLayerBreakdown,
    ChannelTimingParams,
    FAST_CHANNEL,
    IPROVE_PCI_CHANNEL,
    ZERO_OVERHEAD_CHANNEL,
)
from .stats import ChannelAccessRecord, ChannelStats, compare_traffic

__all__ = [
    "BoundaryPacketizer",
    "ChannelAccessRecord",
    "ChannelDirection",
    "ChannelError",
    "ChannelLayerBreakdown",
    "ChannelMessage",
    "ChannelStats",
    "ChannelTimingParams",
    "CycleRecordPacket",
    "FAST_CHANNEL",
    "IPROVE_PCI_CHANNEL",
    "LayerTimes",
    "PacketError",
    "SimulatorAcceleratorChannel",
    "ZERO_OVERHEAD_CHANNEL",
    "compare_traffic",
]
