"""Simulator-accelerator channel substrate: timing model, packetizing,
message transport, traffic accounting, fault injection and reliability."""

from .driver import (
    ChannelEndpoint,
    ChannelError,
    ChannelMessage,
    LayerTimes,
    SimulatorAcceleratorChannel,
)
from .faults import (
    ChannelDegradedError,
    ChannelFaultConfig,
    ChannelFaultConfigError,
    ChannelFaultInjector,
    FaultyChannelEndpoint,
    WireFate,
    frame_checksum,
)
from .packet import BoundaryPacketizer, CycleRecordPacket, PacketError
from .phy import (
    ChannelDirection,
    ChannelLayerBreakdown,
    ChannelTimingParams,
    FAST_CHANNEL,
    IPROVE_PCI_CHANNEL,
    ZERO_OVERHEAD_CHANNEL,
)
from .reliability import ReliableStream, SelectiveRepeatLink, StreamReport
from .stats import ChannelAccessRecord, ChannelStats, FaultStats, compare_traffic

__all__ = [
    "BoundaryPacketizer",
    "ChannelAccessRecord",
    "ChannelDegradedError",
    "ChannelDirection",
    "ChannelEndpoint",
    "ChannelError",
    "ChannelFaultConfig",
    "ChannelFaultConfigError",
    "ChannelFaultInjector",
    "ChannelLayerBreakdown",
    "ChannelMessage",
    "ChannelStats",
    "ChannelTimingParams",
    "CycleRecordPacket",
    "FAST_CHANNEL",
    "FaultStats",
    "FaultyChannelEndpoint",
    "IPROVE_PCI_CHANNEL",
    "LayerTimes",
    "PacketError",
    "ReliableStream",
    "SelectiveRepeatLink",
    "SimulatorAcceleratorChannel",
    "StreamReport",
    "WireFate",
    "ZERO_OVERHEAD_CHANNEL",
    "compare_traffic",
    "frame_checksum",
]
