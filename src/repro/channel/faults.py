"""Pluggable channel fault models.

The layered channel of :mod:`repro.channel.driver` is *ideal*: every access
succeeds, in order, at exactly the modelled cost.  Real simulator-accelerator
links are not -- they drop, duplicate, reorder, corrupt and jitter.  This
module makes those imperfections a first-class, seeded, reproducible axis:

* :class:`ChannelFaultConfig` -- one serialisable blob describing every fault
  knob plus the reliability-protocol parameters (window, RTO, give-up
  threshold).  It travels on a :class:`~repro.orchestration.request.
  RunRequest`, so a degraded-link run is exactly as reproducible as an ideal
  one.
* :class:`FaultModel` implementations -- :class:`LossModel` (i.i.d. and
  Gilbert-Elliott burst loss), :class:`ReorderModel`, :class:`DuplicateModel`,
  :class:`CorruptionModel` (checksum-detectable bit flips),
  :class:`JitterModel` and :class:`BoundedBufferModel` -- composed by a
  :class:`ChannelFaultInjector` that draws every decision from one seeded
  ``random.Random`` stream, so the same seed always produces the same fault
  schedule.
* :class:`FaultyChannelEndpoint` -- a byte-level wrapper around the existing
  :class:`~repro.channel.driver.ChannelEndpoint` message transport that
  applies the drawn fate to real queued messages.  The ideal path is
  byte-untouched: nothing in the ideal channel imports or consults this
  module.

The engines do not ship bytes through the endpoint (boundary values travel
in-process; only modelled cost matters), so their integration point is the
modelled :class:`~repro.channel.reliability.SelectiveRepeatLink`, which
consumes the same injector.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Protocol

from .driver import ChannelEndpoint, ChannelError, ChannelMessage
from .phy import ChannelDirection
from .stats import FaultStats


class ChannelFaultConfigError(ValueError):
    """Raised on an invalid or unknown fault configuration."""


class ChannelDegradedError(ChannelError):
    """The reliability layer gave up on a message (link too degraded).

    Raised instead of hanging when one message exhausts the configured
    retransmission budget.  Structured so orchestrators and services can
    report *where* the link failed, not just that it did.
    """

    def __init__(
        self,
        *,
        direction: ChannelDirection,
        purpose: str,
        target_cycle: int,
        attempts: int,
        limit: int,
        elapsed: float,
    ) -> None:
        self.direction = direction
        self.purpose = purpose
        self.target_cycle = target_cycle
        self.attempts = attempts
        self.limit = limit
        self.elapsed = elapsed
        super().__init__(
            f"channel degraded: gave up on {purpose or 'message'!r} in direction "
            f"{direction.value} at target cycle {target_cycle} after {attempts} "
            f"attempt(s) (give-up threshold {limit}, {elapsed:.2e}s modelled time spent)"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "direction": self.direction.value,
            "purpose": self.purpose,
            "target_cycle": self.target_cycle,
            "attempts": self.attempts,
            "limit": self.limit,
            "elapsed": self.elapsed,
        }


@dataclass(frozen=True)
class ChannelFaultConfig:
    """Every knob of an imperfect channel, as one serialisable value.

    Fault shapes (all probabilities per transmitted frame):

    Attributes:
        loss_rate: i.i.d. probability that a frame vanishes on the wire (the
            Gilbert-Elliott *good*-state loss probability when burst loss is
            enabled).
        burst_loss_rate: loss probability while the Gilbert-Elliott chain is
            in its *bad* state; ``None`` disables the chain (pure i.i.d.).
        burst_enter: P(good -> bad) per frame.
        burst_exit: P(bad -> good) per frame.
        reorder_rate: probability a delivered frame arrives late, behind up
            to ``reorder_depth`` younger frames.
        reorder_depth: maximum number of frames an affected frame falls behind.
        duplicate_rate: probability the wire delivers an extra copy.
        corruption_rate: probability of a checksum-detectable bit flip.
        jitter_mean / jitter_spread: extra per-frame latency in seconds;
            each frame pays ``jitter_mean + U[0, jitter_spread)``.
        buffer_capacity: finite receive-buffer depth (out-of-order plus
            duplicate frames beyond it overflow and are dropped, applying
            backpressure as retransmissions); ``None`` models an unbounded
            buffer.

    Reliability-protocol parameters (the selective-repeat layer):

    Attributes:
        window: selective-repeat window size in frames.
        max_attempts: give-up threshold -- transmission attempts per frame
            before :class:`ChannelDegradedError` is raised.
        base_rto: initial retransmission timeout in seconds.
        rto_backoff: multiplicative RTO back-off per timeout.
        max_rto: RTO ceiling in seconds.
        frame_overhead_words: sequencing/checksum words added per data frame.
        ack_words: size of a SACK feedback frame in words.
        seed: fault-schedule seed, folded with the run seed so every
            :class:`~repro.orchestration.request.RunRequest` reproduces its
            exact fault schedule.
    """

    loss_rate: float = 0.0
    burst_loss_rate: Optional[float] = None
    burst_enter: float = 0.02
    burst_exit: float = 0.25
    reorder_rate: float = 0.0
    reorder_depth: int = 3
    duplicate_rate: float = 0.0
    corruption_rate: float = 0.0
    jitter_mean: float = 0.0
    jitter_spread: float = 0.0
    buffer_capacity: Optional[int] = None
    window: int = 32
    max_attempts: int = 8
    base_rto: float = 100e-6
    rto_backoff: float = 2.0
    max_rto: float = 10e-3
    frame_overhead_words: int = 2
    ack_words: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "loss_rate",
            "burst_enter",
            "burst_exit",
            "reorder_rate",
            "duplicate_rate",
            "corruption_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ChannelFaultConfigError(f"{name} must be within [0, 1], got {value}")
        if self.burst_loss_rate is not None and not 0.0 <= self.burst_loss_rate <= 1.0:
            raise ChannelFaultConfigError(
                f"burst_loss_rate must be within [0, 1], got {self.burst_loss_rate}"
            )
        if self.jitter_mean < 0 or self.jitter_spread < 0:
            raise ChannelFaultConfigError("jitter parameters cannot be negative")
        if self.reorder_depth < 1:
            raise ChannelFaultConfigError("reorder_depth must be at least 1")
        if self.buffer_capacity is not None and self.buffer_capacity < 1:
            raise ChannelFaultConfigError("buffer_capacity must be at least 1")
        if self.window < 1:
            raise ChannelFaultConfigError("window must be at least 1")
        if self.max_attempts < 1:
            raise ChannelFaultConfigError("max_attempts must be at least 1")
        if self.base_rto <= 0 or self.max_rto <= 0:
            raise ChannelFaultConfigError("RTO values must be positive")
        if self.rto_backoff < 1.0:
            raise ChannelFaultConfigError("rto_backoff must be at least 1.0")
        if self.frame_overhead_words < 0 or self.ack_words < 1:
            raise ChannelFaultConfigError("frame/ack word counts out of range")

    @property
    def is_ideal(self) -> bool:
        """True when no fault model would ever fire (the wrapper is a no-op)."""
        return (
            self.loss_rate == 0.0
            and self.burst_loss_rate is None
            and self.reorder_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.corruption_rate == 0.0
            and self.jitter_mean == 0.0
            and self.jitter_spread == 0.0
            and self.buffer_capacity is None
        )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON encoding (canonical field order, no Nones dropped)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChannelFaultConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ChannelFaultConfigError(
                f"unknown channel-fault field(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**dict(payload))

    def derive_rng(self, *coordinates: Any) -> random.Random:
        """A ``random.Random`` seeded from this config plus link coordinates.

        Hash-derived (like request seeds) so the schedule of one link never
        depends on how many other links exist or in what order they were
        built.
        """
        text = repr((self.seed, *[str(c) for c in coordinates]))
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return random.Random(int(digest[:16], 16))


@dataclass
class WireFate:
    """What the wire does to one transmitted frame."""

    lost: bool = False
    corrupted: bool = False
    duplicates: int = 0
    reorder_depth: int = 0
    jitter: float = 0.0
    #: ``lost`` because the finite receive buffer overflowed (backpressure),
    #: not because the wire dropped the frame.
    overflowed: bool = False


class FaultModel(Protocol):
    """One composable fault shape.

    Implementations draw from the injector's shared ``random.Random`` in a
    fixed order, which is what makes the whole schedule a pure function of
    the seed.
    """

    def apply(self, rng: random.Random, fate: WireFate) -> None:
        """Mutate ``fate`` with this model's contribution for one frame."""
        ...


class LossModel:
    """Frame loss: i.i.d., or bursty via a two-state Gilbert-Elliott chain."""

    def __init__(
        self,
        rate: float,
        burst_rate: Optional[float] = None,
        burst_enter: float = 0.02,
        burst_exit: float = 0.25,
    ) -> None:
        self.rate = rate
        self.burst_rate = burst_rate
        self.burst_enter = burst_enter
        self.burst_exit = burst_exit
        self._bad_state = False

    def apply(self, rng: random.Random, fate: WireFate) -> None:
        if self.burst_rate is not None:
            # Advance the chain once per frame, then draw with the state's
            # loss probability.
            if self._bad_state:
                if rng.random() < self.burst_exit:
                    self._bad_state = False
            elif rng.random() < self.burst_enter:
                self._bad_state = True
            rate = self.burst_rate if self._bad_state else self.rate
        else:
            rate = self.rate
        if rate > 0.0 and rng.random() < rate:
            fate.lost = True


class ReorderModel:
    """Late delivery: an affected frame falls behind 1..depth younger frames."""

    def __init__(self, rate: float, depth: int = 3) -> None:
        self.rate = rate
        self.depth = depth

    def apply(self, rng: random.Random, fate: WireFate) -> None:
        if self.rate > 0.0 and rng.random() < self.rate:
            fate.reorder_depth = rng.randint(1, self.depth)


class DuplicateModel:
    """The wire delivers an extra copy of the frame."""

    def __init__(self, rate: float) -> None:
        self.rate = rate

    def apply(self, rng: random.Random, fate: WireFate) -> None:
        if self.rate > 0.0 and rng.random() < self.rate:
            fate.duplicates += 1


class CorruptionModel:
    """Checksum-detectable payload corruption (a bit flip in one word)."""

    def __init__(self, rate: float) -> None:
        self.rate = rate

    def apply(self, rng: random.Random, fate: WireFate) -> None:
        if self.rate > 0.0 and rng.random() < self.rate:
            fate.corrupted = True


class JitterModel:
    """Extra per-frame latency: ``mean + U[0, spread)`` seconds."""

    def __init__(self, mean: float, spread: float) -> None:
        self.mean = mean
        self.spread = spread

    def apply(self, rng: random.Random, fate: WireFate) -> None:
        jitter = self.mean
        if self.spread > 0.0:
            jitter += rng.random() * self.spread
        fate.jitter += jitter


class BoundedBufferModel:
    """Finite receive buffer: frames beyond capacity overflow and drop.

    The buffer holds out-of-order frames awaiting their predecessors plus any
    duplicate copies still queued; when one frame's fate would push the
    occupancy past capacity the frame is dropped (counted as an overflow, and
    recovered by retransmission -- the backpressure shape).
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def apply(self, rng: random.Random, fate: WireFate) -> None:
        occupancy = fate.reorder_depth + fate.duplicates
        if occupancy > self.capacity:
            fate.lost = True
            fate.overflowed = True


class ChannelFaultInjector:
    """Composes the configured fault models over one seeded random stream."""

    def __init__(
        self,
        config: ChannelFaultConfig,
        rng: random.Random,
        stats: Optional[FaultStats] = None,
    ) -> None:
        self.config = config
        self.rng = rng
        self.stats = stats if stats is not None else FaultStats()
        models: List[FaultModel] = []
        if config.loss_rate > 0.0 or config.burst_loss_rate is not None:
            models.append(
                LossModel(
                    config.loss_rate,
                    burst_rate=config.burst_loss_rate,
                    burst_enter=config.burst_enter,
                    burst_exit=config.burst_exit,
                )
            )
        if config.corruption_rate > 0.0:
            models.append(CorruptionModel(config.corruption_rate))
        if config.duplicate_rate > 0.0:
            models.append(DuplicateModel(config.duplicate_rate))
        if config.reorder_rate > 0.0:
            models.append(ReorderModel(config.reorder_rate, config.reorder_depth))
        if config.jitter_mean > 0.0 or config.jitter_spread > 0.0:
            models.append(JitterModel(config.jitter_mean, config.jitter_spread))
        if config.buffer_capacity is not None:
            # Applied last: it consumes the fate the other models produced.
            models.append(BoundedBufferModel(config.buffer_capacity))
        self.models = models

    def wire_fate(self) -> WireFate:
        """Draw one frame's fate (advances the shared seeded stream)."""
        fate = WireFate()
        rng = self.rng
        for model in self.models:
            model.apply(rng, fate)
        return fate


# ---------------------------------------------------------------------------
# Byte-level faulty transport.
# ---------------------------------------------------------------------------

def frame_checksum(words: List[int]) -> int:
    """Additive 32-bit checksum over a word list (catches any single flip)."""
    return sum(w & 0xFFFFFFFF for w in words) & 0xFFFFFFFF


class FaultyChannelEndpoint:
    """A :class:`ChannelEndpoint` whose queued messages suffer wire faults.

    Wraps an existing endpoint; the wrapped ideal endpoint is byte-untouched
    when no wrapper is interposed.  ``write`` charges the ideal access cost
    plus the drawn jitter and then mutates the queue according to the fate:
    lost frames are consumed (the time was still spent), duplicates enqueue
    extra copies, reordered frames are pushed behind younger ones, corrupted
    frames get one bit flipped (detectable by :func:`frame_checksum`).
    """

    def __init__(
        self,
        endpoint: ChannelEndpoint,
        injector: ChannelFaultInjector,
    ) -> None:
        if not endpoint.stats.keep_log:
            raise ChannelError(
                "FaultyChannelEndpoint needs a message-queueing endpoint "
                "(construct it with keep_log=True)"
            )
        self.endpoint = endpoint
        self.injector = injector
        # Reordered frames are held back until ``depth`` younger frames have
        # been written in the same direction (or the queue drains, so nothing
        # is ever stuck forever): [message, remaining_holdback] pairs.
        self._held: Dict[ChannelDirection, List[List[Any]]] = {
            direction: [] for direction in ChannelDirection
        }

    @property
    def stats(self):
        return self.endpoint.stats

    @property
    def fault_stats(self) -> FaultStats:
        return self.injector.stats

    def write(
        self,
        direction: ChannelDirection,
        words: List[int],
        purpose: str = "",
        target_cycle: int = -1,
    ) -> float:
        fate = self.injector.wire_fate()
        stats = self.injector.stats
        stats.attempts += 1
        time = self.endpoint.write(direction, words, purpose=purpose, target_cycle=target_cycle)
        time += fate.jitter
        stats.jitter_time += fate.jitter
        queue = self.endpoint._queues[direction]  # same-package queue surgery
        message = queue.pop()  # the frame just enqueued
        if fate.lost:
            if fate.overflowed:
                stats.buffer_overflows += 1
            else:
                stats.drops += 1
            self._age_held(direction)
            return time
        if fate.corrupted:
            # Flip one random bit of one random word; the checksum word (if
            # the sender appended one) no longer matches.
            stats.corruptions += 1
            index = self.injector.rng.randrange(len(message.words))
            bit = self.injector.rng.randrange(32)
            corrupted = list(message.words)
            corrupted[index] ^= 1 << bit
            message = ChannelMessage(
                direction=message.direction,
                words=corrupted,
                purpose=message.purpose,
                target_cycle=message.target_cycle,
            )
        if fate.reorder_depth > 0:
            # Late delivery: hold the frame back until reorder_depth younger
            # frames have overtaken it.
            stats.reorder_events += 1
            stats.max_reorder_depth = max(stats.max_reorder_depth, fate.reorder_depth)
            held_entry: Optional[List[Any]] = [message, fate.reorder_depth]
        else:
            queue.append(message)
            held_entry = None
        for _ in range(fate.duplicates):
            stats.duplicates += 1
            # Duplicates pay wire time too (the receiver will suppress the
            # copy; the wire does not know that).
            time += self.endpoint.charge(
                direction, len(message.words), purpose=purpose, target_cycle=target_cycle
            )
            queue.append(message)
        # Previously-held frames see this write as one younger frame passing;
        # the frame held *by* this write must not age on its own passage.
        self._age_held(direction)
        if held_entry is not None:
            self._held[direction].append(held_entry)
        return time

    def _age_held(self, direction: ChannelDirection) -> None:
        """One younger frame passed: release held-back frames that are due."""
        held = self._held[direction]
        if not held:
            return
        queue = self.endpoint._queues[direction]
        still_held: List[List[Any]] = []
        for entry in held:
            entry[1] -= 1
            if entry[1] <= 0:
                queue.append(entry[0])
            else:
                still_held.append(entry)
        self._held[direction][:] = still_held

    def _release_held(self, direction: ChannelDirection) -> None:
        """Flush every held frame (the link idled; nothing overtakes them now)."""
        held = self._held[direction]
        if held and not self.endpoint._queues[direction]:
            queue = self.endpoint._queues[direction]
            for entry in held:
                queue.append(entry[0])
            held.clear()

    # -- read side: pass-throughs (held frames flush once the queue idles) --
    def readable(self, direction: ChannelDirection) -> bool:
        self._release_held(direction)
        return self.endpoint.readable(direction)

    def pending(self, direction: ChannelDirection) -> int:
        self._release_held(direction)
        return self.endpoint.pending(direction)

    def read(self, direction: ChannelDirection, purpose: str = "") -> ChannelMessage:
        self._release_held(direction)
        return self.endpoint.read(direction, purpose=purpose)

    def drain(self, direction: ChannelDirection) -> List[ChannelMessage]:
        self._release_held(direction)
        return self.endpoint.drain(direction)
