"""Selective-repeat reliability layer over an imperfect channel.

Two views of the same protocol live here:

* :class:`ReliableStream` -- the *byte-level* protocol: a selective-repeat
  window with SACK-style feedback, per-segment retransmission timers with
  exponential-backoff RTO, duplicate suppression and additive-checksum
  verification, driven over a :class:`~repro.channel.faults.
  FaultyChannelEndpoint` under a virtual clock.  This is the reference
  implementation the property suite exercises: for any fault combination
  within the give-up threshold it delivers every payload exactly once, in
  order.

* :class:`SelectiveRepeatLink` -- the *modelled* per-access form the engines
  charge through.  Engine boundary values travel in-process (see
  :meth:`~repro.core.coemulation.CoEmulationEngineBase._charge_channel`), so
  functional state can never diverge; what an imperfect link changes is the
  modelled wall-clock cost and the traffic accounting.  ``deliver`` simulates
  the protocol closed-form for one message: draw the wire's fate per attempt,
  pay the wire time (every retransmission and duplicate is recorded on the
  underlying :class:`~repro.channel.stats.ChannelStats`), wait out RTOs with
  exponential backoff, pay the SACK feedback (which may itself be lost), and
  give up with a structured :class:`~repro.channel.faults.
  ChannelDegradedError` once one message exhausts ``max_attempts``.

Both views consume the same :class:`~repro.channel.faults.
ChannelFaultInjector`, so the fault schedule is a pure function of the
configured seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .driver import ChannelEndpoint
from .faults import (
    ChannelDegradedError,
    ChannelFaultConfig,
    ChannelFaultInjector,
    FaultyChannelEndpoint,
    frame_checksum,
)
from .phy import ChannelDirection
from .stats import FaultStats


class SelectiveRepeatLink:
    """Modelled exactly-once delivery of one message over a faulty link.

    One instance exists per (source, dest) ordered pair of a sync channel;
    both directions of a channel share the underlying
    :class:`~repro.channel.driver.ChannelEndpoint` (and its
    :class:`~repro.channel.stats.FaultStats`), but each direction draws from
    its own seeded stream so reversing a topology never perturbs the other
    direction's schedule.
    """

    def __init__(
        self,
        channel: ChannelEndpoint,
        direction: ChannelDirection,
        config: ChannelFaultConfig,
        injector: ChannelFaultInjector,
    ) -> None:
        self.channel = channel
        self.direction = direction
        self.config = config
        self.injector = injector
        self.stats = injector.stats
        # Pre-compute the per-frame wire times the closed-form simulation
        # reuses (payload sizes vary per call; these are the fixed parts).
        self._reverse = direction.other

    def deliver(self, n_words: int, purpose: str, target_cycle: int) -> float:
        """Deliver one ``n_words`` message; returns total modelled seconds.

        The sequence/checksum framing words ride along on every attempt, the
        SACK feedback frame pays the reverse direction, and every wire
        transmission (original, retransmission, duplicate, ack) is recorded
        on the channel's traffic stats -- retransmissions *cost* modelled
        time and show up as accesses, exactly like the ideal path's single
        access would.
        """
        config = self.config
        injector = self.injector
        stats = self.stats
        channel = self.channel
        direction = self.direction
        frame_words = n_words + config.frame_overhead_words
        frame_time = channel.params.access_time(direction, frame_words)
        rto = config.base_rto
        total = 0.0
        attempts = 0
        data_delivered = False
        while True:
            if attempts >= config.max_attempts:
                raise ChannelDegradedError(
                    direction=direction,
                    purpose=purpose,
                    target_cycle=target_cycle,
                    attempts=attempts,
                    limit=config.max_attempts,
                    elapsed=total,
                )
            attempts += 1
            stats.attempts += 1
            if attempts > 1:
                stats.retransmissions += 1
            fate = injector.wire_fate()
            total += channel.charge(
                direction, frame_words, purpose=purpose, target_cycle=target_cycle
            )
            total += fate.jitter
            stats.jitter_time += fate.jitter
            for _ in range(fate.duplicates):
                # The wire carries the copy and the receiver discards it.
                stats.duplicates += 1
                stats.duplicates_suppressed += 1
                total += channel.charge(
                    direction, frame_words, purpose=purpose, target_cycle=target_cycle
                )
            if fate.lost or fate.corrupted:
                # Vanished on the wire, overflowed the receive buffer, or
                # failed the checksum: either way the sender only learns via
                # its retransmission timer.
                if fate.corrupted and not fate.lost:
                    stats.corruptions += 1
                elif fate.overflowed:
                    stats.buffer_overflows += 1
                else:
                    stats.drops += 1
                total += rto
                stats.rto_wait_time += rto
                stats.rto_events += 1
                rto = min(rto * config.rto_backoff, config.max_rto)
                continue
            if data_delivered:
                # A retransmission of an already-buffered frame: the receiver
                # suppresses it and re-acks.
                stats.duplicates_suppressed += 1
            elif fate.reorder_depth > 0:
                # Arrived behind younger frames: the receiver's window
                # buffers it for reorder_depth frame-times before it can be
                # released in order.
                stats.reorder_events += 1
                stats.max_reorder_depth = max(stats.max_reorder_depth, fate.reorder_depth)
                wait = fate.reorder_depth * frame_time
                total += wait
                stats.reorder_wait_time += wait
            data_delivered = True
            # SACK feedback on the reverse direction; it can be lost or
            # corrupted too, in which case the sender's timer fires and the
            # (suppressed) retransmission solicits a fresh ack.
            ack_fate = injector.wire_fate()
            total += channel.charge(
                self._reverse, config.ack_words, purpose="sr_ack", target_cycle=target_cycle
            )
            total += ack_fate.jitter
            stats.jitter_time += ack_fate.jitter
            if ack_fate.lost or ack_fate.corrupted:
                stats.ack_losses += 1
                total += rto
                stats.rto_wait_time += rto
                stats.rto_events += 1
                rto = min(rto * config.rto_backoff, config.max_rto)
                continue
            return total


# ---------------------------------------------------------------------------
# Byte-level protocol: selective repeat + SACK over a faulty endpoint.
# ---------------------------------------------------------------------------

@dataclass
class _Segment:
    """Sender-side state of one in-flight payload."""

    seq: int
    words: List[int]
    acked: bool = False
    sent: bool = False
    attempts: int = 0
    deadline: float = 0.0
    rto: float = 0.0


@dataclass
class StreamReport:
    """Observable outcome of one :meth:`ReliableStream.transfer`."""

    delivered: int = 0
    elapsed: float = 0.0
    checksum_failures: int = 0
    duplicates_suppressed: int = 0
    acks_received: int = 0
    sack_rescues: int = 0
    fault_stats: Optional[FaultStats] = None


class ReliableStream:
    """Selective-repeat + SACK transfer of payload frames over a faulty link.

    Data frames travel in ``direction``; SACK feedback travels the opposite
    way through the *same* fault injector, so acknowledgements drop, reorder
    and corrupt just like data.  A virtual clock serialises wire time and
    drives the per-segment retransmission timers.

    Frame layout (32-bit words)::

        data:  [seq, payload_len, *payload, checksum]
        sack:  [cum_ack, n_sack, *sack_seqs, checksum]

    The additive checksum detects every single-bit corruption the
    :class:`~repro.channel.faults.CorruptionModel` injects.
    """

    def __init__(
        self,
        link: FaultyChannelEndpoint,
        direction: ChannelDirection,
        config: ChannelFaultConfig,
    ) -> None:
        self.link = link
        self.direction = direction
        self.config = config

    # -- framing -----------------------------------------------------------
    @staticmethod
    def _frame(seq: int, payload: List[int]) -> List[int]:
        words = [seq, len(payload), *payload]
        words.append(frame_checksum(words))
        return words

    @staticmethod
    def _verify(words: List[int]) -> Optional[List[int]]:
        """Return the frame body when the checksum holds, ``None`` otherwise."""
        if len(words) < 2:
            return None
        body, checksum = words[:-1], words[-1]
        if frame_checksum(body) != checksum:
            return None
        return body

    # -- the transfer loop -------------------------------------------------
    def transfer(self, payloads: List[List[int]]) -> List[List[int]]:
        """Send every payload; returns them exactly once, in order.

        Raises :class:`~repro.channel.faults.ChannelDegradedError` when any
        one segment exhausts the give-up threshold.
        """
        report = self.report = StreamReport(fault_stats=self.link.fault_stats)
        config = self.config
        direction = self.direction
        reverse = direction.other
        link = self.link
        window = config.window
        segments = [
            _Segment(seq=seq, words=list(payload), rto=config.base_rto)
            for seq, payload in enumerate(payloads)
        ]
        total = len(segments)
        delivered: List[List[int]] = []
        rcv_base = 0
        rcv_buffer: Dict[int, List[int]] = {}
        base = 0
        clock = 0.0

        while base < total:
            progress = False
            # 1. Sender: transmit every due segment inside the window
            #    (first transmission, or its retransmission timer expired).
            for segment in segments[base : base + window]:
                if segment.acked:
                    continue
                if segment.sent and clock < segment.deadline:
                    continue
                if segment.attempts >= config.max_attempts:
                    raise ChannelDegradedError(
                        direction=direction,
                        purpose="sr_data",
                        target_cycle=segment.seq,
                        attempts=segment.attempts,
                        limit=config.max_attempts,
                        elapsed=clock,
                    )
                if segment.sent:
                    link.fault_stats.retransmissions += 1
                    link.fault_stats.rto_events += 1
                segment.attempts += 1
                clock += link.write(
                    direction,
                    self._frame(segment.seq, segment.words),
                    purpose="sr_data",
                    target_cycle=segment.seq,
                )
                segment.sent = True
                segment.deadline = clock + segment.rto
                segment.rto = min(segment.rto * config.rto_backoff, config.max_rto)
                progress = True

            # 2. Receiver: drain data frames, buffer in-window news, suppress
            #    duplicates, release the in-order prefix, emit SACK feedback.
            while link.readable(direction):
                message = link.read(direction, purpose="sr_data")
                body = self._verify(message.words)
                if body is None:
                    report.checksum_failures += 1
                    continue
                seq, length = body[0], body[1]
                payload = body[2 : 2 + length]
                if seq < rcv_base or seq in rcv_buffer:
                    report.duplicates_suppressed += 1
                    self.link.fault_stats.duplicates_suppressed += 1
                elif seq < rcv_base + window:
                    rcv_buffer[seq] = payload
                # (seq >= rcv_base + window cannot happen: the sender's
                # window never runs that far ahead of the cumulative ack.)
                while rcv_base in rcv_buffer:
                    delivered.append(rcv_buffer.pop(rcv_base))
                    rcv_base += 1
                sack = sorted(rcv_buffer)
                ack_body = [rcv_base, len(sack), *sack]
                ack_body.append(frame_checksum(ack_body))
                clock += link.write(
                    reverse, ack_body, purpose="sr_ack", target_cycle=rcv_base
                )
                progress = True

            # 3. Sender: process SACK feedback -- slide the window over the
            #    cumulative ack, mark SACKed segments so they are never
            #    retransmitted again.
            while link.readable(reverse):
                message = link.read(reverse, purpose="sr_ack")
                body = self._verify(message.words)
                if body is None:
                    report.checksum_failures += 1
                    continue
                report.acks_received += 1
                cum_ack, n_sack = body[0], body[1]
                for seq in range(base, min(cum_ack, total)):
                    segments[seq].acked = True
                for seq in body[2 : 2 + n_sack]:
                    if base <= seq < total and not segments[seq].acked:
                        segments[seq].acked = True
                        report.sack_rescues += 1
                while base < total and segments[base].acked:
                    base += 1
                progress = True

            # 4. Nothing moved: jump the virtual clock to the earliest
            #    pending retransmission timer so the next pass resends.
            if not progress and base < total:
                deadlines = [
                    segment.deadline
                    for segment in segments[base : base + window]
                    if not segment.acked and segment.sent
                ]
                if deadlines:
                    clock = max(clock, min(deadlines))
                else:  # pragma: no cover - defensive; step 1 always sends
                    clock += config.base_rto

        report.delivered = len(delivered)
        report.elapsed = clock
        return delivered
