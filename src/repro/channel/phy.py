"""Simulator-accelerator channel timing model.

The paper characterises the channel between the software simulator and the
PCI-based built-in simulation accelerator (iPROVE) as a stack of API, device
driver and physical layers with a large *static startup overhead* per access
and a small per-word payload cost:

* startup overhead: 12.2 us per channel access,
* simulator -> accelerator payload: 49.95 ns per word,
* accelerator -> simulator payload: 75.73 ns per word.

(Section 1.2, measured on a Pentium-4 2.8 GHz host with a 32-bit 33 MHz PCI
bus.)  Because a conventional lock-step co-emulation needs two accesses per
target cycle carrying only a handful of words, the startup overhead dominates
-- which is the entire motivation for the prediction packetizing scheme.

This module provides the parameter container and the access-time formula.
The real hardware is not required: every quantity the paper's evaluation uses
is derived from these three constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class ChannelDirection(str, Enum):
    """Transfer direction over the simulator-accelerator channel."""

    SIM_TO_ACC = "sim_to_acc"
    ACC_TO_SIM = "acc_to_sim"

    @property
    def other(self) -> "ChannelDirection":
        if self is ChannelDirection.SIM_TO_ACC:
            return ChannelDirection.ACC_TO_SIM
        return ChannelDirection.SIM_TO_ACC


@dataclass(frozen=True)
class ChannelTimingParams:
    """Timing constants of the simulator-accelerator channel.

    Attributes:
        startup_overhead: static per-access cost in seconds (API + driver +
            physical-layer setup), paid regardless of payload size.
        sim_to_acc_word_time: payload cost per 32-bit word for
            simulator -> accelerator transfers, in seconds.
        acc_to_sim_word_time: payload cost per 32-bit word for
            accelerator -> simulator transfers, in seconds.
    """

    startup_overhead: float = 12.2e-6
    sim_to_acc_word_time: float = 49.95e-9
    acc_to_sim_word_time: float = 75.73e-9

    def __post_init__(self) -> None:
        if self.startup_overhead < 0:
            raise ValueError("startup overhead cannot be negative")
        if self.sim_to_acc_word_time < 0 or self.acc_to_sim_word_time < 0:
            raise ValueError("per-word payload times cannot be negative")

    def word_time(self, direction: ChannelDirection) -> float:
        """Per-word payload time for the given direction."""
        if direction is ChannelDirection.SIM_TO_ACC:
            return self.sim_to_acc_word_time
        return self.acc_to_sim_word_time

    def access_time(self, direction: ChannelDirection, words: int) -> float:
        """Total time for a single channel access carrying ``words`` words."""
        if words < 0:
            raise ValueError(f"negative word count {words}")
        return self.startup_overhead + words * self.word_time(direction)

    def amortized_word_time(self, direction: ChannelDirection, words: int) -> float:
        """Effective time per word when ``words`` words share one access."""
        if words <= 0:
            raise ValueError("amortized cost requires a positive word count")
        return self.access_time(direction, words) / words

    def breakeven_words(self, direction: ChannelDirection) -> float:
        """Number of words at which payload time equals the startup overhead.

        Below this size an access is dominated by the startup overhead --
        the paper notes that conventional per-cycle exchanges (at most ~5
        words) are far below it.
        """
        return self.startup_overhead / self.word_time(direction)


#: Parameters measured by the paper for the iPROVE PCI accelerator.
IPROVE_PCI_CHANNEL = ChannelTimingParams()

#: A hypothetical faster channel (e.g. PCIe-generation hardware) used by the
#: ablation benchmarks to study how the gain shrinks as startup cost falls.
FAST_CHANNEL = ChannelTimingParams(
    startup_overhead=1.0e-6,
    sim_to_acc_word_time=10e-9,
    acc_to_sim_word_time=10e-9,
)

#: A channel with no startup overhead at all; with this channel the
#: conventional and optimistic schemes should perform almost identically,
#: which the ablation benchmark verifies.
ZERO_OVERHEAD_CHANNEL = ChannelTimingParams(
    startup_overhead=0.0,
    sim_to_acc_word_time=49.95e-9,
    acc_to_sim_word_time=75.73e-9,
)


@dataclass(frozen=True)
class ChannelLayerBreakdown:
    """Decomposition of the startup overhead into stack layers.

    The paper describes the channel as "layers of API, device driver, and
    physical media each with static startup overhead"; only the total is
    reported.  The breakdown is configurable so the layered driver model in
    :mod:`repro.channel.driver` can attribute time to each layer.
    """

    api_overhead: float = 2.0e-6
    driver_overhead: float = 4.2e-6
    physical_overhead: float = 6.0e-6

    @property
    def total(self) -> float:
        return self.api_overhead + self.driver_overhead + self.physical_overhead

    def scaled_to(self, total: float) -> "ChannelLayerBreakdown":
        """Return a breakdown with the same proportions summing to ``total``.

        ``total`` must be a positive finite number: a zero or negative target
        has no proportional decomposition (callers modelling a free channel
        should construct ``ChannelLayerBreakdown(0.0, 0.0, 0.0)`` directly,
        as :class:`~repro.channel.driver.SimulatorAcceleratorChannel` does).
        """
        if not math.isfinite(total):
            raise ValueError(f"cannot scale a breakdown to non-finite total {total!r}")
        if total <= 0:
            raise ValueError(
                f"cannot scale a breakdown to non-positive total {total!r}; "
                "construct ChannelLayerBreakdown(0.0, 0.0, 0.0) for a free channel"
            )
        if self.total == 0:
            raise ValueError(
                "cannot scale a zero breakdown: ChannelLayerBreakdown(0.0, 0.0, 0.0) "
                "has no proportions to preserve"
            )
        factor = total / self.total
        return ChannelLayerBreakdown(
            api_overhead=self.api_overhead * factor,
            driver_overhead=self.driver_overhead * factor,
            physical_overhead=self.physical_overhead * factor,
        )
