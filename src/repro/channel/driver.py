"""Layered channel access model.

The paper describes the simulator-accelerator channel as "layers of API,
device driver, and physical media each with static startup overhead".  The
:class:`ChannelEndpoint` pair below models exactly that: a message written on
one side becomes readable on the other side, every access pays the startup
overhead, and the per-layer split of that overhead is tracked so the layered
structure can be examined in the channel characterisation benchmark.

This is a functional model, not an OS artifact: "blocking" reads are realised
by the co-emulation orchestrator only calling ``read`` when a message is
available, mirroring how the channel wrappers block in the paper's state
machine (Read input data / Get response states).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from .phy import ChannelDirection, ChannelLayerBreakdown, ChannelTimingParams
from .stats import ChannelStats


class ChannelError(RuntimeError):
    """Raised on invalid channel usage (reading an empty channel)."""


@dataclass
class ChannelMessage:
    """One message in flight on the channel."""

    direction: ChannelDirection
    words: List[int]
    purpose: str
    target_cycle: int


@dataclass
class LayerTimes:
    """Per-layer accumulated startup time."""

    api: float = 0.0
    driver: float = 0.0
    physical: float = 0.0

    @property
    def total(self) -> float:
        return self.api + self.driver + self.physical


class SimulatorAcceleratorChannel:
    """The bidirectional channel connecting the two verification domains."""

    def __init__(
        self,
        params: Optional[ChannelTimingParams] = None,
        layers: Optional[ChannelLayerBreakdown] = None,
        keep_log: bool = True,
    ) -> None:
        self.params = params or ChannelTimingParams()
        self.layers = (layers or ChannelLayerBreakdown()).scaled_to(
            self.params.startup_overhead
        ) if self.params.startup_overhead > 0 else ChannelLayerBreakdown(0.0, 0.0, 0.0)
        self.stats = ChannelStats(params=self.params, keep_log=keep_log)
        self.layer_times = LayerTimes()
        self._queues: dict[ChannelDirection, Deque[ChannelMessage]] = {
            direction: deque() for direction in ChannelDirection
        }

    # -- write / read ----------------------------------------------------------
    def write(
        self,
        direction: ChannelDirection,
        words: List[int],
        purpose: str = "",
        target_cycle: int = -1,
    ) -> float:
        """Send ``words`` in ``direction``; returns the modelled access time.

        With ``keep_log=False`` the channel runs in fire-and-forget
        accounting mode: the access time is charged from the word *count*
        and the words are neither copied nor retained, so arbitrarily long
        runs hold constant memory.  Messages are queued (and readable via
        :meth:`read` / :meth:`drain`) only when ``keep_log=True``.
        """
        if self.stats.keep_log:
            message = ChannelMessage(
                direction=direction,
                words=list(words),
                purpose=purpose,
                target_cycle=target_cycle,
            )
            self._queues[direction].append(message)
        return self._charge(direction, len(words), purpose, target_cycle)

    def charge(
        self,
        direction: ChannelDirection,
        n_words: int,
        purpose: str = "",
        target_cycle: int = -1,
    ) -> float:
        """Account one access of ``n_words`` words without materialising it.

        This is the engines' hot path: they already hand the boundary values
        across in-process, so only the modelled cost of the access matters.
        Nothing is enqueued regardless of ``keep_log``.
        """
        return self._charge(direction, n_words, purpose, target_cycle)

    def _charge(
        self, direction: ChannelDirection, n_words: int, purpose: str, target_cycle: int
    ) -> float:
        access_time = self.stats.record_access(
            direction, n_words, purpose=purpose, target_cycle=target_cycle
        )
        self.layer_times.api += self.layers.api_overhead
        self.layer_times.driver += self.layers.driver_overhead
        self.layer_times.physical += self.layers.physical_overhead
        return access_time

    def pending(self, direction: ChannelDirection) -> int:
        """Number of unread messages travelling in ``direction``."""
        return len(self._queues[direction])

    def readable(self, direction: ChannelDirection) -> bool:
        """Non-raising poll: is a message pending in ``direction``?

        Orchestrating code (the reliability layer's drain loops, protocol
        drivers, tests) should poll this instead of catching
        :class:`ChannelError` from a speculative :meth:`read`.
        """
        return bool(self._queues[direction])

    def read(self, direction: ChannelDirection, purpose: str = "") -> ChannelMessage:
        """Receive the oldest unread message travelling in ``direction``.

        Reading does not pay a second startup overhead: the cost model charges
        the full access cost at write time (one access = one startup).
        ``purpose`` only annotates the empty-read diagnostic -- pass what the
        caller expected to receive.
        """
        queue = self._queues[direction]
        if not queue:
            expected = f" (expected {purpose!r})" if purpose else ""
            depths = ", ".join(
                f"{d.value}={len(q)} pending" for d, q in self._queues.items()
            )
            raise ChannelError(
                f"empty read in direction {direction.value}{expected}: "
                f"queue depths: {depths}; poll readable() before reading"
            )
        return queue.popleft()

    def drain(self, direction: ChannelDirection) -> List[ChannelMessage]:
        """Read and return every pending message in ``direction``."""
        messages = list(self._queues[direction])
        self._queues[direction].clear()
        return messages

    def reset(self) -> None:
        self.stats.reset()
        self.layer_times = LayerTimes()
        for queue in self._queues.values():
            queue.clear()


#: One side of the modelled link *is* the message transport: historical name
#: kept as the primary class, protocol-facing name exported for the fault /
#: reliability layers (:mod:`repro.channel.faults` wraps a ChannelEndpoint).
ChannelEndpoint = SimulatorAcceleratorChannel
