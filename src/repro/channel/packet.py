"""Packetizing of boundary values into channel words.

The channel transports 32-bit words.  This module defines how the MSABS
values exchanged between the two verification domains are packed into words:
both so that the traffic accounting is realistic (the conventional scheme's
per-cycle exchange is "at most five words", matching the paper) and so the
packetizer can be exercised and tested as real code rather than a constant.

Encoding layout (one *cycle record*):

* header word: presence flags + request bitmap + interrupt bitmap,
* address phase (2 words): HADDR, packed control (HTRANS/HWRITE/HSIZE/
  HBURST/HPROT/master id),
* write data (1 word),
* response (1 word): HREADY/HRESP + flags,
* read data (1 word).

Only present fields are transmitted; the header says which.  The encoder is
exactly invertible, which the property-based tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ahb.half_bus import BoundaryDrive
from ..ahb.signals import AddressPhase, DataPhaseResult, HBurst, HResp, HSize, HTrans


class PacketError(ValueError):
    """Raised when decoding malformed packets."""


_FLAG_ADDRESS_PHASE = 1 << 0
_FLAG_WRITE_DATA = 1 << 1
_FLAG_RESPONSE = 1 << 2
_FLAG_READ_DATA = 1 << 3
_REQUEST_SHIFT = 8
_REQUEST_WIDTH = 8
_INTERRUPT_SHIFT = 16
_INTERRUPT_WIDTH = 8


@dataclass
class CycleRecordPacket:
    """The decoded form of one cycle's boundary values."""

    requests: Dict[int, bool] = field(default_factory=dict)
    address_phase: Optional[AddressPhase] = None
    hwdata: Optional[int] = None
    response: Optional[DataPhaseResult] = None
    interrupts: Dict[str, bool] = field(default_factory=dict)


def _pack_control(phase: AddressPhase) -> int:
    word = 0
    word |= int(phase.htrans) & 0x3
    word |= (1 if phase.hwrite else 0) << 2
    word |= (int(phase.hsize) & 0x7) << 3
    word |= (int(phase.hburst) & 0x7) << 6
    word |= (phase.hprot & 0xF) << 9
    word |= (phase.master_id & 0xFF) << 16
    return word


def _unpack_control(word: int, haddr: int) -> AddressPhase:
    return AddressPhase(
        master_id=(word >> 16) & 0xFF,
        haddr=haddr,
        htrans=HTrans(word & 0x3),
        hwrite=bool((word >> 2) & 0x1),
        hsize=HSize((word >> 3) & 0x7),
        hburst=HBurst((word >> 6) & 0x7),
        hprot=(word >> 9) & 0xF,
    )


def _pack_response(response: DataPhaseResult) -> int:
    word = 0
    word |= 1 if response.hready else 0
    word |= (int(response.hresp) & 0x3) << 1
    word |= (1 if response.hrdata is not None else 0) << 3
    return word


def _unpack_response(word: int, hrdata: Optional[int]) -> DataPhaseResult:
    has_rdata = bool((word >> 3) & 0x1)
    return DataPhaseResult(
        hready=bool(word & 0x1),
        hresp=HResp((word >> 1) & 0x3),
        hrdata=hrdata if has_rdata else None,
    )


class BoundaryPacketizer:
    """Encodes / decodes boundary values to and from channel words.

    Master ids and interrupt names must be registered up front so both ends
    agree on bit positions (the paper's static configuration assumption).
    """

    def __init__(self, master_ids: List[int], interrupt_names: Optional[List[str]] = None) -> None:
        self.master_ids = sorted(master_ids)
        if len(self.master_ids) > _REQUEST_WIDTH:
            raise PacketError(
                f"at most {_REQUEST_WIDTH} masters supported, got {len(self.master_ids)}"
            )
        self.interrupt_names = sorted(interrupt_names or [])
        if len(self.interrupt_names) > _INTERRUPT_WIDTH:
            raise PacketError(
                f"at most {_INTERRUPT_WIDTH} interrupt lines supported, "
                f"got {len(self.interrupt_names)}"
            )

    # -- encoding -------------------------------------------------------------
    def encode(
        self,
        requests: Dict[int, bool],
        address_phase: Optional[AddressPhase] = None,
        hwdata: Optional[int] = None,
        response: Optional[DataPhaseResult] = None,
        interrupts: Optional[Dict[str, bool]] = None,
    ) -> List[int]:
        """Encode one cycle's boundary values into a list of 32-bit words."""
        header = 0
        for index, master_id in enumerate(self.master_ids):
            if requests.get(master_id, False):
                header |= 1 << (_REQUEST_SHIFT + index)
        for index, name in enumerate(self.interrupt_names):
            if interrupts and interrupts.get(name, False):
                header |= 1 << (_INTERRUPT_SHIFT + index)
        words: List[int] = [0]  # placeholder for header
        if address_phase is not None:
            header |= _FLAG_ADDRESS_PHASE
            words.append(address_phase.haddr & 0xFFFFFFFF)
            words.append(_pack_control(address_phase))
        if hwdata is not None:
            header |= _FLAG_WRITE_DATA
            words.append(hwdata & 0xFFFFFFFF)
        if response is not None:
            header |= _FLAG_RESPONSE
            words.append(_pack_response(response))
            if response.hrdata is not None:
                header |= _FLAG_READ_DATA
                words.append(response.hrdata & 0xFFFFFFFF)
        words[0] = header
        return words

    def encode_drive(self, drive: BoundaryDrive) -> List[int]:
        """Encode a :class:`~repro.ahb.half_bus.BoundaryDrive` contribution."""
        return self.encode(
            requests=drive.requests,
            address_phase=drive.address_phase,
            hwdata=drive.hwdata,
            interrupts=drive.interrupts,
        )

    def encode_response(self, response: Optional[DataPhaseResult]) -> List[int]:
        """Encode a response-only packet (the lagger-to-leader direction)."""
        return self.encode(requests={}, response=response)

    # -- decoding ----------------------------------------------------------------
    def decode(self, words: List[int]) -> CycleRecordPacket:
        """Decode a word list produced by :meth:`encode`."""
        if not words:
            raise PacketError("empty packet")
        header = words[0]
        cursor = 1
        requests = {}
        for index, master_id in enumerate(self.master_ids):
            requests[master_id] = bool((header >> (_REQUEST_SHIFT + index)) & 0x1)
        interrupts = {}
        for index, name in enumerate(self.interrupt_names):
            interrupts[name] = bool((header >> (_INTERRUPT_SHIFT + index)) & 0x1)
        address_phase = None
        if header & _FLAG_ADDRESS_PHASE:
            if cursor + 2 > len(words):
                raise PacketError("truncated address phase")
            haddr = words[cursor]
            control = words[cursor + 1]
            cursor += 2
            address_phase = _unpack_control(control, haddr)
        hwdata = None
        if header & _FLAG_WRITE_DATA:
            if cursor + 1 > len(words):
                raise PacketError("truncated write data")
            hwdata = words[cursor]
            cursor += 1
        response = None
        if header & _FLAG_RESPONSE:
            if cursor + 1 > len(words):
                raise PacketError("truncated response")
            response_word = words[cursor]
            cursor += 1
            hrdata = None
            if header & _FLAG_READ_DATA:
                if cursor + 1 > len(words):
                    raise PacketError("truncated read data")
                hrdata = words[cursor]
                cursor += 1
            response = _unpack_response(response_word, hrdata)
        if cursor != len(words):
            raise PacketError(f"trailing words in packet: used {cursor} of {len(words)}")
        return CycleRecordPacket(
            requests=requests,
            address_phase=address_phase,
            hwdata=hwdata,
            response=response,
            interrupts=interrupts,
        )

    # -- sizing helpers -------------------------------------------------------------
    # These compute len(encode(...)) arithmetically, without building the
    # word list.  The engines charge channel time per cycle from these
    # counts, so they must stay exactly consistent with the encoder layout
    # (a property test asserts this).

    @staticmethod
    def cycle_word_count(
        address_phase: Optional[AddressPhase] = None,
        hwdata: Optional[int] = None,
        response: Optional[DataPhaseResult] = None,
    ) -> int:
        """Number of words :meth:`encode` would emit for these values."""
        words = 1  # header
        if address_phase is not None:
            words += 2
        if hwdata is not None:
            words += 1
        if response is not None:
            words += 1
            if response.hrdata is not None:
                words += 1
        return words

    def drive_word_count(self, drive: BoundaryDrive) -> int:
        return self.cycle_word_count(drive.address_phase, drive.hwdata, None)

    def response_word_count(self, response: Optional[DataPhaseResult]) -> int:
        return self.cycle_word_count(None, None, response)
