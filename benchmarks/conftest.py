"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or one of
the reproduction's own ablations) and prints it.  Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the reproduced tables; without it only the timing
numbers appear.
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print a reproduced table/figure with surrounding whitespace."""
    print("\n" + text + "\n")


@pytest.fixture
def report():
    return emit
