"""SLA results (paper Section 6, text).

Regenerates the SLA numbers quoted in the paper: maximum performance gains of
3.25 (simulator at 100 kcycles/s) and 15.34 (1,000 kcycles/s), and the
break-even prediction accuracies of 98 % and 70 % respectively.  Also checks
the qualitative claim that SLA suffers more than ALS at low accuracy.
"""

from __future__ import annotations

from repro.analysis.report import render_comparison, render_table
from repro.core.analytical import (
    AnalyticalConfig,
    PAPER_SLA_BREAKEVEN_100K,
    PAPER_SLA_BREAKEVEN_1000K,
    PAPER_SLA_MAX_GAIN_100K,
    PAPER_SLA_MAX_GAIN_1000K,
    accuracy_sweep,
    sla_summary,
)
from repro.core.modes import OperatingMode


def test_bench_sla_summary(benchmark, report):
    summary = benchmark(sla_summary)

    rows = [
        {
            "name": "SLA max gain, sim=1000k",
            "paper": PAPER_SLA_MAX_GAIN_1000K,
            "measured": summary[1_000_000.0]["max_gain"],
            "ratio": summary[1_000_000.0]["max_gain"] / PAPER_SLA_MAX_GAIN_1000K,
            "relative_error": abs(summary[1_000_000.0]["max_gain"] - PAPER_SLA_MAX_GAIN_1000K)
            / PAPER_SLA_MAX_GAIN_1000K,
        },
        {
            "name": "SLA max gain, sim=100k",
            "paper": PAPER_SLA_MAX_GAIN_100K,
            "measured": summary[100_000.0]["max_gain"],
            "ratio": summary[100_000.0]["max_gain"] / PAPER_SLA_MAX_GAIN_100K,
            "relative_error": abs(summary[100_000.0]["max_gain"] - PAPER_SLA_MAX_GAIN_100K)
            / PAPER_SLA_MAX_GAIN_100K,
        },
        {
            "name": "SLA break-even accuracy, sim=1000k",
            "paper": PAPER_SLA_BREAKEVEN_1000K,
            "measured": summary[1_000_000.0]["breakeven_accuracy"],
            "ratio": summary[1_000_000.0]["breakeven_accuracy"] / PAPER_SLA_BREAKEVEN_1000K,
            "relative_error": abs(
                summary[1_000_000.0]["breakeven_accuracy"] - PAPER_SLA_BREAKEVEN_1000K
            )
            / PAPER_SLA_BREAKEVEN_1000K,
        },
        {
            "name": "SLA break-even accuracy, sim=100k",
            "paper": PAPER_SLA_BREAKEVEN_100K,
            "measured": summary[100_000.0]["breakeven_accuracy"],
            "ratio": summary[100_000.0]["breakeven_accuracy"] / PAPER_SLA_BREAKEVEN_100K,
            "relative_error": abs(
                summary[100_000.0]["breakeven_accuracy"] - PAPER_SLA_BREAKEVEN_100K
            )
            / PAPER_SLA_BREAKEVEN_100K,
        },
    ]
    report(render_comparison("SLA results: paper vs reproduction", rows))

    assert abs(summary[1_000_000.0]["max_gain"] - PAPER_SLA_MAX_GAIN_1000K) < 1.0
    assert abs(summary[100_000.0]["max_gain"] - PAPER_SLA_MAX_GAIN_100K) < 0.3
    # break-even ordering: the slower simulator needs (much) higher accuracy
    assert (
        summary[100_000.0]["breakeven_accuracy"] > summary[1_000_000.0]["breakeven_accuracy"]
    )
    # and both are in the right neighbourhood
    assert abs(summary[100_000.0]["breakeven_accuracy"] - PAPER_SLA_BREAKEVEN_100K) < 0.05
    assert abs(summary[1_000_000.0]["breakeven_accuracy"] - PAPER_SLA_BREAKEVEN_1000K) < 0.15


def test_bench_sla_vs_als_sensitivity(benchmark, report):
    accuracies = (1.0, 0.99, 0.9, 0.8, 0.6, 0.3)

    def compute():
        als = accuracy_sweep(AnalyticalConfig(mode=OperatingMode.ALS), accuracies)
        sla = accuracy_sweep(AnalyticalConfig(mode=OperatingMode.SLA), accuracies)
        return als, sla

    als, sla = benchmark(compute)
    rows = [
        [f"{a.prediction_accuracy:.2f}", f"{a.ratio:.2f}", f"{s.ratio:.2f}"]
        for a, s in zip(als, sla)
    ]
    report(
        render_table(
            ["accuracy", "ALS gain", "SLA gain"],
            rows,
            title="ALS vs SLA sensitivity to prediction accuracy (sim 1,000 kcycles/s)",
        )
    )
    # SLA degrades faster than ALS as accuracy drops (paper Section 6)
    for a, s in zip(als[1:], sla[1:]):
        assert a.ratio >= s.ratio
    als_drop = als[0].ratio / als[-1].ratio
    sla_drop = sla[0].ratio / sla[-1].ratio
    assert sla_drop > als_drop
