"""Figure 4 -- ALS performance curves, reproduced through the artifact pipeline.

Regenerates the paper's Figure 4: simulation performance versus prediction
accuracy for four configurations (simulator 100 k / 1,000 kcycles/s crossed
with LOB depth 8 / 64), with the two conventional-method reference lines.

Since the artifact-pipeline overhaul this benchmark drives the same
``figure4`` artifact spec that ``repro report`` emits: the full series grid
(including the conventional baselines) runs through the batch orchestrator
and the chart is rendered from the artifact's rows.
"""

from __future__ import annotations

from repro.analysis.artifacts import run_pipeline
from repro.analysis.metrics import monotonically_non_increasing
from repro.analysis.report import Series, render_ascii_chart, render_table
from repro.core.analytical import (
    FIGURE4_ACCURACIES,
    PAPER_CONVENTIONAL_100K,
    PAPER_CONVENTIONAL_1000K,
)

MARKERS = {
    "Sim=100k, LOBdepth=64": "a",
    "Sim=100k, LOBdepth=8": "b",
    "Sim=1000k, LOBdepth=64": "C",
    "Sim=1000k, LOBdepth=8": "D",
}


def _series_rows(artifact):
    """Group artifact rows by series label, as dicts keyed by header."""
    series = {}
    for row in artifact.rows:
        cells = dict(zip(artifact.headers, row))
        series.setdefault(cells["series"], []).append(cells)
    return series


def test_bench_figure4_reproduction(benchmark, report):
    result = benchmark(lambda: run_pipeline(names=["figure4"]))
    artifact = result.artifacts[0]
    series_rows = _series_rows(artifact)

    table_rows = []
    chart_series = []
    for label, rows in series_rows.items():
        table_rows.append(
            [label] + [f"{cells['performance'] / 1000:.1f}k" for cells in rows]
        )
        chart_series.append(
            Series(
                label=label,
                x=[cells["accuracy"] for cells in rows],
                y=[cells["performance"] for cells in rows],
                marker=MARKERS[label],
            )
        )
    header = ["series"] + [f"{p:g}" for p in FIGURE4_ACCURACIES]
    report(
        render_table(
            header,
            table_rows,
            title="Figure 4 (reproduced via the artifact pipeline): "
            "simulation performance (cycles/s) vs prediction accuracy",
        )
    )
    report(
        render_ascii_chart(
            chart_series,
            title="Figure 4 (reproduced, ASCII rendering)",
            x_label="prediction accuracy",
            y_label="simulation performance (cycles/s)",
            reference_lines={
                "conventional @ sim=1000k": PAPER_CONVENTIONAL_1000K,
                "conventional @ sim=100k": PAPER_CONVENTIONAL_100K,
            },
        )
    )

    # Shape assertions matching the paper's reading of the figure.
    for label, rows in series_rows.items():
        assert monotonically_non_increasing(
            [cells["performance"] for cells in rows]
        ), label
    deep_fast = series_rows["Sim=1000k, LOBdepth=64"]
    shallow_fast = series_rows["Sim=1000k, LOBdepth=8"]
    deep_slow = series_rows["Sim=100k, LOBdepth=64"]
    # deeper LOB helps at p = 1 and hurts at p = 0.1
    assert deep_fast[0]["performance"] > shallow_fast[0]["performance"]
    assert deep_fast[-1]["performance"] < shallow_fast[-1]["performance"]
    # the faster simulator gets the larger relative gain
    assert deep_fast[0]["gain"] > deep_slow[0]["gain"]
    # at p = 1 every configuration beats its conventional reference line
    for rows in series_rows.values():
        assert rows[0]["performance"] > rows[0]["conventional_performance"]
