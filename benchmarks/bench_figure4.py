"""Figure 4 -- ALS performance curves.

Regenerates the paper's Figure 4: simulation performance versus prediction
accuracy for four configurations (simulator 100 k / 1,000 kcycles/s crossed
with LOB depth 8 / 64), with the two conventional-method reference lines.
"""

from __future__ import annotations

from repro.analysis.metrics import monotonically_non_increasing
from repro.analysis.report import Series, render_ascii_chart, render_table
from repro.core.analytical import (
    FIGURE4_ACCURACIES,
    PAPER_CONVENTIONAL_100K,
    PAPER_CONVENTIONAL_1000K,
    figure4,
)


MARKERS = {
    "Sim=100k, LOBdepth=64": "a",
    "Sim=100k, LOBdepth=8": "b",
    "Sim=1000k, LOBdepth=64": "C",
    "Sim=1000k, LOBdepth=8": "D",
}


def test_bench_figure4_reproduction(benchmark, report):
    series_estimates = benchmark(figure4)

    table_rows = []
    chart_series = []
    for label, estimates in series_estimates.items():
        table_rows.append(
            [label]
            + [f"{estimate.performance / 1000:.1f}k" for estimate in estimates]
        )
        chart_series.append(
            Series(
                label=label,
                x=[e.prediction_accuracy for e in estimates],
                y=[e.performance for e in estimates],
                marker=MARKERS[label],
            )
        )
    header = ["series"] + [f"{p:g}" for p in FIGURE4_ACCURACIES]
    report(
        render_table(
            header,
            table_rows,
            title="Figure 4 (reproduced): simulation performance (cycles/s) vs prediction accuracy",
        )
    )
    report(
        render_ascii_chart(
            chart_series,
            title="Figure 4 (reproduced, ASCII rendering)",
            x_label="prediction accuracy",
            y_label="simulation performance (cycles/s)",
            reference_lines={
                "conventional @ sim=1000k": PAPER_CONVENTIONAL_1000K,
                "conventional @ sim=100k": PAPER_CONVENTIONAL_100K,
            },
        )
    )

    # Shape assertions matching the paper's reading of the figure.
    for label, estimates in series_estimates.items():
        performances = [e.performance for e in estimates]
        assert monotonically_non_increasing(performances), label
    deep_fast = series_estimates["Sim=1000k, LOBdepth=64"]
    shallow_fast = series_estimates["Sim=1000k, LOBdepth=8"]
    deep_slow = series_estimates["Sim=100k, LOBdepth=64"]
    # deeper LOB helps at p = 1 and hurts at p = 0.1
    assert deep_fast[0].performance > shallow_fast[0].performance
    assert deep_fast[-1].performance < shallow_fast[-1].performance
    # the faster simulator gets the larger relative gain
    assert deep_fast[0].ratio > deep_slow[0].ratio
    # at p = 1 every configuration beats its conventional reference line
    for estimates in series_estimates.values():
        assert estimates[0].performance > estimates[0].conventional_performance
