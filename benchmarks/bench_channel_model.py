"""Channel characterisation (paper Section 1.2).

Regenerates the consequences of the measured channel constants: per-access
cost as a function of payload size, the break-even payload, and the share of
a conventional cycle spent on startup overhead.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.channel.phy import ChannelDirection, ChannelTimingParams


def test_bench_channel_access_cost_curve(benchmark, report):
    params = ChannelTimingParams()
    payloads = [1, 2, 5, 8, 16, 64, 256, 1024]

    def compute():
        return {
            words: (
                params.access_time(ChannelDirection.SIM_TO_ACC, words),
                params.access_time(ChannelDirection.ACC_TO_SIM, words),
            )
            for words in payloads
        }

    costs = benchmark(compute)
    rows = []
    for words, (to_acc, to_sim) in costs.items():
        rows.append(
            [
                str(words),
                f"{to_acc * 1e6:.2f}",
                f"{to_sim * 1e6:.2f}",
                f"{params.startup_overhead / to_acc * 100:.1f}%",
            ]
        )
    report(
        render_table(
            ["words", "sim->acc (us)", "acc->sim (us)", "startup share"],
            rows,
            title="Channel access cost vs payload size (startup 12.2 us, "
            "49.95 / 75.73 ns per word)",
        )
    )
    # a 5-word conventional exchange is >95% startup overhead
    five_word = costs[5][0]
    assert params.startup_overhead / five_word > 0.95
    # the break-even payload is far larger than any single-cycle exchange
    assert params.breakeven_words(ChannelDirection.SIM_TO_ACC) > 200
