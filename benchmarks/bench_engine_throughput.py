"""Engine-throughput benchmark: committed target cycles per wall-clock second.

Unlike the other benchmarks (which reproduce the paper's *modelled* numbers),
this harness measures how fast the reproduction's engines themselves execute
on the host: mechanism-level runs of the conventional, ALS and SLA engines on
the streaming SoCs, across prediction accuracies and LOB depths.  It is the
regression guard for hot-path work (snapshot-free checkpointing, cached bus
phase info, count-based channel charging, ...).

Usage::

    python benchmarks/bench_engine_throughput.py                  # measure, print
    python benchmarks/bench_engine_throughput.py --emit           # + write BENCH_engine.json
    python benchmarks/bench_engine_throughput.py --check [PATH]   # fail on >20% regression
    python benchmarks/bench_engine_throughput.py --quick          # smoke subset (CI)

The emitted ``BENCH_engine.json`` is committed to the repository so future
PRs can track the throughput trajectory; ``--check`` compares a fresh
measurement against it and exits non-zero when any scenario regresses by more
than ``--tolerance`` (default 20%).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import create_engine  # noqa: E402
from repro.orchestration import RunRequest  # noqa: E402
from repro.workloads.catalog import build_scenario  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_engine.json"
DEFAULT_TOLERANCE = 0.20


@dataclass
class Scenario:
    """One benchmark configuration: a run request plus its baseline key."""

    key: str
    request: RunRequest
    quick: bool = False  # included in the CI smoke subset


def _request(scenario: str, mode: str, params: Optional[dict] = None, **kwargs) -> RunRequest:
    return RunRequest(
        scenario=scenario,
        mode=mode,
        cycles=5000,
        scenario_params={"n_bursts": 400} if params is None else params,
        **kwargs,
    )


#: Builder kwargs for the sparse_telemetry points: the default catalog sizing
#: drains long before 5000 cycles; this keeps periodic traffic alive across
#: the whole run while leaving it idle-dominated (one short burst per period).
_SPARSE = {"n_samples": 160, "period": 24}

#: Sparser variant (~94% idle cycles): the regime where quiescence
#: fast-forwarding approaches its Amdahl ceiling.
_SPARSE64 = {"n_samples": 70, "period": 64}

#: single_master with a short workload: most of the 5000-cycle run is the
#: drained tail, which the batch engines skip in O(1) dispatches.
_SINGLE = {"n_bursts": 40}

SCENARIOS: List[Scenario] = [
    Scenario("conventional/als_soc", _request("als_streaming", "conservative"), quick=True),
    Scenario("als/acc=1.0/lob=64", _request("als_streaming", "als"), quick=True),
    Scenario("als/acc=0.95/lob=64", _request("als_streaming", "als", accuracy=0.95)),
    # Rollback-heavy case in the CI smoke subset: every ~5th prediction
    # fails, so store/restore/roll-forth dominate -- the cliff the
    # incremental-checkpointing and hot-path work guards against.
    Scenario("als/acc=0.8/lob=64", _request("als_streaming", "als", accuracy=0.8), quick=True),
    Scenario("als/acc=1.0/lob=8", _request("als_streaming", "als", lob_depth=8)),
    Scenario("als/acc=1.0/lob=256", _request("als_streaming", "als", lob_depth=256)),
    Scenario("sla/acc=1.0/lob=64", _request("sla_streaming", "sla"), quick=True),
    Scenario("sla/acc=0.9/lob=64", _request("sla_streaming", "sla", accuracy=0.9)),
    Scenario("conventional/sla_soc", _request("sla_streaming", "conservative")),
    # Scalar-vs-batch pairs: same request, batch-stepped engine.  The sparse
    # scenario is the idle-heavy regime the quiescence fast-forward targets;
    # the streaming pairs measure the batch kernel on busy traffic (gains
    # come from inter-burst gaps and the drained tail).
    Scenario(
        "conventional_batch/als_soc",
        _request("als_streaming", "conservative", engine="conventional_batch"),
        quick=True,
    ),
    Scenario(
        "als_batch/acc=1.0/lob=64",
        _request("als_streaming", "als", engine="als_batch"),
        quick=True,
    ),
    Scenario(
        "als_batch/acc=0.95/lob=64",
        _request("als_streaming", "als", accuracy=0.95, engine="als_batch"),
    ),
    # Scalar-vs-trace pairs on the dense streaming SoCs: busy periodic
    # traffic where the batch kernel finds nothing to skip but the periodic
    # trace-replay controller fast-forwards verified steady-state periods.
    # Compare against the scalar baselines in this same file
    # (conventional/als_soc, conventional/sla_soc).
    Scenario(
        "conventional_trace/als_soc",
        _request("als_streaming", "conservative", engine="conventional_trace"),
        quick=True,
    ),
    Scenario(
        "conventional_trace/sla_soc",
        _request("sla_streaming", "conservative", engine="conventional_trace"),
        quick=True,
    ),
    Scenario(
        "conventional/sparse_soc",
        _request("sparse_telemetry", "conservative", params=_SPARSE),
    ),
    Scenario(
        "conventional_batch/sparse_soc",
        _request("sparse_telemetry", "conservative", params=_SPARSE, engine="conventional_batch"),
        quick=True,
    ),
    Scenario("als/sparse_soc", _request("sparse_telemetry", "als", params=_SPARSE)),
    Scenario(
        "als_batch/sparse_soc",
        _request("sparse_telemetry", "als", params=_SPARSE, engine="als_batch"),
    ),
    Scenario(
        "conventional/sparse64_soc",
        _request("sparse_telemetry", "conservative", params=_SPARSE64),
    ),
    Scenario(
        "conventional_batch/sparse64_soc",
        _request("sparse_telemetry", "conservative", params=_SPARSE64,
                 engine="conventional_batch"),
    ),
    # Deep LOB on the sparse point: run-ahead windows span whole idle gaps,
    # so the batch engine amortises follow-up boundaries as well as cycles.
    Scenario(
        "als/sparse64/lob=256",
        _request("sparse_telemetry", "als", params=_SPARSE64, lob_depth=256),
    ),
    Scenario(
        "als_batch/sparse64/lob=256",
        _request("sparse_telemetry", "als", params=_SPARSE64, lob_depth=256,
                 engine="als_batch"),
    ),
    Scenario(
        "conventional/single_master",
        _request("single_master", "conservative", params=_SINGLE),
    ),
    Scenario(
        "conventional_batch/single_master",
        _request("single_master", "conservative", params=_SINGLE,
                 engine="conventional_batch"),
    ),
    Scenario("als/single_master", _request("single_master", "als", params=_SINGLE)),
    Scenario(
        "als_batch/single_master",
        _request("single_master", "als", params=_SINGLE, engine="als_batch"),
    ),
]


def run_scenario(scenario: Scenario, repeats: int = 3) -> dict:
    """Measure one scenario; returns the best-of-N throughput record.

    The engine run itself is timed in-process (the orchestrator's
    :func:`~repro.orchestration.execute_request` deliberately records no
    wall-clock data), so the request is unpacked here instead of going
    through the batch runner.
    """
    request = scenario.request
    best = None
    for _ in range(repeats):
        spec = build_scenario(request.scenario, **dict(request.scenario_params))
        config, partition = spec.prepare_run(request.build_config())
        engine = create_engine(config, partition=partition, engine=request.engine)
        start = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - start
        throughput = result.committed_cycles / elapsed
        if best is None or throughput > best["cycles_per_second"]:
            best = {
                "cycles_per_second": round(throughput, 1),
                "wall_seconds": round(elapsed, 4),
                "committed_cycles": result.committed_cycles,
                "rollbacks": result.transitions.get("rollbacks", 0),
                "channel_accesses": result.channel["accesses"],
            }
    return best


def measure(quick: bool = False, repeats: int = 3) -> dict:
    scenarios = [s for s in SCENARIOS if s.quick] if quick else SCENARIOS
    results = {}
    for scenario in scenarios:
        record = run_scenario(scenario, repeats=repeats)
        results[scenario.key] = record
        print(
            f"{scenario.key:32s} {record['cycles_per_second']:>12,.0f} cyc/s"
            f"  ({record['committed_cycles']} cycles in {record['wall_seconds']}s)"
        )
    return {
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenarios": results,
    }


def check(measured: dict, baseline_path: Path, tolerance: float) -> int:
    """Compare against the committed baseline; returns a process exit code."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for key, base in baseline["scenarios"].items():
        got = measured["scenarios"].get(key)
        if got is None:
            continue  # quick runs measure a subset
        floor = base["cycles_per_second"] * (1.0 - tolerance)
        status = "ok" if got["cycles_per_second"] >= floor else "REGRESSION"
        print(
            f"{key:32s} baseline {base['cycles_per_second']:>12,.0f}"
            f"  now {got['cycles_per_second']:>12,.0f}  floor {floor:>12,.0f}  {status}"
        )
        if status != "ok":
            failures.append(key)
    if failures:
        print(f"\nFAIL: {len(failures)} scenario(s) regressed >"
              f"{tolerance:.0%}: {', '.join(failures)}")
        return 1
    print(f"\nOK: no scenario regressed more than {tolerance:.0%}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--emit", action="store_true",
                        help="write the measurement to the baseline file")
    parser.add_argument("--check", nargs="?", const=str(DEFAULT_BASELINE), default=None,
                        metavar="BASELINE",
                        help="compare against a committed baseline; exit 1 on regression")
    parser.add_argument("--output", default=str(DEFAULT_BASELINE),
                        help="baseline path used by --emit (default: BENCH_engine.json)")
    parser.add_argument("--quick", action="store_true",
                        help="run the CI smoke subset only")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per scenario (best-of)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional slowdown for --check (default 0.20)")
    args = parser.parse_args(argv)

    measured = measure(quick=args.quick, repeats=args.repeats)
    if args.emit:
        output = Path(args.output)
        if output.exists():
            # Preserve sections owned by other benchmarks (e.g. "multidomain").
            merged = json.loads(output.read_text())
            merged.update(measured)
            measured = merged
        output.write_text(json.dumps(measured, indent=1, sort_keys=True) + "\n")
        print(f"\nwrote {args.output}")
    if args.check is not None:
        return check(measured, Path(args.check), args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
