"""Ablation studies on the design choices the paper calls out.

These go beyond the paper's own evaluation:

* LOB depth sweep at several accuracies (generalising Figure 4),
* channel startup-overhead sweep (how much of the gain survives on a faster
  channel -- the scheme exists *because* of the 12.2 us startup cost),
* state store/restore cost sweep (the simulator-side store cost is what
  separates SLA from ALS).
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.report import render_table
from repro.channel.phy import ChannelTimingParams
from repro.core.analytical import AnalyticalConfig, conventional_performance, estimate_performance
from repro.core.modes import OperatingMode
from repro.sim.checkpoint import StateCostModel


def test_bench_ablation_lob_depth(benchmark, report):
    depths = (1, 4, 8, 16, 32, 64, 128, 256)
    accuracies = (1.0, 0.99, 0.9, 0.6)

    def compute():
        table = {}
        for accuracy in accuracies:
            table[accuracy] = [
                estimate_performance(
                    AnalyticalConfig(prediction_accuracy=accuracy, lob_depth=depth)
                ).ratio
                for depth in depths
            ]
        return table

    table = benchmark(compute)
    rows = [
        [f"p={accuracy:g}"] + [f"{ratio:.2f}" for ratio in ratios]
        for accuracy, ratios in table.items()
    ]
    report(
        render_table(
            ["accuracy \\ LOB depth"] + [str(d) for d in depths],
            rows,
            title="Ablation: gain over conventional vs LOB depth (ALS, sim 1,000 kcycles/s)",
        )
    )
    # At perfect accuracy the gain grows monotonically with depth...
    assert table[1.0] == sorted(table[1.0])
    # ...but at 60 % accuracy the optimum is an intermediate depth.
    best_depth_index = table[0.6].index(max(table[0.6]))
    assert 0 < best_depth_index < len(depths) - 1


def test_bench_ablation_channel_startup(benchmark, report):
    startups = (12.2e-6, 6e-6, 2e-6, 1e-6, 0.2e-6, 0.0)

    def compute():
        rows = []
        for startup in startups:
            channel = ChannelTimingParams(
                startup_overhead=startup,
                sim_to_acc_word_time=49.95e-9,
                acc_to_sim_word_time=75.73e-9,
            )
            config = AnalyticalConfig(prediction_accuracy=1.0, channel=channel)
            optimistic = estimate_performance(config)
            conventional = conventional_performance(config)
            rows.append((startup, optimistic.performance, conventional, optimistic.ratio))
        return rows

    data = benchmark(compute)
    report(
        render_table(
            ["startup (us)", "optimistic (cycles/s)", "conventional (cycles/s)", "gain"],
            [
                [f"{startup * 1e6:.1f}", f"{opt:.0f}", f"{conv:.0f}", f"{gain:.2f}"]
                for startup, opt, conv, gain in data
            ],
            title="Ablation: the gain exists because of the channel startup overhead",
        )
    )
    gains = [gain for _, _, _, gain in data]
    # the gain shrinks monotonically as the startup overhead vanishes
    assert gains == sorted(gains, reverse=True)
    assert gains[0] > 10.0
    assert gains[-1] < 1.5


def test_bench_ablation_state_store_cost(benchmark, report):
    per_variable_costs = (0.0, 1e-9, 10e-9, 100e-9, 1e-6)

    def compute():
        rows = []
        for cost in per_variable_costs:
            config = AnalyticalConfig(
                mode=OperatingMode.SLA,
                prediction_accuracy=0.99,
                simulator_state_costs=StateCostModel(
                    store_time_per_variable=cost, restore_time_per_variable=cost
                ),
            )
            rows.append((cost, estimate_performance(config).ratio))
        return rows

    data = benchmark(compute)
    report(
        render_table(
            ["store cost per variable (s)", "SLA gain at p=0.99"],
            [[f"{cost:.1e}", f"{gain:.2f}"] for cost, gain in data],
            title="Ablation: SLA gain vs simulator state-store cost (1,000 rollback variables)",
        )
    )
    gains = [gain for _, gain in data]
    assert gains == sorted(gains, reverse=True)
    # with a microsecond-per-variable store the scheme loses most of its gain
    assert gains[0] / gains[-1] > 2.0


def test_bench_ablation_rollback_variable_count(benchmark, report):
    variable_counts = (10, 100, 1000, 10_000, 100_000)

    def compute():
        return [
            (
                count,
                estimate_performance(
                    replace(
                        AnalyticalConfig(mode=OperatingMode.SLA, prediction_accuracy=0.9),
                        rollback_variables=count,
                    )
                ).ratio,
            )
            for count in variable_counts
        ]

    data = benchmark(compute)
    report(
        render_table(
            ["rollback variables", "SLA gain at p=0.9"],
            [[str(count), f"{gain:.2f}"] for count, gain in data],
            title="Ablation: sensitivity to the number of rollback variables",
        )
    )
    gains = [gain for _, gain in data]
    assert gains == sorted(gains, reverse=True)
