"""Fleet-sweep scaling benchmark: wall-clock vs local worker count.

Runs one fixed sweep grid through :func:`repro.orchestration.run_fleet` at
increasing worker counts (1 -> 8 by default) against a fresh cache each
time, and reports wall-clock, aggregate points/s, speedup over one worker
and the claim-protocol overhead counters.  Every run's reconciled store is
digest-checked against the serial (``BatchRunner(jobs=1)``) reference, so
the scaling numbers are only ever reported for byte-identical output.

Numbers here are wall-clock (process spawn, lease I/O and polling included)
and therefore noisy by nature; this harness deliberately has no ``--check``
CI gate, unlike the engine-throughput benchmarks.  On a single-core host the
whole curve is flat by physics -- compare against ``BatchRunner`` at the
same ``--jobs`` before blaming the claim protocol.

Usage::

    python benchmarks/bench_fleet.py                # 1 2 4 8 workers
    python benchmarks/bench_fleet.py --quick        # smaller grid, 1 2 workers
    python benchmarks/bench_fleet.py --workers 1 4  # explicit curve
    python benchmarks/bench_fleet.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.orchestration import (  # noqa: E402
    BatchRunner,
    RunStore,
    grid_requests,
    run_fleet,
)


def bench_grid(quick: bool = False) -> list:
    """A heterogeneous grid big enough that stealing matters.

    Mixing scenarios, modes and a rollback-heavy forced accuracy gives the
    points a wide per-point cost spread -- the load shape work-stealing is
    for.  The quick grid trades points for CI wall-clock.
    """
    if quick:
        return grid_requests(
            scenarios=["single_master", "mixed"],
            modes=["conservative", "als"],
            lob_depths=[8, 64],
            cycles=200,
        )
    # Per-point cost must dwarf worker spawn + lease I/O (~100ms) or the
    # curve measures process startup, not the protocol: 6000 cycles puts a
    # point at a few hundred ms on a typical host.
    return grid_requests(
        scenarios=["single_master", "mixed", "als_streaming"],
        modes=["conservative", "als"],
        accuracies=[None, 0.9],
        lob_depths=[8, 64],
        cycles=6000,
    )


def measure(workers_curve: List[int], quick: bool = False) -> List[dict]:
    grid = bench_grid(quick)
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        root = Path(tmp)
        reference = RunStore(root / "reference.jsonl")
        start = time.perf_counter()
        reference.write(BatchRunner(jobs=1).run(grid))
        serial_seconds = time.perf_counter() - start
        reference_digest = reference.digest()
        print(
            f"grid: {len(grid)} point(s), serial reference "
            f"{serial_seconds:.2f}s ({len(grid) / serial_seconds:.2f} points/s)"
        )

        results = []
        base_seconds: Optional[float] = None
        for workers in workers_curve:
            cache_dir = root / f"cache-{workers}"
            store = RunStore(root / f"fleet-{workers}.jsonl")
            start = time.perf_counter()
            _, stats = run_fleet(
                grid, cache_dir, workers=workers, store=store, poll_interval=0.05
            )
            elapsed = time.perf_counter() - start
            if store.digest() != reference_digest:
                raise AssertionError(
                    f"fleet store with {workers} worker(s) is not byte-identical "
                    "to the serial reference"
                )
            if base_seconds is None:
                base_seconds = elapsed
            row = {
                "workers": workers,
                "wall_seconds": round(elapsed, 3),
                "points_per_second": round(len(grid) / elapsed, 2),
                "speedup_vs_1": round(base_seconds / elapsed, 2),
                "executed": stats.total("executed"),
                "stolen": stats.total("stolen"),
                "deduped": stats.total("deduped"),
                "reconcile_passes": stats.reconcile_passes,
            }
            results.append(row)
            print(
                f"workers={workers:<2d} wall {row['wall_seconds']:>7.3f}s"
                f"  {row['points_per_second']:>7.2f} points/s"
                f"  speedup x{row['speedup_vs_1']:<5.2f}"
                f"  executed {row['executed']}"
                f"  stolen {row['stolen']}  (byte-identical OK)"
            )
        return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, nargs="+", default=None, metavar="N",
        help="worker counts to measure (default: 1 2 4 8; quick: 1 2)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid and curve (CI smoke)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the measurements as JSON")
    args = parser.parse_args(argv)

    curve = args.workers
    if curve is None:
        curve = [1, 2] if args.quick else [1, 2, 4, 8]
    results = measure(curve, quick=args.quick)
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=1) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
