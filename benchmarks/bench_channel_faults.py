"""Imperfect-channel degradation benchmarks.

Measures (a) the raw overhead of the fault-injection + selective-repeat path
relative to the ideal ``_charge_channel`` hot path, and (b) the degradation
curves of both synchronisation mechanisms as frame loss rises.  The headline
is the robustness corollary of the paper's traffic argument: the optimistic
scheme pays far fewer channel accesses, so the same loss rate costs it far
less absolute retransmission time than the conventional scheme.
"""

from __future__ import annotations

from repro.analysis.degradation import loss_rate_sweep
from repro.analysis.report import render_table
from repro.channel.driver import ChannelEndpoint
from repro.channel.faults import ChannelFaultConfig, ChannelFaultInjector
from repro.channel.phy import ChannelDirection
from repro.channel.reliability import SelectiveRepeatLink
from repro.channel.stats import FaultStats
from repro.core.coemulation import CoEmulationConfig
from repro.workloads.catalog import build_scenario


def _make_link(config: ChannelFaultConfig) -> SelectiveRepeatLink:
    channel = ChannelEndpoint(keep_log=False)
    channel.stats.faults = FaultStats()
    injector = ChannelFaultInjector(
        config, config.derive_rng("bench", "sim_to_acc"), stats=channel.stats.faults
    )
    return SelectiveRepeatLink(channel, ChannelDirection.SIM_TO_ACC, config, injector)


def test_bench_fault_injection_overhead(benchmark, report):
    """Host-side cost of one modelled selective-repeat delivery."""
    config = ChannelFaultConfig(
        loss_rate=0.02,
        duplicate_rate=0.01,
        corruption_rate=0.005,
        reorder_rate=0.02,
        jitter_mean=0.5e-6,
        jitter_spread=1.0e-6,
        seed=5,
    )
    n = 5_000

    def deliver_batch():
        link = _make_link(config)
        total = 0.0
        for cycle in range(n):
            total += link.deliver(4, "bench", cycle)
        return link, total

    link, total = benchmark(deliver_batch)
    stats = link.stats.as_dict()
    ideal = ChannelEndpoint(keep_log=False)
    ideal_total = sum(
        ideal.charge(ChannelDirection.SIM_TO_ACC, 4, purpose="bench", target_cycle=c)
        for c in range(n)
    )
    report(
        render_table(
            ["quantity", "value"],
            [
                ["messages", str(n)],
                ["wire attempts", str(stats["attempts"])],
                ["retransmissions", str(stats["retransmissions"])],
                ["modelled time (faulty)", f"{total:.4f} s"],
                ["modelled time (ideal)", f"{ideal_total:.4f} s"],
                ["modelled inflation", f"{total / ideal_total:.2f}x"],
            ],
            title="Selective-repeat delivery over a 2% lossy link (5k messages)",
        )
    )
    # every message delivered despite faults, at a bounded modelled premium
    assert stats["attempts"] >= n
    assert total > ideal_total


def test_bench_degradation_curves(benchmark, report):
    """Mechanism performance vs loss rate on the mixed workload."""
    spec = build_scenario("mixed")
    base = CoEmulationConfig(total_cycles=300)
    faults = ChannelFaultConfig(max_attempts=20, seed=9)
    loss_rates = [0.0, 0.01, 0.05, 0.15]

    points = benchmark.pedantic(
        lambda: loss_rate_sweep(spec, base, loss_rates, base_faults=faults),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            point.mode,
            f"{point.loss_rate:.2f}",
            f"{point.performance / 1000:.1f}k",
            f"{point.relative_performance:.3f}",
            str(point.channel_accesses),
            str(point.retransmissions),
        ]
        for point in points
    ]
    report(
        render_table(
            ["mode", "loss", "performance", "relative", "accesses", "retx"],
            rows,
            title="Degradation vs frame loss ('mixed', 300 cycles)",
        )
    )
    by_mode = {}
    for point in points:
        by_mode.setdefault(point.mode, []).append(point)
    for mode, series in by_mode.items():
        # no give-ups at these rates, and performance falls monotonically
        assert all(not p.gave_up for p in series), mode
        perfs = [p.performance for p in series]
        assert perfs == sorted(perfs, reverse=True), mode
    # ALS suffers fewer absolute retransmissions than conservative at equal loss
    worst = loss_rates[-1]
    cons = next(p for p in points if p.mode == "conservative" and p.loss_rate == worst)
    als = next(p for p in points if p.mode == "als" and p.loss_rate == worst)
    assert als.retransmissions < cons.retransmissions
