"""Multi-domain throughput benchmark: engine speed vs domain count.

The topology layer generalises the engines from the hard-wired two-domain
pair to N-domain co-emulation; this harness measures what that costs on the
host.  For each domain count it runs the ``accelerator_farm_4x`` scenario
(one simulation host plus 1..4 accelerators) and the single-domain
``sim_only_baseline`` under both the conventional lock-step engine (whose
modelled channel traffic grows with the number of ordered domain pairs) and
the ALS engine (whose optimistic windows amortise it).

Usage::

    python benchmarks/bench_multidomain.py                  # measure, print
    python benchmarks/bench_multidomain.py --emit           # update BENCH_engine.json
    python benchmarks/bench_multidomain.py --check [PATH]   # fail on >30% regression
    python benchmarks/bench_multidomain.py --quick          # smoke subset

The results live under the ``multidomain`` key of ``BENCH_engine.json``,
next to (and preserved by) the two-domain engine-throughput baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import create_engine  # noqa: E402
from repro.orchestration import RunRequest  # noqa: E402
from repro.workloads.catalog import build_scenario  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_engine.json"
DEFAULT_TOLERANCE = 0.30
BENCH_CYCLES = 2000


def bench_points(quick: bool = False) -> List[dict]:
    """(key, request) pairs: domain counts x {conventional, als}."""
    points = []
    for mode in ("conservative", "als"):
        points.append(
            {
                "key": f"{mode}/domains=1",
                "request": RunRequest(
                    scenario="sim_only_baseline",
                    mode=mode,
                    cycles=BENCH_CYCLES,
                    scenario_params={"n_bursts": 40},
                ),
                "domains": 1,
                "quick": True,
            }
        )
        for n_accelerators in (1, 2, 4):
            points.append(
                {
                    "key": f"{mode}/domains={1 + n_accelerators}",
                    "request": RunRequest(
                        scenario="accelerator_farm_4x",
                        mode=mode,
                        cycles=BENCH_CYCLES,
                        scenario_params={"n_accelerators": n_accelerators, "n_bursts": 40},
                    ),
                    "domains": 1 + n_accelerators,
                    "quick": n_accelerators in (1, 4),
                }
            )
    # Rollback-heavy multi-domain point: forced mispredictions make every
    # transition store, flush, roll back and roll forth across a 3-domain
    # mesh -- the combination of both cliffs this benchmark guards.
    points.append(
        {
            "key": "als/domains=3/acc=0.9",
            "request": RunRequest(
                scenario="accelerator_farm_4x",
                mode="als",
                cycles=BENCH_CYCLES,
                accuracy=0.9,
                scenario_params={"n_accelerators": 2, "n_bursts": 40},
            ),
            "domains": 3,
            "quick": True,
        }
    )
    if quick:
        points = [point for point in points if point["quick"]]
    return points


def run_point(point: dict, repeats: int = 3) -> dict:
    """Best-of-N wall-clock throughput for one (mode, domain-count) point."""
    request = point["request"]
    best = None
    for _ in range(repeats):
        spec = build_scenario(request.scenario, **dict(request.scenario_params))
        config, partition = spec.prepare_run(request.build_config())
        engine = create_engine(config, partition=partition)
        start = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - start
        throughput = result.committed_cycles / elapsed
        if best is None or throughput > best["cycles_per_second"]:
            best = {
                "cycles_per_second": round(throughput, 1),
                "wall_seconds": round(elapsed, 4),
                "committed_cycles": result.committed_cycles,
                "domains": point["domains"],
                "channel_accesses": result.channel["accesses"],
                "rollbacks": result.transitions.get("rollbacks", 0),
            }
    return best


def measure(quick: bool = False, repeats: int = 3) -> Dict[str, dict]:
    results: Dict[str, dict] = {}
    for point in bench_points(quick):
        record = run_point(point, repeats=repeats)
        results[point["key"]] = record
        print(
            f"{point['key']:28s} {record['cycles_per_second']:>12,.0f} cyc/s"
            f"  ({record['domains']} domain(s), "
            f"{record['channel_accesses']} channel accesses)"
        )
    return results


def check(measured: Dict[str, dict], baseline_path: Path, tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text()).get("multidomain", {})
    if not baseline:
        print(f"no 'multidomain' baseline in {baseline_path}; run --emit first")
        return 1
    failures = []
    for key, base in baseline.items():
        got = measured.get(key)
        if got is None:
            continue  # quick runs measure a subset
        floor = base["cycles_per_second"] * (1.0 - tolerance)
        status = "ok" if got["cycles_per_second"] >= floor else "REGRESSION"
        print(
            f"{key:28s} baseline {base['cycles_per_second']:>12,.0f}"
            f"  now {got['cycles_per_second']:>12,.0f}  floor {floor:>12,.0f}  {status}"
        )
        if status != "ok":
            failures.append(key)
    if failures:
        print(f"\nFAIL: {len(failures)} point(s) regressed >"
              f"{tolerance:.0%}: {', '.join(failures)}")
        return 1
    print(f"\nOK: no multi-domain point regressed more than {tolerance:.0%}")
    return 0


def emit(measured: Dict[str, dict], output: Path) -> None:
    payload = json.loads(output.read_text()) if output.exists() else {"schema": 1}
    payload["multidomain"] = measured
    output.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"\nwrote {output}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--emit", action="store_true",
                        help="write the measurement into the baseline file")
    parser.add_argument("--check", nargs="?", const=str(DEFAULT_BASELINE), default=None,
                        metavar="BASELINE",
                        help="compare against the committed baseline; exit 1 on regression")
    parser.add_argument("--output", default=str(DEFAULT_BASELINE),
                        help="baseline path used by --emit (default: BENCH_engine.json)")
    parser.add_argument("--quick", action="store_true",
                        help="run the smoke subset only")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per point (best-of)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional slowdown for --check (default 0.30)")
    args = parser.parse_args(argv)

    measured = measure(quick=args.quick, repeats=args.repeats)
    if args.emit:
        emit(measured, Path(args.output))
    if args.check is not None:
        return check(measured, Path(args.check), args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
