"""Mechanism-level cross-check of the paper's evaluation.

The paper's numbers come from an analytical model; this benchmark runs the
actual protocol implementation (half bus models, channel wrappers, LOB,
prediction and rollback) over a synthetic SoC, sweeping the injected
prediction accuracy, and checks that the mechanism shows the same trends:
large gain at high accuracy, monotone degradation, and channel-access
reduction as the source of the gain.

The grid itself runs through the batch orchestrator
(:class:`~repro.orchestration.BatchRunner`), the same machinery behind
``python -m repro sweep``; functional equivalence across the sweep is
checked via the records' committed-traffic digests.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.orchestration import BatchRunner, RunRequest

ACCURACIES = (1.0, 0.99, 0.9, 0.8, 0.6, 0.3)
CYCLES = 400
SOC_PARAMS = {"n_bursts": 10}


def _requests():
    conventional = RunRequest(
        scenario="als_streaming",
        mode="conservative",
        cycles=CYCLES,
        scenario_params=SOC_PARAMS,
        label="conventional",
    )
    points = [
        RunRequest(
            scenario="als_streaming",
            mode="als",
            cycles=CYCLES,
            accuracy=accuracy,
            scenario_params=SOC_PARAMS,
            label=f"p={accuracy:g}",
        )
        for accuracy in ACCURACIES
    ]
    return conventional, points


def test_bench_mechanism_accuracy_sweep(benchmark, report):
    conventional_request, point_requests = _requests()

    def compute():
        records = BatchRunner(jobs=1).run([conventional_request, *point_requests])
        return records[0], records[1:]

    conventional, points = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for record in points:
        rows.append(
            [
                record.label,
                f"{record.performance / 1000:.1f}k",
                f"{record.performance / conventional.performance:.2f}",
                str(record.channel["accesses"]),
                str(record.transitions["rollbacks"]),
                f"{record.prediction['accuracy']:.3f}",
            ]
        )
    rows.append(
        [
            "conventional",
            f"{conventional.performance / 1000:.1f}k",
            "1.00",
            str(conventional.channel["accesses"]),
            "0",
            "-",
        ]
    )
    report(
        render_table(
            ["config", "performance", "gain", "channel accesses", "rollbacks", "measured accuracy"],
            rows,
            title=f"Mechanism-level ALS sweep ({CYCLES} target cycles, ALS-friendly SoC)",
        )
    )

    performances = [record.performance for record in points]
    assert performances == sorted(performances, reverse=True)
    assert points[0].performance / conventional.performance > 5.0
    assert points[0].channel["accesses"] < conventional.channel["accesses"] / 10
    # rollbacks appear as soon as failures are injected
    assert points[2].transitions["rollbacks"] > 0
    # functional equivalence across the whole sweep
    for record in points:
        assert record.beat_digest == conventional.beat_digest


def test_bench_mechanism_traffic_reduction(benchmark, report):
    """Channel traffic accounting: the optimistic scheme replaces thousands of
    tiny transfers with a few large ones."""

    def compute():
        records = BatchRunner(jobs=1).run(
            [
                RunRequest(
                    scenario="als_streaming",
                    mode="conservative",
                    cycles=CYCLES,
                    scenario_params=SOC_PARAMS,
                ),
                RunRequest(
                    scenario="als_streaming",
                    mode="als",
                    cycles=CYCLES,
                    scenario_params=SOC_PARAMS,
                ),
            ]
        )
        return records[0], records[1]

    conventional, optimistic = benchmark.pedantic(compute, rounds=1, iterations=1)
    from repro.analysis.report import format_quantity

    rows = [
        [
            "conventional",
            str(conventional.channel["accesses"]),
            f"{conventional.channel['words_per_access']:.1f}",
            format_quantity(conventional.channel["startup_time"]),
            format_quantity(conventional.per_cycle_times["channel"]),
        ],
        [
            "optimistic (ALS)",
            str(optimistic.channel["accesses"]),
            f"{optimistic.channel['words_per_access']:.1f}",
            format_quantity(optimistic.channel["startup_time"]),
            format_quantity(optimistic.per_cycle_times["channel"]),
        ],
    ]
    report(
        render_table(
            ["scheme", "accesses", "words/access", "total startup time (s)", "Tch per cycle (s)"],
            rows,
            title="Channel traffic: conventional vs prediction packetizing",
        )
    )
    assert optimistic.channel["accesses"] < conventional.channel["accesses"] / 10
    assert optimistic.channel["words_per_access"] > 10 * conventional.channel["words_per_access"]
    assert (
        optimistic.per_cycle_times["channel"]
        < conventional.per_cycle_times["channel"] / 5
    )
