"""Mechanism-level cross-check of the paper's evaluation.

The paper's numbers come from an analytical model; this benchmark runs the
actual protocol implementation (half bus models, channel wrappers, LOB,
prediction and rollback) over a synthetic SoC, sweeping the injected
prediction accuracy, and checks that the mechanism shows the same trends:
large gain at high accuracy, monotone degradation, and channel-access
reduction as the source of the gain.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.sweep import accuracy_sweep_mechanism, run_engine
from repro.core import CoEmulationConfig, OperatingMode
from repro.workloads import als_streaming_soc


ACCURACIES = (1.0, 0.99, 0.9, 0.8, 0.6, 0.3)
CYCLES = 400


def test_bench_mechanism_accuracy_sweep(benchmark, report):
    spec = als_streaming_soc(n_bursts=10)
    base = CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=CYCLES)

    def compute():
        conventional = run_engine(
            spec, CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=CYCLES)
        )
        points = accuracy_sweep_mechanism(spec, base, ACCURACIES)
        return conventional, points

    conventional, points = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for point in points:
        result = point.result
        rows.append(
            [
                point.label,
                f"{result.performance_cycles_per_second / 1000:.1f}k",
                f"{result.speedup_over(conventional):.2f}",
                str(result.channel["accesses"]),
                str(result.transitions["rollbacks"]),
                f"{result.prediction['accuracy']:.3f}",
            ]
        )
    rows.append(
        [
            "conventional",
            f"{conventional.performance_cycles_per_second / 1000:.1f}k",
            "1.00",
            str(conventional.channel["accesses"]),
            "0",
            "-",
        ]
    )
    report(
        render_table(
            ["config", "performance", "gain", "channel accesses", "rollbacks", "measured accuracy"],
            rows,
            title=f"Mechanism-level ALS sweep ({CYCLES} target cycles, ALS-friendly SoC)",
        )
    )

    performances = [p.result.performance_cycles_per_second for p in points]
    assert performances == sorted(performances, reverse=True)
    assert points[0].result.speedup_over(conventional) > 5.0
    assert points[0].result.channel["accesses"] < conventional.channel["accesses"] / 10
    # rollbacks appear as soon as failures are injected
    assert points[2].result.transitions["rollbacks"] > 0
    # functional equivalence across the whole sweep
    reference_keys = conventional.sim_beat_keys
    for point in points:
        assert point.result.sim_beat_keys == reference_keys


def test_bench_mechanism_traffic_reduction(benchmark, report):
    """Channel traffic accounting: the optimistic scheme replaces thousands of
    tiny transfers with a few large ones."""
    spec = als_streaming_soc(n_bursts=10)

    def compute():
        conventional = run_engine(
            spec, CoEmulationConfig(mode=OperatingMode.CONSERVATIVE, total_cycles=CYCLES)
        )
        optimistic = run_engine(
            spec, CoEmulationConfig(mode=OperatingMode.ALS, total_cycles=CYCLES)
        )
        return conventional, optimistic

    conventional, optimistic = benchmark.pedantic(compute, rounds=1, iterations=1)
    from repro.analysis.report import format_quantity

    rows = [
        [
            "conventional",
            str(conventional.channel["accesses"]),
            f"{conventional.channel['words_per_access']:.1f}",
            format_quantity(conventional.channel["startup_time"]),
            format_quantity(conventional.tchannel),
        ],
        [
            "optimistic (ALS)",
            str(optimistic.channel["accesses"]),
            f"{optimistic.channel['words_per_access']:.1f}",
            format_quantity(optimistic.channel["startup_time"]),
            format_quantity(optimistic.tchannel),
        ],
    ]
    report(
        render_table(
            ["scheme", "accesses", "words/access", "total startup time (s)", "Tch per cycle (s)"],
            rows,
            title="Channel traffic: conventional vs prediction packetizing",
        )
    )
    assert optimistic.channel["accesses"] < conventional.channel["accesses"] / 10
    assert optimistic.channel["words_per_access"] > 10 * conventional.channel["words_per_access"]
    assert optimistic.tchannel < conventional.tchannel / 5
