"""Table 2 -- Performance of ALS, reproduced through the artifact pipeline.

Regenerates the paper's Table 2: per-cycle time breakdown (Tsim., Tacc.,
Tstore, Trest., Tch.), absolute performance and the ratio over the
conventional scheme, as a function of prediction accuracy, for the paper's
environment (simulator 1,000 kcycles/s, accelerator 10 Mcycles/s, LOB depth
64, 1,000 rollback variables).

Since the artifact-pipeline overhaul this benchmark drives the same
``table2`` artifact spec that ``repro report`` emits: requests go through
the batch orchestrator and the analytical pseudo-engine, and the rendered
table is read back from the artifact's rows.  A second benchmark measures
the warm-cache path, where the whole reproduction is index lookups.
"""

from __future__ import annotations

from repro.analysis.artifacts import run_pipeline
from repro.analysis.metrics import PaperComparison
from repro.analysis.report import render_comparison, render_table, render_transposed_table
from repro.core.analytical import PAPER_ALS_MAX_GAIN_1000K, PAPER_TABLE2
from repro.orchestration import ResultCache


def _column(artifact, name):
    index = artifact.headers.index(name)
    return [row[index] for row in artifact.rows]


def test_bench_table2_reproduction(benchmark, report):
    result = benchmark(lambda: run_pipeline(names=["table2"]))
    artifact = result.artifacts[0]

    accuracies = _column(artifact, "accuracy")
    columns = {
        f"{accuracy:.3f}": [
            row[artifact.headers.index(key)]
            for key in (
                "t_sim",
                "t_acc",
                "t_store",
                "t_restore",
                "t_channel",
                "performance",
                "ratio",
            )
        ]
        for accuracy, row in zip(accuracies, artifact.rows)
    }
    report(
        render_transposed_table(
            ["Tsim.", "Tacc.", "Tstore", "Trest.", "Tch.", "Perform.", "Ratio"],
            columns,
            title="Table 2 (reproduced via the artifact pipeline): Performance of ALS "
            "(sim 1,000 kcycles/s, acc 10 Mcycles/s, LOB 64, 1,000 rollback variables)",
        )
    )

    comparison = PaperComparison.from_mappings(
        "Table 2 performance: paper vs reproduction",
        paper={f"p={p:.3f}": PAPER_TABLE2[round(p, 3)]["performance"] for p in accuracies},
        measured={
            f"p={p:.3f}": perf
            for p, perf in zip(accuracies, _column(artifact, "performance"))
        },
    )
    report(render_comparison(comparison.title, comparison.as_dicts()))

    # Shape assertions: monotone decline, headline gain, crossover location.
    performances = _column(artifact, "performance")
    ratios = _column(artifact, "ratio")
    assert performances == sorted(performances, reverse=True)
    assert ratios[0] > 15.0  # "1500%" headline at p = 1
    assert abs(ratios[0] - PAPER_ALS_MAX_GAIN_1000K) / PAPER_ALS_MAX_GAIN_1000K < 0.05
    assert ratios[-1] < 1.1  # ~break-even at p = 0.1
    assert comparison.max_error() < 0.30


def test_bench_table2_warm_cache_is_lookup_only(benchmark, report, tmp_path):
    """With a warm result cache the whole Table 2 reproduction is served
    from the content-addressed index -- zero engine/model evaluations."""
    cache = ResultCache(tmp_path / "cache")
    run_pipeline(names=["table2"], cache=cache)  # warm it

    result = benchmark(lambda: run_pipeline(names=["table2"], cache=cache))
    assert result.executed == 0
    assert result.cache_hits == result.total_requests
    report(f"warm-cache table2: {result.summary()}")


def test_bench_table2_component_breakdown(benchmark, report):
    """The degradation at low accuracy is dominated by leader re-execution and
    channel accesses (paper Section 6) -- read straight off the artifact."""
    result = benchmark(lambda: run_pipeline(names=["table2"]))
    artifact = result.artifacts[0]

    shares = []
    for row in artifact.rows:
        cells = dict(zip(artifact.headers, row))
        total = (
            cells["t_sim"]
            + cells["t_acc"]
            + cells["t_store"]
            + cells["t_restore"]
            + cells["t_channel"]
        )
        shares.append(
            [
                f"{cells['accuracy']:.2f}",
                f"{cells['t_sim'] / total * 100:.1f}%",
                f"{cells['t_acc'] / total * 100:.1f}%",
                f"{(cells['t_store'] + cells['t_restore']) / total * 100:.1f}%",
                f"{cells['t_channel'] / total * 100:.1f}%",
            ]
        )
    report(
        render_table(
            ["accuracy", "simulator", "accelerator (leader)", "store+restore", "channel"],
            shares,
            title="Share of each cost component per committed cycle (ALS)",
        )
    )
    # at low accuracy the channel share dominates and store/restore stays small
    low = shares[-1]
    assert float(low[4].rstrip("%")) > 50.0
    assert float(low[3].rstrip("%")) < 5.0
