"""Table 2 -- Performance of ALS.

Regenerates the paper's Table 2: per-cycle time breakdown (Tsim., Tacc.,
Tstore, Trest., Tch.), absolute performance and the ratio over the
conventional scheme, as a function of prediction accuracy, for the paper's
environment (simulator 1,000 kcycles/s, accelerator 10 Mcycles/s, LOB depth
64, 1,000 rollback variables).
"""

from __future__ import annotations

from repro.analysis.metrics import PaperComparison
from repro.analysis.report import render_comparison, render_transposed_table
from repro.core.analytical import (
    AnalyticalConfig,
    PAPER_ALS_MAX_GAIN_1000K,
    PAPER_TABLE2,
    TABLE2_ACCURACIES,
    table2,
)


def test_bench_table2_reproduction(benchmark, report):
    estimates = benchmark(table2)

    columns = {
        f"{estimate.prediction_accuracy:.3f}": [
            estimate.t_sim,
            estimate.t_acc,
            estimate.t_store,
            estimate.t_restore,
            estimate.t_channel,
            estimate.performance,
            estimate.ratio,
        ]
        for estimate in estimates
    }
    report(
        render_transposed_table(
            ["Tsim.", "Tacc.", "Tstore", "Trest.", "Tch.", "Perform.", "Ratio"],
            columns,
            title="Table 2 (reproduced): Performance of ALS "
            "(sim 1,000 kcycles/s, acc 10 Mcycles/s, LOB 64, 1,000 rollback variables)",
        )
    )

    comparison = PaperComparison.from_mappings(
        "Table 2 performance: paper vs reproduction",
        paper={f"p={p:.3f}": PAPER_TABLE2[p]["performance"] for p in TABLE2_ACCURACIES},
        measured={
            f"p={e.prediction_accuracy:.3f}": e.performance for e in estimates
        },
    )
    report(render_comparison(comparison.title, comparison.as_dicts()))

    # Shape assertions: monotone decline, headline gain, crossover location.
    performances = [e.performance for e in estimates]
    assert performances == sorted(performances, reverse=True)
    assert estimates[0].ratio > 15.0  # "1500%" headline at p = 1
    assert abs(estimates[0].ratio - PAPER_ALS_MAX_GAIN_1000K) / PAPER_ALS_MAX_GAIN_1000K < 0.05
    assert estimates[-1].ratio < 1.1  # ~break-even at p = 0.1
    assert comparison.max_error() < 0.30


def test_bench_table2_component_breakdown(benchmark, report):
    """The degradation at low accuracy is dominated by leader re-execution and
    channel accesses (paper Section 6)."""

    def compute():
        return {
            accuracy: AnalyticalConfig(prediction_accuracy=accuracy)
            for accuracy in (1.0, 0.9, 0.6, 0.3, 0.1)
        }

    configs = benchmark(compute)
    from repro.core.analytical import estimate_performance

    rows = []
    for accuracy, config in configs.items():
        estimate = estimate_performance(config)
        total = estimate.total_per_cycle
        rows.append(
            [
                f"{accuracy:.2f}",
                f"{estimate.t_sim / total * 100:.1f}%",
                f"{estimate.t_acc / total * 100:.1f}%",
                f"{(estimate.t_store + estimate.t_restore) / total * 100:.1f}%",
                f"{estimate.t_channel / total * 100:.1f}%",
            ]
        )
    from repro.analysis.report import render_table

    report(
        render_table(
            ["accuracy", "simulator", "accelerator (leader)", "store+restore", "channel"],
            rows,
            title="Share of each cost component per committed cycle (ALS)",
        )
    )
    # at low accuracy the channel share dominates and store/restore stays small
    low = rows[-1]
    assert float(low[4].rstrip("%")) > 50.0
    assert float(low[3].rstrip("%")) < 5.0
