"""Conventional (conservative) baseline.

Paper claims (Section 6): 38.9 kcycles/s with a 1,000 kcycles/s simulator and
28.8 kcycles/s with a 100 kcycles/s simulator.  Regenerated both analytically
and with the mechanism-level lock-step engine.
"""

from __future__ import annotations

from repro.analysis.report import render_comparison
from repro.core import CoEmulationConfig, OperatingMode, create_engine
from repro.core.analytical import (
    AnalyticalConfig,
    PAPER_CONVENTIONAL_100K,
    PAPER_CONVENTIONAL_1000K,
    conventional_performance,
)
from repro.sim.time_model import DomainSpeed
from repro.workloads import als_streaming_soc


def test_bench_conventional_analytical(benchmark, report):
    def compute():
        return {
            "1000k": conventional_performance(AnalyticalConfig()),
            "100k": conventional_performance(
                AnalyticalConfig(simulator_cycles_per_second=100_000.0)
            ),
        }

    values = benchmark(compute)
    rows = [
        {
            "name": "conventional, sim=1000k (cycles/s)",
            "paper": PAPER_CONVENTIONAL_1000K,
            "measured": values["1000k"],
            "ratio": values["1000k"] / PAPER_CONVENTIONAL_1000K,
            "relative_error": abs(values["1000k"] - PAPER_CONVENTIONAL_1000K)
            / PAPER_CONVENTIONAL_1000K,
        },
        {
            "name": "conventional, sim=100k (cycles/s)",
            "paper": PAPER_CONVENTIONAL_100K,
            "measured": values["100k"],
            "ratio": values["100k"] / PAPER_CONVENTIONAL_100K,
            "relative_error": abs(values["100k"] - PAPER_CONVENTIONAL_100K)
            / PAPER_CONVENTIONAL_100K,
        },
    ]
    report(render_comparison("Conventional baseline: paper vs reproduction", rows))
    assert abs(values["1000k"] - PAPER_CONVENTIONAL_1000K) / PAPER_CONVENTIONAL_1000K < 0.02
    assert abs(values["100k"] - PAPER_CONVENTIONAL_100K) / PAPER_CONVENTIONAL_100K < 0.02


def test_bench_conventional_mechanism(benchmark, report):
    def run(sim_speed):
        spec = als_streaming_soc(n_bursts=8)
        sim_hbm, acc_hbm, _ = spec.build_split()
        config = CoEmulationConfig(
            mode=OperatingMode("conservative"),
            total_cycles=300,
            simulator_speed=DomainSpeed(sim_speed),
        )
        return create_engine(config, sim_hbm, acc_hbm).run()

    def compute():
        return {speed: run(speed) for speed in (1_000_000.0, 100_000.0)}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for speed, result in results.items():
        paper = PAPER_CONVENTIONAL_1000K if speed == 1_000_000.0 else PAPER_CONVENTIONAL_100K
        measured = result.performance_cycles_per_second
        rows.append(
            {
                "name": f"lock-step engine, sim={int(speed/1000)}k (cycles/s)",
                "paper": paper,
                "measured": measured,
                "ratio": measured / paper,
                "relative_error": abs(measured - paper) / paper,
            }
        )
    report(render_comparison("Conventional baseline: mechanism-level engine", rows))
    for row in rows:
        assert row["relative_error"] < 0.05
    # two channel accesses per cycle, always
    for result in results.values():
        assert result.channel["accesses"] == 2 * result.committed_cycles
