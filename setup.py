"""Setuptools shim.

The canonical build configuration lives in pyproject.toml; this file exists so
that legacy editable installs (``python setup.py develop``) work in offline
environments that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
